"""Resource amplification as simplification (Figure 8 in miniature).

Shows how mini-graphs let a processor with a 40%-smaller in-flight register
file, a 4-wide pipeline or a pipelined (2-cycle) scheduler recover most of
the performance of the full 6-wide baseline — the paper's Section 6.3.
Every timing run goes through one :class:`repro.api.Session`, so the
functional artifacts (profile, selection, rewritten binary, traces) are
built once and every scenario reuses them from the artifact store.

Run with::

    python examples/capacity_compensation.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro.api import RunSpec, Session
from repro.uarch import baseline_config


def relative(value: float, reference: float) -> str:
    return f"{value / reference:5.3f}"


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "frag"
    session = Session()
    spec = RunSpec(benchmark=benchmark, budget=12_000)

    full = baseline_config()
    reference = session.baseline_timing(spec, full).ipc
    print(f"{benchmark}: full 6-wide / 164-register baseline IPC = {reference:.2f}\n")
    print(f"{'configuration':34s} {'baseline':>9s} {'mini-graphs':>12s}")

    scenarios = [
        ("124 physical registers (-40% in-flight)", full.with_physical_registers(124)),
        ("104 physical registers (-60% in-flight)", full.with_physical_registers(104)),
        ("4-wide pipeline", full.with_width(4, execute_width=4, load_ports=1)),
        ("4-wide pipeline + 6 execution units", full.with_width(4, execute_width=6,
                                                                load_ports=2)),
        ("2-cycle (pipelined) scheduler", full.with_scheduler_latency(2)),
    ]
    for label, machine in scenarios:
        baseline_ipc = session.baseline_timing(spec, machine).ipc
        minigraph_machine = machine.with_minigraph_alu_pipelines(2).with_sliding_window()
        minigraph_ipc = session.minigraph_timing(spec, minigraph_machine).ipc
        print(f"{label:34s} {relative(baseline_ipc, reference):>9s} "
              f"{relative(minigraph_ipc, reference):>12s}")

    print("\nvalues are IPC relative to the full baseline; 1.000 means fully recovered")


if __name__ == "__main__":
    main()
