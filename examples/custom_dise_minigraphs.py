"""Application-specific mini-graphs through DISE (Section 5 of the paper).

The selection tool exports its chosen mini-graphs as DISE productions (the
handle is a DISE codeword, interface registers are template parameters,
interior dataflow uses the dedicated DISE register set).  A DISE-equipped
processor expands an unknown handle the first time it sees it, the MGPP
compiles and approves it, and from then on the handle stays in-line so the
execution core can exploit the mini-graph.  The selection itself comes from
the cached :class:`repro.api.Session` stage graph.

Run with::

    python examples/custom_dise_minigraphs.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro.api import RunSpec, Session
from repro.dise import DiseEngine, productions_for_selection
from repro.isa.instruction import make_handle


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "frag"
    session = Session()
    spec = RunSpec(benchmark=benchmark, budget=10_000)
    selection = session.selection(spec)

    productions = productions_for_selection(selection)
    print(f"{benchmark}: exported {len(productions)} DISE productions "
          f"for {selection.template_count} selected mini-graphs")
    for production in productions[:3]:
        body = " ; ".join(template.op for template in production.replacement)
        print(f"  <mg codeword {production.pattern.codeword_id}> : {body}")

    engine = DiseEngine()
    engine.load_productions(productions)

    # First decode of each handle misses in the MGTT: DISE expands it and the
    # MGPP compiles/approves the template.  Second decode keeps it in-line.
    for selected in selection.selected:
        handle = make_handle(1, 2, 3, selected.mgid)
        first = engine.decode(handle)
        second = engine.decode(handle)
        verdict = "kept in-line" if second.kept_handle else "still expanded"
        print(f"  MGID {selected.mgid:3d}: first decode expanded into "
              f"{len(first.instructions)} instructions, second decode {verdict}")

    approved = sum(1 for selected in selection.selected
                   if engine.mgtt.is_approved(selected.mgid))
    print(f"\nMGPP approved {approved}/{selection.template_count} productions; "
          f"{engine.expansions} expansions were performed while commissioning")
    print(f"the MGPP-compiled MGT now holds {len(engine.mgt)} entries")


if __name__ == "__main__":
    main()
