"""Quickstart: run the complete mini-graph flow on one benchmark.

The flow is exactly the paper's tool chain: profile the program, enumerate
and select mini-graphs by coverage, rewrite the binary with handles, build
the MGT, and compare the cycle-level performance of a mini-graph processor
against the 6-wide baseline.

Run with::

    python examples/quickstart.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro import (
    baseline_config,
    integer_memory_minigraph_config,
    load_benchmark,
    prepare_minigraph_run,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gsm.toast"
    program = load_benchmark(benchmark)
    print(f"benchmark: {benchmark} ({len(program)} static instructions)")

    run = prepare_minigraph_run(program, budget=15_000)

    print(f"selected {run.selection.template_count} mini-graph templates "
          f"covering {run.selection.coverage * 100:.1f}% of dynamic instructions")
    print("\nfirst few MGT entries (physical MGHT/MGST format):")
    for mgid in run.mgt.mgids()[:3]:
        print(" ", run.mgt.format_physical(mgid))

    baseline = run.baseline_stats(baseline_config())
    minigraph = run.minigraph_stats(integer_memory_minigraph_config())

    print(f"\nbaseline     : {baseline.cycles} cycles, IPC {baseline.ipc:.2f}")
    print(f"mini-graphs  : {minigraph.cycles} cycles, IPC {minigraph.ipc:.2f} "
          f"({minigraph.committed_handles} handles retired)")
    print(f"speedup      : {(minigraph.ipc / baseline.ipc - 1.0) * 100:+.1f}%")
    print(f"slots saved  : {baseline.committed_slots - minigraph.committed_slots} "
          f"pipeline slots over the run")


if __name__ == "__main__":
    main()
