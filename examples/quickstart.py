"""Quickstart: run the complete mini-graph flow on one benchmark.

The flow is exactly the paper's tool chain: profile the program, enumerate
and select mini-graphs by coverage, rewrite the binary with handles, build
the MGT, and compare the cycle-level performance of a mini-graph processor
against the 6-wide baseline.  A declarative :class:`repro.api.RunSpec`
describes the run; the :class:`repro.api.Session` executes (and caches)
every stage.

Run with::

    python examples/quickstart.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro.api import RunSpec, Session


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gsm.toast"
    session = Session()
    spec = RunSpec(benchmark=benchmark, budget=15_000)

    artifacts = session.run(spec)
    print(f"benchmark: {benchmark} ({len(artifacts.program)} static instructions)")
    print(f"selected {artifacts.selection.template_count} mini-graph templates "
          f"covering {artifacts.selection.coverage * 100:.1f}% of dynamic instructions")
    print("\nfirst few MGT entries (physical MGHT/MGST format):")
    for mgid in artifacts.mgt.mgids()[:3]:
        print(" ", artifacts.mgt.format_physical(mgid))

    baseline = artifacts.baseline_timing
    minigraph = artifacts.timing
    print(f"\nbaseline     : {baseline.cycles} cycles, IPC {baseline.ipc:.2f}")
    print(f"mini-graphs  : {minigraph.cycles} cycles, IPC {minigraph.ipc:.2f} "
          f"({minigraph.committed_handles} handles retired)")
    print(f"speedup      : {(artifacts.speedup - 1.0) * 100:+.1f}%")
    print(f"slots saved  : {baseline.committed_slots - minigraph.committed_slots} "
          f"pipeline slots over the run")


if __name__ == "__main__":
    main()
