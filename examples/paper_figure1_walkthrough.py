"""Walk through the paper's Figure 1/2/3 example end to end.

The script assembles a loop containing the paper's two idioms (the
``addl/cmplt/bne`` counter idiom and the ``ldq/srl/and`` field-extract
idiom), extracts the mini-graphs, prints the handle-rewritten code, the
logical MGT (Figure 1c), the physical MGHT/MGST (Figure 2), and finally the
handle life-cycle statistics that reproduce Figure 3's bandwidth argument.
The ad-hoc program goes through :meth:`repro.api.RunSpec.for_program`, which
content-hashes the program so even unregistered code is cacheable.

Run with::

    python examples/paper_figure1_walkthrough.py
"""

from __future__ import annotations

from repro.api import RunSpec, Session
from repro.program import Program
from repro.uarch import baseline_config, integer_memory_minigraph_config

SOURCE = """
# A loop exercising both Figure 1 idioms.
.data flags 16385 49153 16385 32769 49153 16385 32769 49153
.data out 0 0 0 0 0 0 0 0
start:
  la r4, flags
  la r16, out
  ldi r5, 8
  clr r18
loop:
  ldq r2,0(r4)          # } Figure 1 (right): ldq / srl / and
  srli r2,14,r17        # }
  andi r17,1,r17        # }
  s8addl r18,r16,r8
  stq r17,0(r8)
  addqi r4,8,r4
  addqi r18,1,r18       # } Figure 1 (left): addl / cmplt / bne
  cmplt r18,r5,r7       # }
  bne r7,loop           # }
  stq r18,64(r16)
  halt
"""


def main() -> None:
    program = Program.from_assembly("figure1", SOURCE)
    session = Session()
    spec = RunSpec.for_program(program, budget=2_000)
    artifacts = session.run(spec)

    print("=== original code ===")
    print(program.disassemble())

    print("\n=== handle-rewritten code (interiors become nops) ===")
    print(artifacts.rewritten.disassemble())

    print("\n=== logical MGT (Figure 1c) ===")
    for mgid in artifacts.mgt.mgids():
        print(" ", artifacts.mgt.format_logical(mgid))

    print("\n=== physical MGHT / MGST (Figure 2) ===")
    for mgid in artifacts.mgt.mgids():
        print(" ", artifacts.mgt.format_physical(mgid))

    baseline = session.baseline_timing(spec, baseline_config())
    minigraph = session.minigraph_timing(spec, integer_memory_minigraph_config())
    print("\n=== Figure 3: bandwidth amplification ===")
    print(f"original instructions committed : {baseline.committed_instructions}")
    print(f"baseline pipeline slots         : {baseline.committed_slots}")
    print(f"mini-graph pipeline slots       : {minigraph.committed_slots} "
          f"({minigraph.committed_handles} handles)")
    print(f"fetch slots, baseline vs mg     : {baseline.fetched_slots} vs "
          f"{minigraph.fetched_slots}")
    print(f"cycles, baseline vs mg          : {baseline.cycles} vs {minigraph.cycles}")


if __name__ == "__main__":
    main()
