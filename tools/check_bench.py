#!/usr/bin/env python3
"""Validate committed BENCH_*.json perf records (CI bench gate).

Two modes:

* ``check_bench.py BENCH_4.json --min-frontend-speedup 3.0`` asserts the
  committed record's embedded before/after comparison still carries the
  front-end speedup the tree claims (guards against someone regenerating the
  record with a regressed front-end);
* ``check_bench.py NEW.json --against BENCH_4.json --max-frontend-ratio 3.0``
  compares a freshly measured record to the committed baseline and fails if
  the fresh enumerate+select time is more than the given factor slower
  (loose by design: CI machines are noisy; a 3x wall-clock regression is a
  real regression, not noise).

Grid-engine gates (``BENCH_5.json`` onwards):

* ``--min-grid-dedup 1.5`` asserts the record's ``grid.dedup_ratio`` — the
  planner's shared-artifact grouping — still folds multiple timing runs
  into each stage;
* ``--require-grid-resume`` asserts ``grid.resume_hit_rate`` is 1.0: a
  resumed pass over a completed campaign must serve every cell from its
  stored row artifact.  Both are deterministic (no wall clock), so they
  gate exactly.

Serve-daemon gates (``BENCH_6.json`` onwards):

* ``--min-serve-warm-speedup 5.0`` asserts ``serve.warm_speedup`` — the
  submit-to-first-row latency of a warm daemon versus a cold submit — holds
  the warm-pool claim (wall clock, so CI passes a looser bound than the
  committed record's);
* ``--require-serve-store-hits`` asserts ``serve.warm_resumed_fraction`` is
  1.0: a warm resubmission of a finished grid must be answered entirely
  from stored row artifacts, executing zero cells (deterministic).

Batched timing-kernel gates (``BENCH_8.json`` onwards):

* ``--min-batch-speedup 2.0`` asserts ``grid_batched.speedup_vs_scalar`` —
  the batched multi-machine kernel versus one scalar ``simulate_program``
  per lane over the same Figure 8 lane set (wall clock, so CI passes a
  looser bound than the committed record's);
* the gate additionally requires ``grid_batched.row_union_identical``:
  a record whose batched lanes diverged from the scalar reference is a
  failing record regardless of its speedup.

Cross-trace packing gates (``BENCH_9.json`` onwards):

* ``--min-crosstrace-speedup 1.2`` asserts
  ``grid_crosstrace.speedup_vs_scalar`` — the cross-trace packed kernel
  versus ``--no-batch`` over a mixed campaign of sharply skewed trace
  lengths (wall clock, so CI passes a looser bound than the committed
  record's);
* the gate additionally requires ``grid_crosstrace.row_union_identical``
  and that ``grid_crosstrace.lanes_per_pass`` beats
  ``grid_crosstrace.lanes_per_pass_shared_trace_planner`` — packing that
  fails to raise mean lane occupancy over the shared-trace planner is a
  failing record regardless of its speedup.

Fuzzing gates (``BENCH_7.json`` onwards):

* ``--min-fuzz-rate 20`` asserts ``fuzz.programs_per_second`` — seeded
  program generation throughput — stays above the floor (wall clock, so CI
  passes a looser bound than the committed record's);
* the fuzz block's ``failures`` count must be zero whenever the record
  carries one: a bench run that tripped an oracle is a failing record.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("record", help="BENCH_*.json to validate")
    parser.add_argument("--min-frontend-speedup", type=float, default=None,
                        help="require record.frontend_speedup_vs_before."
                             "enumerate_select_speedup >= this value")
    parser.add_argument("--against", default=None, metavar="BASELINE_JSON",
                        help="committed baseline record to compare against")
    parser.add_argument("--max-frontend-ratio", type=float, default=3.0,
                        help="with --against: fail if the fresh "
                             "enumerate+select seconds exceed the baseline's "
                             "by more than this factor (default 3.0)")
    parser.add_argument("--min-grid-dedup", type=float, default=None,
                        help="require record.grid.dedup_ratio >= this value")
    parser.add_argument("--require-grid-resume", action="store_true",
                        help="require record.grid.resume_hit_rate == 1.0")
    parser.add_argument("--min-serve-warm-speedup", type=float, default=None,
                        help="require record.serve.warm_speedup >= this value")
    parser.add_argument("--require-serve-store-hits", action="store_true",
                        help="require record.serve.warm_resumed_fraction "
                             "== 1.0")
    parser.add_argument("--min-batch-speedup", type=float, default=None,
                        help="require record.grid_batched.speedup_vs_scalar "
                             ">= this value (and bit-identical rows)")
    parser.add_argument("--min-crosstrace-speedup", type=float, default=None,
                        help="require record.grid_crosstrace."
                             "speedup_vs_scalar >= this value (plus "
                             "bit-identical rows and higher lane occupancy "
                             "than the shared-trace planner)")
    parser.add_argument("--min-fuzz-rate", type=float, default=None,
                        help="require record.fuzz.programs_per_second >= "
                             "this value (and zero oracle failures)")
    args = parser.parse_args(argv)

    record = _load(args.record)
    failures = []

    if args.min_grid_dedup is not None:
        dedup = (record.get("grid") or {}).get("dedup_ratio")
        if dedup is None:
            failures.append(f"{args.record}: no grid.dedup_ratio recorded")
        elif dedup < args.min_grid_dedup:
            failures.append(
                f"{args.record}: grid shared-artifact dedup {dedup:.2f}x "
                f"< required {args.min_grid_dedup:.2f}x")
        else:
            print(f"{args.record}: grid shared-artifact dedup {dedup:.2f}x "
                  f"(>= {args.min_grid_dedup:.2f}x)")

    if args.require_grid_resume:
        hit_rate = (record.get("grid") or {}).get("resume_hit_rate")
        if hit_rate is None:
            failures.append(f"{args.record}: no grid.resume_hit_rate recorded")
        elif hit_rate < 1.0:
            failures.append(
                f"{args.record}: grid resume hit rate {hit_rate * 100:.1f}% "
                f"< required 100% — resumed campaigns re-executed cells")
        else:
            print(f"{args.record}: grid resume hit rate 100%")

    if args.min_serve_warm_speedup is not None:
        speedup = (record.get("serve") or {}).get("warm_speedup")
        if speedup is None:
            failures.append(f"{args.record}: no serve.warm_speedup recorded")
        elif speedup < args.min_serve_warm_speedup:
            failures.append(
                f"{args.record}: serve warm first-row speedup {speedup:.2f}x "
                f"< required {args.min_serve_warm_speedup:.2f}x")
        else:
            print(f"{args.record}: serve warm first-row speedup "
                  f"{speedup:.2f}x (>= {args.min_serve_warm_speedup:.2f}x)")

    if args.require_serve_store_hits:
        fraction = (record.get("serve") or {}).get("warm_resumed_fraction")
        if fraction is None:
            failures.append(f"{args.record}: no serve.warm_resumed_fraction "
                            "recorded")
        elif fraction < 1.0:
            failures.append(
                f"{args.record}: serve warm store-hit fraction "
                f"{fraction * 100:.1f}% < required 100% — warm resubmits "
                "re-executed cells")
        else:
            print(f"{args.record}: serve warm resubmits 100% store-served")

    if args.min_batch_speedup is not None:
        batched = record.get("grid_batched") or {}
        speedup = batched.get("speedup_vs_scalar")
        if speedup is None:
            failures.append(f"{args.record}: no grid_batched."
                            "speedup_vs_scalar recorded")
        elif speedup < args.min_batch_speedup:
            failures.append(
                f"{args.record}: batched timing-kernel speedup "
                f"{speedup:.2f}x < required {args.min_batch_speedup:.2f}x")
        else:
            print(f"{args.record}: batched timing-kernel speedup "
                  f"{speedup:.2f}x (>= {args.min_batch_speedup:.2f}x, "
                  f"{batched.get('lanes_per_pass', 0.0):.1f} lanes/pass)")
        if speedup is not None and not batched.get("row_union_identical"):
            failures.append(
                f"{args.record}: grid_batched.row_union_identical is false — "
                "the batched kernel diverged from the scalar reference")

    if args.min_crosstrace_speedup is not None:
        crosstrace = record.get("grid_crosstrace") or {}
        speedup = crosstrace.get("speedup_vs_scalar")
        if speedup is None:
            failures.append(f"{args.record}: no grid_crosstrace."
                            "speedup_vs_scalar recorded")
        elif speedup < args.min_crosstrace_speedup:
            failures.append(
                f"{args.record}: cross-trace packed speedup {speedup:.2f}x "
                f"< required {args.min_crosstrace_speedup:.2f}x")
        else:
            print(f"{args.record}: cross-trace packed speedup "
                  f"{speedup:.2f}x (>= {args.min_crosstrace_speedup:.2f}x, "
                  f"{crosstrace.get('lanes_per_pass', 0.0):.1f} lanes/pass)")
        if speedup is not None:
            if not crosstrace.get("row_union_identical"):
                failures.append(
                    f"{args.record}: grid_crosstrace.row_union_identical is "
                    "false — the cross-trace kernel diverged from the "
                    "scalar reference")
            occupancy = crosstrace.get("lanes_per_pass") or 0.0
            shared = crosstrace.get("lanes_per_pass_shared_trace_planner") \
                or 0.0
            if occupancy <= shared:
                failures.append(
                    f"{args.record}: cross-trace occupancy "
                    f"{occupancy:.1f} lanes/pass does not beat the "
                    f"shared-trace planner's {shared:.1f} — packing is "
                    "not interleaving traces")
            else:
                print(f"{args.record}: occupancy {occupancy:.1f} lanes/pass "
                      f"vs shared-trace planner {shared:.1f}")

    if args.min_fuzz_rate is not None:
        fuzz = record.get("fuzz") or {}
        rate = fuzz.get("programs_per_second")
        if rate is None:
            failures.append(f"{args.record}: no fuzz.programs_per_second "
                            "recorded")
        elif rate < args.min_fuzz_rate:
            failures.append(
                f"{args.record}: fuzz generation rate {rate:.0f} programs/s "
                f"< required {args.min_fuzz_rate:.0f}")
        else:
            print(f"{args.record}: fuzz generation {rate:.0f} programs/s "
                  f"(>= {args.min_fuzz_rate:.0f}), differential "
                  f"{fuzz.get('differential_runs_per_second', 0.0):.0f} "
                  f"runs/s")
        oracle_failures = fuzz.get("failures")
        if oracle_failures:
            failures.append(
                f"{args.record}: fuzz block recorded {oracle_failures} "
                f"oracle failure(s); the record was made on a broken tree")

    if args.min_frontend_speedup is not None:
        speedups = record.get("frontend_speedup_vs_before") or {}
        speedup = speedups.get("enumerate_select_speedup")
        if speedup is None:
            failures.append(f"{args.record}: no frontend_speedup_vs_before."
                            "enumerate_select_speedup recorded")
        elif speedup < args.min_frontend_speedup:
            failures.append(
                f"{args.record}: front-end enumerate+select speedup "
                f"{speedup:.2f}x < required {args.min_frontend_speedup:.2f}x")
        else:
            print(f"{args.record}: front-end enumerate+select speedup "
                  f"{speedup:.2f}x (>= {args.min_frontend_speedup:.2f}x)")

    if args.against is not None:
        baseline = _load(args.against)
        fresh = (record.get("frontend") or {}).get("enumerate_select_seconds")
        committed = (baseline.get("frontend") or {}).get("enumerate_select_seconds")
        if fresh is None or committed is None or committed <= 0:
            failures.append("missing frontend.enumerate_select_seconds in "
                            f"{args.record} or {args.against}")
        elif fresh > committed * args.max_frontend_ratio:
            failures.append(
                f"front-end regression: {fresh * 1000:.2f} ms/sweep vs "
                f"committed {committed * 1000:.2f} ms/sweep "
                f"(> {args.max_frontend_ratio:.1f}x)")
        else:
            print(f"front-end: {fresh * 1000:.2f} ms/sweep vs committed "
                  f"{committed * 1000:.2f} ms/sweep — within "
                  f"{args.max_frontend_ratio:.1f}x")

    for failure in failures:
        print(f"check_bench: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
