#!/usr/bin/env python3
"""Markdown link checker for the documentation tree (no third-party deps).

Validates every relative link in README.md and docs/*.md:

* the target file (or directory) exists relative to the linking file;
* a ``#fragment``, when present and the target is markdown, names a heading
  in the target file (GitHub-style slugs);
* bare intra-document ``#fragment`` links resolve within the same file.

External (``http(s)://``, ``mailto:``) links are not fetched — CI must stay
deterministic and offline.

Exit status: 0 when every link resolves, 1 otherwise (used by the CI docs
job and by ``tests/test_docs.py``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

#: Inline markdown links: [text](target), [text](target "Title"),
#: [text](<target>); images share the syntax.
_LINK = re.compile(
    r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+[\"'][^\"']*[\"'])?\s*\)")
#: Reference-style link definitions: [label]: target ("Title" optional).
_REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*<?([^\s>]+)>?", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: Path) -> List[str]:
    text = _CODE_FENCE.sub("", markdown.read_text(encoding="utf-8"))
    return [_slug(match.group(1)) for match in _HEADING.finditer(text)]


def check_file(markdown: Path) -> List[str]:
    """Return a list of broken-link descriptions for one markdown file."""
    errors: List[str] = []
    text = _CODE_FENCE.sub("", markdown.read_text(encoding="utf-8"))
    targets = [match.group(1) for match in _LINK.finditer(text)]
    targets += [match.group(1) for match in _REF_DEF.finditer(text)]
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (markdown.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{markdown}: broken link target {target!r}")
                continue
        else:
            resolved = markdown
        if fragment and resolved.suffix == ".md":
            if _slug(fragment) not in _anchors(resolved):
                errors.append(f"{markdown}: missing anchor {target!r}")
    return errors


def documentation_files(root: Path) -> List[Path]:
    return [root / "README.md", *sorted((root / "docs").glob("*.md"))]


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = documentation_files(root)
    errors: List[str] = []
    for markdown in files:
        if not markdown.exists():
            errors.append(f"missing documentation file: {markdown}")
            continue
        errors.extend(check_file(markdown))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: "
          + ("all links ok" if not errors else f"{len(errors)} broken"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
