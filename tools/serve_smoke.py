#!/usr/bin/env python3
"""CI smoke test for the ``repro serve`` daemon.

Starts a daemon on a private socket and store, submits the ``mini`` grid
from **two concurrent clients**, and asserts the serve path's two central
guarantees:

* **correctness** — the union of the rows each client streamed back is
  bit-identical to a serial in-process ``Session.run_grid`` over the same
  grid (only the ``resumed`` bookkeeping flag may differ);
* **warm reuse** — because both jobs dedup through the shared store, the
  second client's cells are (almost) all served from cached artifacts:
  its job-level cache hit rate must be at least 90%.

Exit code 0 on success; assertion failure otherwise.  Runs in seconds —
this is the ``serve-smoke`` job in CI.
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if (REPO_ROOT / "src").is_dir():
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.session import Session                       # noqa: E402
from repro.grid.catalog import get_grid                     # noqa: E402
from repro.serve.client import ServeClient                  # noqa: E402
from repro.serve.server import ServeServer                  # noqa: E402

BENCHMARKS = ("bitcount", "sha")
BUDGET = 2_000
MIN_SECOND_CLIENT_HIT_RATE = 0.90


def _strip(row: dict) -> dict:
    return {key: value for key, value in row.items() if key != "resumed"}


def main() -> int:
    grid = get_grid("mini").build(benchmarks=BENCHMARKS, budget=BUDGET)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        tmp_path = Path(tmp)

        # Serial reference, in its own store so nothing is shared.
        with Session(cache_dir=tmp_path / "serial-cache") as session:
            reference = sorted(
                (row.as_dict() for row in session.run_grid(grid)),
                key=lambda row: row["index"])

        server = ServeServer(tmp_path / "serve.sock",
                             cache_dir=tmp_path / "serve-cache", workers=2)
        server.start()
        try:
            results: dict = {}

            def run_client(name: str, barrier: threading.Barrier) -> None:
                with ServeClient(server.socket_path,
                                 retry_connect=10.0) as client:
                    barrier.wait()  # submit from both clients concurrently
                    rows, job = client.run_to_completion(
                        client.submit_grid(grid, resume=True))
                    results[name] = (rows, job)

            barrier = threading.Barrier(2)
            threads = [threading.Thread(target=run_client,
                                        args=(name, barrier))
                       for name in ("first", "second")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
                assert not thread.is_alive(), "client did not finish"

            cells = len(reference)
            for name in ("first", "second"):
                rows, job = results[name]
                assert job["state"] == "done", (name, job)
                streamed = sorted((_strip(row) for row in rows),
                                  key=lambda row: row["index"])
                assert streamed == [_strip(row) for row in reference], \
                    f"{name} client's rows differ from the serial run"

            # Jobs are admitted in submit order; the later one must have
            # been served (almost) entirely from the shared store.
            _, first_job = results["first"]
            _, second_job = results["second"]
            if first_job["id"] > second_job["id"]:
                second_job = first_job
            hit_rate = second_job["cache_hit_rate"]
            assert hit_rate >= MIN_SECOND_CLIENT_HIT_RATE, (
                f"second client's cache hit rate {hit_rate * 100:.1f}% "
                f"< {MIN_SECOND_CLIENT_HIT_RATE * 100:.0f}%")

            print(f"serve smoke: {cells} cells x 2 concurrent clients, "
                  f"rows bit-identical to serial run_grid, second client "
                  f"{hit_rate * 100:.1f}% cache hits")
        finally:
            server.stop(drain=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
