"""Seeded program synthesis and differential fuzzing.

Three layers:

* :mod:`repro.fuzz.generator` — the deterministic program generator
  (:class:`SynthSpec` dials, ``synth:`` benchmark names, SplitMix64 streams);
* :mod:`repro.fuzz.oracles` — the five differential oracles run against each
  generated program (rewrite equivalence, heap-vs-reference selection,
  timing-vs-functional commit stream, trace codec round-trip, machine
  geometry fuzzing);
* :mod:`repro.fuzz.harness` — the campaign driver behind ``repro fuzz``
  (seed fan-out, dial-reduction shrinking, corpus repro files), with
  :mod:`repro.fuzz.corpus` handling the committed ``tests/corpus/`` replays.
"""

from .generator import (
    DYNAMIC_CAP,
    GENERATOR_VERSION,
    SYNTH_BUDGET,
    SYNTH_PREFIX,
    SplitMix64,
    SynthSpec,
    SynthSpecError,
    generate_program,
    generate_source,
    synth,
)
from .oracles import ORACLE_NAMES, FuzzContext, OracleResult, run_oracles
from .harness import FuzzFailure, FuzzReport, run_fuzz, shrink_failure
from .corpus import CorpusEntry, load_corpus, replay_entry, write_repro

__all__ = [
    "DYNAMIC_CAP",
    "GENERATOR_VERSION",
    "SYNTH_BUDGET",
    "SYNTH_PREFIX",
    "SplitMix64",
    "SynthSpec",
    "SynthSpecError",
    "generate_program",
    "generate_source",
    "synth",
    "ORACLE_NAMES",
    "FuzzContext",
    "OracleResult",
    "run_oracles",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    "shrink_failure",
    "CorpusEntry",
    "load_corpus",
    "replay_entry",
    "write_repro",
]
