"""The fuzzing campaign driver behind ``repro fuzz``.

:func:`run_fuzz` fans a block of seeds out across a process pool (serial
fallback when pools are unavailable, mirroring the session/grid engines),
runs every requested oracle on each generated program, then *shrinks* each
failing seed — greedy dial reduction toward the smallest program that still
trips the same oracle — and persists a replayable repro JSON next to the
committed corpus (:mod:`repro.fuzz.corpus`).

Everything is deterministic: the campaign is a pure function of
``(base_seed, seeds, oracles, budget)``, so a CI failure reproduces locally
with the same arguments, and a persisted repro reproduces forever with
``pytest tests/test_fuzz.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .generator import _DIALS, SynthSpec, SynthSpecError
from .oracles import ORACLE_NAMES, run_oracles


@dataclass(frozen=True)
class FuzzFailure:
    """One seed that tripped at least one oracle."""

    seed: int
    spec: str                      #: full synth: name of the failing program
    oracle: str                    #: first failing oracle
    detail: str                    #: that oracle's diagnostic
    shrunk: Optional[str] = None   #: reduced synth: name (None if irreducible)
    repro_path: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        return {"seed": self.seed, "spec": self.spec, "oracle": self.oracle,
                "detail": self.detail, "shrunk": self.shrunk,
                "repro": self.repro_path}


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    base_seed: int
    seeds: int
    oracles: Tuple[str, ...]
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    generate_seconds: float = 0.0  #: portion spent in pure generation probe

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def differential_runs(self) -> int:
        return self.seeds * len(self.oracles)

    @property
    def runs_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.differential_runs / self.elapsed_seconds

    def payload(self) -> Dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "seeds": self.seeds,
            "oracles": list(self.oracles),
            "ok": self.ok,
            "failure_count": len(self.failures),
            "failures": [failure.payload() for failure in self.failures],
            "differential_runs": self.differential_runs,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "runs_per_second": round(self.runs_per_second, 2),
        }


# -- pool worker ----------------------------------------------------------------

_SeedJob = Tuple[int, Tuple[str, ...], Optional[int], str]
_SeedOutcome = Tuple[int, str, List[Tuple[str, bool, str]]]


def _run_seed_job(job: _SeedJob) -> _SeedOutcome:
    """Process-pool worker: all requested oracles against one seed."""
    seed, oracle_names, budget, input_name = job
    spec = SynthSpec.sample(seed)
    results = run_oracles(spec, oracles=oracle_names, budget=budget,
                          input_name=input_name)
    return seed, spec.name, [(r.oracle, r.ok, r.detail) for r in results]


def _fan_out(jobs: List[_SeedJob], workers: int) -> List[_SeedOutcome]:
    """Pool map with serial fallback (same contract as the grid engine)."""
    if workers > 1 and len(jobs) > 1:
        try:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(jobs))) as pool:
                return list(pool.map(_run_seed_job, jobs))
        except (OSError, PermissionError):
            pass  # restricted environment: fall through to serial
    return [_run_seed_job(job) for job in jobs]


# -- shrinking ------------------------------------------------------------------

def _reduction_candidates(current: int, minimum: int) -> List[int]:
    """Values to try for one dial, most aggressive first."""
    candidates = []
    if minimum < current:
        candidates.append(minimum)
        midpoint = (minimum + current) // 2
        if midpoint not in (minimum, current):
            candidates.append(midpoint)
        if current - 1 not in candidates and current - 1 >= minimum:
            candidates.append(current - 1)
    return candidates


def shrink_failure(spec: SynthSpec, oracle_names: Sequence[str], *,
                   budget: Optional[int] = None, input_name: str = "reference",
                   max_attempts: int = 64) -> SynthSpec:
    """Greedy dial reduction: the smallest spec still failing an oracle.

    Repeatedly walks the dial list trying ``minimum``, the midpoint, then
    ``current - 1`` for each dial, keeping any reduction under which at
    least one of ``oracle_names`` still fails.  Terminates at a fixpoint or
    after ``max_attempts`` oracle evaluations, whichever comes first — the
    result is always a spec that provably still fails.
    """

    def still_fails(candidate: SynthSpec) -> bool:
        results = run_oracles(candidate, oracles=oracle_names, budget=budget,
                              input_name=input_name)
        return any(not result.ok for result in results)

    attempts = 0
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for _, fieldname, minimum, _maximum in _DIALS:
            current = getattr(spec, fieldname)
            for value in _reduction_candidates(current, minimum):
                if attempts >= max_attempts:
                    return spec
                try:
                    candidate = spec.with_dials(**{fieldname: value})
                except SynthSpecError:
                    continue
                attempts += 1
                if still_fails(candidate):
                    spec = candidate
                    changed = True
                    break
    return spec


# -- campaign driver ------------------------------------------------------------

def run_fuzz(seeds: int, *, base_seed: int = 0,
             oracles: Optional[Sequence[str]] = None,
             budget: Optional[int] = None, input_name: str = "reference",
             workers: int = 1, shrink: bool = True,
             corpus_dir: Optional[str] = None,
             shrink_attempts: int = 24) -> FuzzReport:
    """Run a fuzzing campaign of ``seeds`` consecutive seeds.

    Args:
        seeds: how many seeds to run, starting at ``base_seed``.
        oracles: oracle subset (default: all of :data:`ORACLE_NAMES`).
        budget: dynamic-instruction budget per functional run.
        input_name: which input set to generate (``reference``/``train``).
        workers: process-pool width; ``1`` runs serially.
        shrink: reduce failing seeds to minimal dials before reporting.
        corpus_dir: if set, persist a replayable repro JSON per failing
            seed into this directory (the ``tests/corpus/`` convention).
        shrink_attempts: oracle-evaluation cap per shrink.
    """
    if seeds <= 0:
        raise ValueError("seeds must be positive")
    names = tuple(oracles) if oracles is not None else ORACLE_NAMES
    started = time.perf_counter()
    jobs: List[_SeedJob] = [(base_seed + offset, names, budget, input_name)
                            for offset in range(seeds)]
    outcomes = _fan_out(jobs, workers)

    report = FuzzReport(base_seed=base_seed, seeds=seeds, oracles=names)
    for seed, spec_name, results in outcomes:
        failed = [(oracle, detail) for oracle, ok, detail in results if not ok]
        if not failed:
            continue
        oracle, detail = failed[0]
        failing_oracles = tuple(name for name, _ in failed)
        shrunk_name: Optional[str] = None
        repro_path: Optional[str] = None
        spec = SynthSpec.from_name(spec_name)
        if shrink:
            reduced = shrink_failure(spec, failing_oracles, budget=budget,
                                     input_name=input_name,
                                     max_attempts=shrink_attempts)
            if reduced != spec:
                shrunk_name = reduced.name
        if corpus_dir is not None:
            from .corpus import CorpusEntry, write_repro
            entry = CorpusEntry(
                name=f"repro-seed-{seed:06d}",
                spec=shrunk_name or spec_name,
                oracles=names,
                input=input_name,
                budget=budget,
                note=f"found by fuzz campaign (seed {seed}, "
                     f"oracle {oracle}): {detail}",
            )
            repro_path = str(write_repro(corpus_dir, entry))
        report.failures.append(FuzzFailure(
            seed=seed, spec=spec_name, oracle=oracle, detail=detail,
            shrunk=shrunk_name, repro_path=repro_path))
    report.elapsed_seconds = time.perf_counter() - started
    return report
