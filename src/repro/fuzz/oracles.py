"""The six differential oracles run against each generated program.

Every oracle is a named pure function ``(FuzzContext) -> OracleResult``;
:data:`ORACLES` is the pluggable registry the harness, the CLI and the
corpus replayer all draw from.  A :class:`FuzzContext` lazily computes and
memoizes the expensive intermediates (program, baseline functional run,
selection, rewritten run), so running all six oracles on one seed costs a
single trip through the pipeline.

The oracle matrix:

``rewrite``
    The rewritten program's architectural behaviour under the functional
    simulator must equal the original's: identical memory image, committed
    instruction count and halt state, with no more committed slots.  (Final
    registers are deliberately *not* compared wholesale: interior values
    that liveness proves dead at exit are never materialized by the
    rewritten program — the paper's transient-value optimisation.  The
    generator therefore stores its whole working set to memory before
    halting, which folds the live register state into the compared image.)
``selection``
    Heap-driven :func:`~repro.minigraph.selection.select_minigraphs` must be
    bit-identical to the retained quadratic
    :func:`~repro.minigraph.selection.select_minigraphs_reference` —
    template keys, instance sets, benefits, pick order.
``timing``
    The timing pipeline is trace-driven, so its committed stream must match
    the functional commit stream exactly: every trace entry retires (slots
    == trace length, instructions == the trace's original instruction
    count) for both the baseline and the rewritten run, within a cycle
    watchdog that catches scheduler deadlocks.
``codec``
    ``decode_trace(encode_trace(t))`` must reproduce every column of both
    the baseline and the rewritten trace bit-exactly.
``geometry``
    Seeded random :class:`~repro.uarch.config.MachineConfig` geometries
    must either be rejected with :class:`~repro.uarch.config.ConfigError`
    at construction/admission, or complete a timing run without
    deadlocking.  Any other exception — or hitting the cycle watchdog —
    is a finding.
``batch``
    The batched multi-machine kernel
    (:class:`~repro.uarch.batch.BatchedTimingSimulator`) must be
    lane-for-lane equivalent to scalar ``simulate_program``: identical
    :class:`~repro.uarch.stats.PipelineStats` for every admissible lane,
    and per-lane errors (admission ``ConfigError``, scheduler
    ``TimingError``) matching the scalar exception by type and message
    without poisoning sibling lanes.  Lanes mix the baseline machine with
    seeded random geometries, so divergent widths/units/cache shapes ride
    one pass.  A final cross-trace pass batches 2–4 sibling synth programs
    of deliberately skewed trace lengths — plus the campaign's own baseline
    and mini-graph traces — through one ``from_lanes`` call and checks each
    lane against its own scalar reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..minigraph import MiniGraphTable
from ..minigraph.policies import DEFAULT_POLICY
from ..minigraph.selection import select_minigraphs, select_minigraphs_reference
from ..program import rewrite_program
from ..sim import run_program
from ..sim.trace import decode_trace, encode_trace
from ..uarch.config import ConfigError, MachineConfig, baseline_config
from ..uarch.pipeline import TimingError, TimingSimulator
from .generator import SYNTH_BUDGET, SplitMix64, SynthSpec, generate_program


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one oracle on one generated program."""

    oracle: str
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class FuzzContext:
    """Lazily-computed pipeline intermediates shared by the oracles."""

    def __init__(self, spec: SynthSpec, *, input_name: str = "reference",
                 budget: Optional[int] = None) -> None:
        self.spec = spec
        self.input_name = input_name
        self.budget = budget if budget is not None else SYNTH_BUDGET
        self._cache: Dict[str, Any] = {}

    def _memo(self, key: str, compute: Callable[[], Any]) -> Any:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    @property
    def program(self):
        return self._memo("program", lambda: generate_program(
            self.spec, self.input_name))

    @property
    def baseline(self):
        """Baseline functional run of the original program (with trace)."""
        return self._memo("baseline", lambda: run_program(
            self.program, max_instructions=self.budget,
            input_name=self.input_name))

    @property
    def selection(self):
        return self._memo("selection", lambda: select_minigraphs(
            self.program, self.baseline.profile, policy=DEFAULT_POLICY))

    @property
    def selection_reference(self):
        return self._memo("selection_reference",
                          lambda: select_minigraphs_reference(
                              self.program, self.baseline.profile,
                              policy=DEFAULT_POLICY))

    @property
    def mgt(self):
        return self._memo("mgt", lambda: MiniGraphTable.from_selection(
            self.selection))

    @property
    def rewritten(self):
        return self._memo("rewritten", lambda: rewrite_program(
            self.program, self.selection.rewrite_sites()).program)

    @property
    def rewritten_run(self):
        return self._memo("rewritten_run", lambda: run_program(
            self.rewritten, mgt=self.mgt, max_instructions=self.budget,
            input_name=self.input_name))

    def watchdog_cycles(self, trace_length: int) -> int:
        """Cycle budget that catches deadlocks without false positives.

        A live pipeline retires at worst a few entries per hundred cycles
        (memory latency 100, FP divide 12); 200 cycles per entry plus slack
        is orders of magnitude above any real run and orders of magnitude
        below the 5M-cycle default.
        """
        return 200 * max(1, trace_length) + 20_000


def _fingerprint(selection) -> Dict[str, Any]:
    """Canonical selection summary (mirrors the selection-core tests)."""
    return {
        "picks": [(selected.mgid, selected.template.key(),
                   [instance.member_indices
                    for instance in selected.instances],
                   selected.dynamic_benefit)
                  for selected in selection.selected],
        "covered": selection.covered_dynamic_instructions,
        "candidates": selection.candidate_count,
        "truncated": selection.truncated,
        "dropped": selection.dropped_candidates,
    }


# -- oracle 1: rewritten == original under the functional simulator -------------


def oracle_rewrite(ctx: FuzzContext) -> OracleResult:
    baseline = ctx.baseline
    if not baseline.halted:
        return OracleResult("rewrite", False,
                            f"baseline did not halt within {ctx.budget} "
                            f"instructions — generator termination bound "
                            f"violated")
    result = ctx.rewritten_run
    problems: List[str] = []
    if result.memory.checksum() != baseline.memory.checksum():
        problems.append("memory image diverged")
    if result.instructions_executed != baseline.instructions_executed:
        problems.append(
            f"committed {result.instructions_executed} original "
            f"instructions vs {baseline.instructions_executed}")
    if not result.halted:
        problems.append("rewritten program did not halt")
    if result.entries_committed > baseline.entries_committed:
        problems.append(
            f"rewritten committed more slots ({result.entries_committed}) "
            f"than the original ({baseline.entries_committed})")
    if problems:
        return OracleResult("rewrite", False, "; ".join(problems))
    return OracleResult("rewrite", True)


# -- oracle 2: heap-driven selection == quadratic reference ---------------------


def oracle_selection(ctx: FuzzContext) -> OracleResult:
    fast = _fingerprint(ctx.selection)
    reference = _fingerprint(ctx.selection_reference)
    if fast != reference:
        detail = "selection fingerprints differ"
        fast_picks, ref_picks = fast["picks"], reference["picks"]
        if len(fast_picks) != len(ref_picks):
            detail += (f": {len(fast_picks)} picks vs "
                       f"{len(ref_picks)} reference picks")
        else:
            for index, (a, b) in enumerate(zip(fast_picks, ref_picks)):
                if a != b:
                    detail += f": first divergence at pick {index}"
                    break
            else:
                detail += ": totals differ"
        return OracleResult("selection", False, detail)
    return OracleResult("selection", True)


# -- oracle 3: timing commit stream == functional commit stream -----------------


def _timing_check(ctx: FuzzContext, program, trace, mgt, label: str,
                  config: MachineConfig) -> Optional[str]:
    watchdog = ctx.watchdog_cycles(len(trace))
    try:
        simulator = TimingSimulator(program, trace, config, mgt=mgt)
        stats = simulator.run(max_cycles=watchdog)
    except TimingError as error:
        return f"{label}: timing pipeline stalled or rejected: {error}"
    if stats.committed_slots != len(trace):
        return (f"{label}: committed {stats.committed_slots} slots, trace "
                f"has {len(trace)}")
    expected = trace.original_instruction_count()
    if stats.committed_instructions != expected:
        return (f"{label}: committed {stats.committed_instructions} "
                f"instructions, functional stream has {expected}")
    return None


def oracle_timing(ctx: FuzzContext) -> OracleResult:
    config = baseline_config()
    problem = _timing_check(ctx, ctx.program, ctx.baseline.trace, None,
                            "baseline", config)
    if problem is None and ctx.selection.selected:
        from ..api.spec import RunSpec

        machine = RunSpec(benchmark=ctx.spec.name,
                          policy=DEFAULT_POLICY).resolved_machine
        problem = _timing_check(ctx, ctx.rewritten, ctx.rewritten_run.trace,
                                ctx.mgt, "minigraph", machine)
    if problem is not None:
        return OracleResult("timing", False, problem)
    return OracleResult("timing", True)


# -- oracle 4: trace codec round-trip -------------------------------------------


def _codec_check(trace, label: str) -> Optional[str]:
    decoded = decode_trace(encode_trace(trace))
    before = trace.columns()
    after = decoded.columns()
    for column in ("pc", "index", "size", "next_pc", "flags",
                   "effective_address", "mgid"):
        if getattr(before, column) != getattr(after, column):
            return f"{label}: column {column!r} changed across the codec"
    return None


def oracle_codec(ctx: FuzzContext) -> OracleResult:
    problem = _codec_check(ctx.baseline.trace, "baseline")
    if problem is None and ctx.selection.selected:
        problem = _codec_check(ctx.rewritten_run.trace, "rewritten")
    if problem is not None:
        return OracleResult("codec", False, problem)
    return OracleResult("codec", True)


# -- oracle 5: machine geometry fuzzing -----------------------------------------

#: Geometries sampled per seed.  Each is either rejected with ConfigError or
#: simulated to completion under the watchdog.
_GEOMETRIES_PER_SEED = 4

#: Cache shapes the sampler draws from: mostly valid, some off-shape (the
#: off-shape ones must be *rejected*, not crash downstream).
_CACHE_SHAPES: Tuple[Tuple[int, int, int, int], ...] = (
    (16 * 1024, 2, 32, 1), (32 * 1024, 2, 32, 1), (32 * 1024, 4, 64, 2),
    (8 * 1024, 1, 32, 1), (64 * 1024, 8, 64, 3),
    (24 * 1024, 2, 32, 1),     # 384 sets: not a power of two
    (32 * 1024, 3, 32, 2),     # does not divide into ways
)


def sample_geometry(rng: SplitMix64) -> Dict[str, Any]:
    """One random machine geometry, deliberately spanning invalid shapes."""
    int_alus = 1 + rng.below(6)
    geometry: Dict[str, Any] = {
        "name": "fuzz-geometry",
        "fetch_width": 1 + rng.below(8),
        "rename_width": 1 + rng.below(8),
        "issue_width": 1 + rng.below(8),
        "retire_width": 1 + rng.below(8),
        "front_end_depth": 1 + rng.below(10),
        "register_read_latency": rng.below(4),
        "scheduler_latency": 1 + rng.below(3),
        "rob_size": 8 + rng.below(249),
        "issue_queue_size": 4 + rng.below(61),
        "lsq_size": 4 + rng.below(61),
        "physical_registers": 66 + rng.below(191),
        "int_alu_units": int_alus,
        "fp_units": rng.below(5),
        "load_ports": 1 + rng.below(3),
        "store_ports": 1 + rng.below(2),
        "alu_pipelines": rng.below(int_alus + 1),
        "predictor_entries": (1 << (6 + rng.below(8))) if rng.chance(80)
        else 100 + rng.below(5000),
        "btb_entries": 1 + rng.below(4096),
        "btb_associativity": 1 + rng.below(8),
        "memory_latency": 20 + rng.below(200),
        "store_set_entries": 1 << (4 + rng.below(8)),
    }
    if rng.chance(50):
        # Stored as a raw shape tuple; the oracle constructs the
        # CacheConfig inside its try block so off-shape caches exercise
        # the validated-rejection path rather than crashing the sampler.
        geometry["dcache"] = rng.choice(_CACHE_SHAPES)
    return geometry


def oracle_geometry(ctx: FuzzContext) -> OracleResult:
    rng = SplitMix64((ctx.spec.seed * 2 + 1) ^ 0xC0FFEE5EED5EED5E)
    trace = ctx.baseline.trace
    for attempt in range(_GEOMETRIES_PER_SEED):
        geometry = sample_geometry(rng)
        shape = geometry.get("dcache")
        started = time.perf_counter()
        try:
            if isinstance(shape, tuple):
                from ..uarch.config import CacheConfig
                geometry["dcache"] = CacheConfig(*shape)
            config = MachineConfig(**geometry)
            config.resolve()
            simulator = TimingSimulator(ctx.program, trace, config)
            simulator.run(max_cycles=ctx.watchdog_cycles(len(trace)))
        except ConfigError:
            continue            # validated rejection: exactly what we want
        except TimingError as error:
            wall = time.perf_counter() - started
            return OracleResult(
                "geometry", False,
                f"attempt {attempt}: geometry passed validation but the "
                f"scheduler deadlocked after {wall:.1f}s: {error} "
                f"(geometry: {_geometry_summary(geometry)})")
        except Exception as error:  # noqa: BLE001 - any crash is a finding
            return OracleResult(
                "geometry", False,
                f"attempt {attempt}: {type(error).__name__} escaped "
                f"validation: {error} "
                f"(geometry: {_geometry_summary(geometry)})")
    return OracleResult("geometry", True)


def _geometry_summary(geometry: Dict[str, Any]) -> str:
    interesting = ("fp_units", "alu_pipelines", "int_alu_units",
                   "predictor_entries", "btb_entries", "btb_associativity",
                   "issue_width", "physical_registers")
    parts = [f"{key}={geometry[key]}" for key in interesting]
    if "dcache" in geometry:
        parts.append(f"dcache={geometry['dcache']!r}")
    return ", ".join(parts)


# -- oracle 6: batched kernel == scalar timing, lane for lane -------------------

#: Random geometries mixed into each batched pass alongside the baseline
#: machine — divergent lanes (widths, unit mixes, cache/predictor shapes,
#: inadmissible fp_units=0 configs) are where batching can go wrong.
_BATCH_SAMPLED_LANES = 3


def _scalar_outcome(ctx: FuzzContext, program, trace, mgt,
                    config: MachineConfig, watchdog: int):
    """One scalar reference lane: its stats, or its (type, message) error."""
    try:
        simulator = TimingSimulator(program, trace, config, mgt=mgt)
        return simulator.run(max_cycles=watchdog)
    except (ConfigError, TimingError) as error:
        return (type(error).__name__, str(error))


def _compare_lane(label: str, lane: int, expect, error, result
                  ) -> Optional[str]:
    """One lane's batched outcome against its scalar reference."""
    import dataclasses

    if isinstance(expect, tuple):
        if error is None:
            return (f"{label}: lane {lane} should have raised "
                    f"{expect[0]} but produced stats")
        got = (type(error).__name__, str(error))
        if got != expect:
            return (f"{label}: lane {lane} error mismatch: "
                    f"batched {got} vs scalar {expect}")
    elif error is not None:
        return (f"{label}: lane {lane} raised "
                f"{type(error).__name__}: {error} but the scalar run "
                f"completed")
    elif dataclasses.asdict(result) != dataclasses.asdict(expect):
        diffs = [field.name for field in dataclasses.fields(expect)
                 if getattr(result, field.name)
                 != getattr(expect, field.name)]
        return (f"{label}: lane {lane} stats diverged from scalar "
                f"simulate_program in {', '.join(diffs)}")
    return None


def _batch_check(ctx: FuzzContext, program, trace, mgt, label: str,
                 configs: Sequence[MachineConfig]) -> Optional[str]:
    from ..uarch.batch import BatchedTimingSimulator

    watchdog = ctx.watchdog_cycles(len(trace))
    expected = [_scalar_outcome(ctx, program, trace, mgt, config, watchdog)
                for config in configs]
    batch = BatchedTimingSimulator(program, trace, configs, mgt=mgt)
    results = batch.run(max_cycles=watchdog)
    for lane, expect in enumerate(expected):
        problem = _compare_lane(label, lane, expect,
                                batch.lane_errors.get(lane), results[lane])
        if problem is not None:
            return problem
    return None


def _mixed_batch_check(ctx: FuzzContext, rng: SplitMix64,
                       configs: Sequence[MachineConfig]) -> Optional[str]:
    """Cross-trace lane groups: one ``from_lanes`` pass over several traces.

    Each campaign draws 2–4 sibling synth programs whose traces run under
    sharply shrinking budgets — deliberately skewed lengths, so the pass
    must retire short lanes early while long ones keep going — plus ctx's
    own baseline trace and (when the selection is non-empty) its
    handle-bearing mini-graph trace.  Every trace fields at least one lane
    and the machine set is spread round-robin across the traces; each
    lane's stats or error must match its scalar reference exactly.
    """
    from ..uarch.batch import BatchedTimingSimulator, TimingLane

    members = [(ctx.program, ctx.baseline.trace, None)]
    for sibling in range(1, 2 + rng.below(3)):        # 2-4 synth traces
        spec = SynthSpec.sample((ctx.spec.seed + sibling) ^ 0x5EED5)
        program = generate_program(spec, ctx.input_name)
        run = run_program(program,
                          max_instructions=max(64,
                                               ctx.budget >> (3 * sibling)),
                          input_name=ctx.input_name)
        members.append((program, run.trace, None))
    if ctx.selection.selected:
        members.append((ctx.rewritten, ctx.rewritten_run.trace, ctx.mgt))
    lanes = [(program, trace, mgt, configs[index % len(configs)])
             for index, (program, trace, mgt) in enumerate(members)]
    for index, config in enumerate(configs):
        program, trace, mgt = members[index % len(members)]
        lanes.append((program, trace, mgt, config))
    watchdog = ctx.watchdog_cycles(max(len(trace)
                                       for _, trace, _, _ in lanes))
    expected = [_scalar_outcome(ctx, program, trace, mgt, config, watchdog)
                for program, trace, mgt, config in lanes]
    batch = BatchedTimingSimulator.from_lanes(
        [TimingLane(program, trace, config, mgt=mgt)
         for program, trace, mgt, config in lanes])
    results = batch.run(max_cycles=watchdog)
    if not batch.cross_trace:
        return "mixed: pass failed to span multiple decoded traces"
    for lane, expect in enumerate(expected):
        problem = _compare_lane("mixed", lane, expect,
                                batch.lane_errors.get(lane), results[lane])
        if problem is not None:
            return problem
    return None


def oracle_batch(ctx: FuzzContext) -> OracleResult:
    rng = SplitMix64((ctx.spec.seed * 2 + 1) ^ 0xBA7C8ED51DE5EED5)
    lanes: List[MachineConfig] = [baseline_config()]
    for _ in range(_BATCH_SAMPLED_LANES):
        geometry = sample_geometry(rng)
        shape = geometry.get("dcache")
        try:
            if isinstance(shape, tuple):
                from ..uarch.config import CacheConfig
                geometry["dcache"] = CacheConfig(*shape)
            config = MachineConfig(**geometry)
            config.resolve()
        except ConfigError:
            continue        # construction-time rejection is geometry's domain
        lanes.append(config)
    problem = _batch_check(ctx, ctx.program, ctx.baseline.trace, None,
                           "baseline", lanes)
    if problem is None and ctx.selection.selected:
        from ..api.spec import RunSpec

        machine = RunSpec(benchmark=ctx.spec.name,
                          policy=DEFAULT_POLICY).resolved_machine
        # The handle-bearing trace with the policy machine first, then the
        # same mixed lanes — inadmissible ones must error without poisoning
        # this lane.
        problem = _batch_check(ctx, ctx.rewritten, ctx.rewritten_run.trace,
                               ctx.mgt, "minigraph", [machine] + lanes)
    if problem is None:
        problem = _mixed_batch_check(ctx, rng, lanes)
    if problem is not None:
        return OracleResult("batch", False, problem)
    return OracleResult("batch", True)


# -- registry -------------------------------------------------------------------

ORACLES: Dict[str, Callable[[FuzzContext], OracleResult]] = {
    "rewrite": oracle_rewrite,
    "selection": oracle_selection,
    "timing": oracle_timing,
    "codec": oracle_codec,
    "geometry": oracle_geometry,
    "batch": oracle_batch,
}

#: Canonical oracle order (cheap architectural checks before timing runs).
ORACLE_NAMES: Tuple[str, ...] = ("rewrite", "selection", "codec", "timing",
                                 "geometry", "batch")


def run_oracles(spec: SynthSpec, *, oracles: Optional[Sequence[str]] = None,
                input_name: str = "reference",
                budget: Optional[int] = None) -> List[OracleResult]:
    """Run the requested oracles (default: all six) against one spec."""
    names = tuple(oracles) if oracles is not None else ORACLE_NAMES
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracles {unknown}; "
                         f"available: {', '.join(ORACLE_NAMES)}")
    ctx = FuzzContext(spec, input_name=input_name, budget=budget)
    results = []
    for name in names:
        try:
            results.append(ORACLES[name](ctx))
        except Exception as error:  # noqa: BLE001 - a crash is a failure too
            results.append(OracleResult(
                name, False, f"{type(error).__name__}: {error}"))
    return results
