"""The committed fuzz corpus: replayable seed files under ``tests/corpus/``.

Each corpus file is a small JSON record naming one generated program (by its
self-describing ``synth:`` spec name) and the oracles to replay against it.
Two kinds of entry live side by side:

* **starter seeds** — a spread across the dial space, replayed by
  ``tests/test_fuzz.py`` on every tier-1 run as a cheap standing
  differential check;
* **repros** — shrunk failing seeds persisted by ``repro fuzz``.  Once the
  underlying bug is fixed they are committed as pinned regressions: the
  replay must pass forever after.

The format is deliberately trivial so a failing CI artifact can be dropped
into ``tests/corpus/`` unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from .generator import SynthSpec, SynthSpecError
from .oracles import ORACLE_NAMES, OracleResult, run_oracles

#: Schema version stamped into every corpus file.
CORPUS_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable corpus record."""

    name: str                        #: file stem, e.g. ``seed-000017``
    spec: str                        #: full ``synth:`` benchmark name
    oracles: Tuple[str, ...] = ORACLE_NAMES
    input: str = "reference"
    budget: Optional[int] = None
    note: str = ""

    def __post_init__(self) -> None:
        SynthSpec.from_name(self.spec)  # validate eagerly; raises SynthSpecError
        unknown = [name for name in self.oracles if name not in ORACLE_NAMES]
        if unknown:
            raise SynthSpecError(
                f"corpus entry {self.name!r} names unknown oracles {unknown}")

    def payload(self) -> dict:
        return {
            "version": CORPUS_VERSION,
            "name": self.name,
            "spec": self.spec,
            "oracles": list(self.oracles),
            "input": self.input,
            "budget": self.budget,
            "note": self.note,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CorpusEntry":
        version = payload.get("version")
        if version != CORPUS_VERSION:
            raise SynthSpecError(
                f"corpus entry has version {version!r}; "
                f"this codebase reads version {CORPUS_VERSION}")
        oracles = payload.get("oracles")
        return cls(
            name=payload["name"],
            spec=payload["spec"],
            oracles=tuple(oracles) if oracles else ORACLE_NAMES,
            input=payload.get("input", "reference"),
            budget=payload.get("budget"),
            note=payload.get("note", ""),
        )


def write_repro(directory: Union[str, Path], entry: CorpusEntry) -> Path:
    """Persist one corpus entry as ``<directory>/<name>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(json.dumps(entry.payload(), indent=2, sort_keys=True)
                    + "\n")
    return path


def load_corpus(directory: Union[str, Path]) -> List[CorpusEntry]:
    """Load every ``*.json`` corpus entry under ``directory``, sorted."""
    directory = Path(directory)
    entries: List[CorpusEntry] = []
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise SynthSpecError(
                f"corpus file {path} is not valid JSON: {error}") from error
        entries.append(CorpusEntry.from_payload(payload))
    return entries


def replay_entry(entry: CorpusEntry) -> List[OracleResult]:
    """Re-run one corpus entry's oracles against its regenerated program."""
    spec = SynthSpec.from_name(entry.spec)
    return run_oracles(spec, oracles=entry.oracles, input_name=entry.input,
                       budget=entry.budget)
