"""Seeded random MGA program generator.

The generator produces assembly source the existing two-pass assembler
accepts, parameterized by a small set of *dials* (:class:`SynthSpec`):
control-flow shape (block count/length, loop nesting, branch density),
memory behaviour (load/store density, array count and size — fewer, smaller
arrays mean more aliasing) and dataflow shape (working register set size,
FP and multiply densities).  The whole spec round-trips through a compact
benchmark name (``synth:v1-s42-b6-l12-...``), so any process — pool worker,
serve daemon, artifact cache — can regenerate the exact program from the
name alone.

Determinism and termination are the two structural guarantees:

* **Determinism**: every random decision draws from a private
  :class:`SplitMix64` stream seeded from the spec (never from :mod:`random`
  global state), so ``generate_source(spec, input)`` is a pure function and
  regeneration is bit-identical across processes and Python versions.
* **Termination**: the only backward edges are counted loops over dedicated
  induction registers (``ldi rC,N`` ... ``subqi rC,1,rC; bgt rC,loop``);
  every other branch is strictly forward.  A running dynamic-cost estimate
  additionally demotes loops that would push the program past
  :data:`DYNAMIC_CAP` committed instructions, so every program halts well
  inside :data:`SYNTH_BUDGET`.

Memory safety by construction: every access address is formed as
``base + 8 * (value & (words - 1))`` via ``andi`` + ``s8addl``, so all
accesses are 8-byte aligned (the sparse memory model raises on misalignment)
and land inside the program's own data arrays.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

#: Bump when emitted code changes shape: the version is baked into every
#: synth benchmark name, so corpus files pin the generator that made them.
GENERATOR_VERSION = 1

#: Benchmark-name prefix of the synth workload family.
SYNTH_PREFIX = "synth:"

#: Dynamic-instruction budget synth benchmarks default to; the generator's
#: cost accounting keeps the real dynamic length under DYNAMIC_CAP, so every
#: run halts long before this.
SYNTH_BUDGET = 60_000

#: Soft ceiling on committed instructions per generated program.
DYNAMIC_CAP = 20_000

_M64 = (1 << 64) - 1


class SynthSpecError(ValueError):
    """Raised for malformed synth benchmark names or out-of-range dials."""


class SplitMix64:
    """SplitMix64 PRNG: tiny, seedable, bit-identical everywhere.

    The repo's :class:`~repro.workloads.base.LinearCongruentialGenerator`
    fills data segments; the generator uses SplitMix64 for *structural*
    decisions because consecutive outputs are far better mixed (an LCG's
    low bits cycle, which skews small ``% bound`` draws).
    """

    def __init__(self, seed: int) -> None:
        self._state = seed & _M64

    def next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _M64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
        return z ^ (z >> 31)

    def below(self, bound: int) -> int:
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def chance(self, percent: int) -> bool:
        return self.below(100) < percent

    def choice(self, items):
        return items[self.below(len(items))]


#: (short key, field name, min, max) for every dial, in name order.
_DIALS: Tuple[Tuple[str, str, int, int], ...] = (
    ("b", "blocks", 1, 12),
    ("l", "block_len", 2, 32),
    ("d", "loop_depth", 0, 2),
    ("t", "trip", 1, 16),
    ("c", "branch_density", 0, 100),
    ("m", "mem_density", 0, 60),
    ("a", "arrays", 1, 4),
    ("w", "array_words", 8, 256),
    ("r", "reg_pressure", 2, 14),
    ("f", "fp_density", 0, 40),
    ("u", "mul_density", 0, 30),
)

_NAME_RE = re.compile(
    r"^synth:v(?P<version>\d+)-s(?P<seed>\d+)"
    r"(?P<dials>(-[a-z]\d+)*)$")


@dataclass(frozen=True)
class SynthSpec:
    """Seed plus the full dial vector of one synthetic program.

    The spec *is* the benchmark identity: :attr:`name` encodes every field,
    and :meth:`from_name` parses it back bit-exactly.
    """

    seed: int
    blocks: int = 6
    block_len: int = 10
    loop_depth: int = 1
    trip: int = 6
    branch_density: int = 40     # % of non-loop regions that branch
    mem_density: int = 25        # % of body slots that become memory ops
    arrays: int = 2              # fewer arrays => more aliasing
    array_words: int = 64        # words per array (rounded to a power of two)
    reg_pressure: int = 10       # working integer register set size
    fp_density: int = 10         # % of body slots that become FP ops
    mul_density: int = 5         # % of body slots that become multiplies

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or self.seed < 0:
            raise SynthSpecError(f"seed must be a non-negative integer, "
                                 f"got {self.seed!r}")
        for _, field_name, low, high in _DIALS:
            value = getattr(self, field_name)
            if not isinstance(value, int) or not low <= value <= high:
                raise SynthSpecError(
                    f"dial {field_name} must be an integer in "
                    f"[{low}, {high}], got {value!r}")
        # Round the array size down to a power of two: the index mask is
        # (array_words - 1), which only isolates an in-bounds index when the
        # size is a power of two.
        words = 1 << (self.array_words.bit_length() - 1)
        if words != self.array_words:
            object.__setattr__(self, "array_words", words)

    @property
    def name(self) -> str:
        """The canonical ``synth:`` benchmark name encoding this spec."""
        dials = "".join(f"-{key}{getattr(self, field_name)}"
                        for key, field_name, _, _ in _DIALS)
        return f"{SYNTH_PREFIX}v{GENERATOR_VERSION}-s{self.seed}{dials}"

    @classmethod
    def from_name(cls, name: str) -> "SynthSpec":
        """Parse a ``synth:`` benchmark name back into its spec."""
        match = _NAME_RE.match(name)
        if match is None:
            raise SynthSpecError(
                f"malformed synth benchmark name {name!r}; expected "
                f"synth:v{GENERATOR_VERSION}-s<seed>[-<dial><value>...]")
        version = int(match.group("version"))
        if version != GENERATOR_VERSION:
            raise SynthSpecError(
                f"synth name {name!r} was generated by generator v{version}; "
                f"this tree has v{GENERATOR_VERSION}")
        values: Dict[str, int] = {"seed": int(match.group("seed"))}
        keys = {key: field_name for key, field_name, _, _ in _DIALS}
        for token in filter(None, match.group("dials").split("-")):
            key, value = token[0], token[1:]
            if key not in keys:
                raise SynthSpecError(f"unknown dial {key!r} in {name!r}")
            values[keys[key]] = int(value)
        # Names are canonical: every dial must be spelled out, so one spec
        # has exactly one name (the benchmark name is the cache identity).
        missing = [key for key, field_name in keys.items()
                   if field_name not in values]
        if missing:
            raise SynthSpecError(
                f"synth name {name!r} omits dial(s) {', '.join(missing)}; "
                f"names must spell out the full dial vector")
        return cls(**values)

    @classmethod
    def sample(cls, seed: int) -> "SynthSpec":
        """Derive a full dial vector deterministically from a bare seed.

        This is the fuzzing entry point: seed N maps to one point of the
        dial space, spread so a contiguous seed range covers short straight
        programs, deep loop nests, memory-heavy aliasing programs and
        FP-heavy programs alike.
        """
        rng = SplitMix64((seed << 1) ^ 0xD6E8FEB86659FD93)
        return cls(
            seed=seed,
            blocks=2 + rng.below(7),          # 2..8
            block_len=4 + rng.below(13),      # 4..16
            loop_depth=rng.below(3),          # 0..2
            trip=2 + rng.below(8),            # 2..9
            branch_density=rng.below(71),     # 0..70
            mem_density=rng.below(41),        # 0..40
            arrays=1 + rng.below(3),          # 1..3
            array_words=1 << (4 + rng.below(4)),  # 16/32/64/128
            reg_pressure=4 + rng.below(11),   # 4..14
            fp_density=rng.below(26),         # 0..25
            mul_density=rng.below(11),        # 0..10
        )

    def with_dials(self, **overrides: int) -> "SynthSpec":
        return replace(self, **overrides)

    def dials(self) -> Dict[str, int]:
        """All dial values by field name (seed excluded)."""
        return {f.name: getattr(self, f.name)
                for f in fields(self) if f.name != "seed"}


def synth(seed: int, **dials: int) -> str:
    """Benchmark name for the given seed: the grid-axis helper.

    ``Axis("workload", [synth(seed=s) for s in range(64)])`` puts the synth
    family on a grid; explicit ``dials`` override the sampled vector.
    """
    spec = SynthSpec.sample(seed)
    if dials:
        spec = spec.with_dials(**dials)
    return spec.name


# -- opcode pools ---------------------------------------------------------------

_ALU_RRR = ("addq", "subq", "addl", "subl", "and", "bis", "xor", "bic",
            "ornot", "sll", "srl", "sra", "cmpeq", "cmplt", "cmple",
            "cmpult", "s4addl", "s8addl", "cmovne", "cmoveq", "extbl",
            "insbl", "mskbl")
_ALU_RIR = ("addqi", "subqi", "addli", "subli", "andi", "xori", "bisi",
            "slli", "srli", "srai", "cmpeqi", "cmplti", "cmplei",
            "cmpulti", "lda", "s4addli", "s8addli", "zapnot", "extbli")
_ALU_RR = ("sextb", "sextw", "popcount", "clz")
_SHIFT_IMM_OPS = frozenset(("slli", "srli", "srai"))
_BYTE_IMM_OPS = frozenset(("zapnot", "extbli"))
_FP_RRR = ("addt", "subt", "mult", "cmptlt", "divt")
_FP_RR = ("sqrtt",)
_MUL_RRR = ("mull", "mulq")
_LOAD_OPS = ("ldq", "ldq", "ldl", "ldwu")    # ldq weighted: full-word flow
_STORE_OPS = ("stq", "stq", "stl", "stb")
_FWD_BRANCHES = ("beq", "bne", "blt", "bge")

#: Fixed register roles.  Working registers come after the array bases and
#: stay below r20; the upper file is reserved for loop counters and address
#:  scratch so generated dataflow can never clobber control state.
_COUNTER_REGS = ("r20", "r21", "r22")
_IDX_REG = "r24"
_ADDR_REG = "r25"


class _Emitter:
    """One generation run: a structure stream, a data stream and the lines."""

    def __init__(self, spec: SynthSpec, input_name: str) -> None:
        self.spec = spec
        # Structure (opcodes, registers, layout) depends only on the seed;
        # data values additionally depend on the input set, giving each
        # benchmark the registry-standard reference/train pair.
        self.rng = SplitMix64((spec.seed * 2 + 1) ^ 0xA5A5A5A5A5A5A5A5)
        salt = 1 if input_name == "reference" else 2
        self.data_rng = SplitMix64((spec.seed << 2) + salt)
        self.lines: List[str] = []
        self.label_count = 0
        self.dynamic_estimate = 0
        self.multiplier = 1
        base_count = spec.arrays
        self.base_regs = [f"r{1 + i}" for i in range(base_count)]
        pool = [f"r{base_count + 1 + i}" for i in range(19 - base_count)]
        self.working = pool[:spec.reg_pressure]
        # FP registers exist only when the dial vector asks for FP work:
        # otherwise the program must stay executable on FP-less machines.
        self.fp_regs = ([f"f{i}" for i in range(max(2, spec.reg_pressure // 2))]
                        if spec.fp_density > 0 else [])

    # -- low-level helpers -------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append(line)
        if line.endswith(":") or line.startswith("."):
            return
        self.dynamic_estimate += self.multiplier

    def label(self, stem: str) -> str:
        self.label_count += 1
        return f"{stem}{self.label_count}"

    # -- program sections --------------------------------------------------------

    def data_segment(self) -> None:
        for index in range(self.spec.arrays):
            values = [self.data_rng.below(1 << 32)
                      for _ in range(self.spec.array_words)]
            rendered = " ".join(str(value) for value in values)
            self.emit(f".data arr{index} {rendered}")
        # Initial working-set values live in the data segment (not in `ldi`
        # immediates) so the reference/train pair shares one instruction
        # stream — only the data differs, as with the registry suites.
        init = [self.data_rng.below(1 << 16) for _ in self.working]
        self.emit(".data init " + " ".join(str(value) for value in init))
        self.emit(f".space out {len(self.working) + len(self.fp_regs)}")

    def prologue(self) -> None:
        for base, index in zip(self.base_regs, range(self.spec.arrays)):
            self.emit(f"  la {base},arr{index}")
        self.emit(f"  la {_ADDR_REG},init")
        for offset, reg in enumerate(self.working):
            self.emit(f"  ldq {reg},{offset * 8}({_ADDR_REG})")
        for index, fp in enumerate(self.fp_regs):
            source = self.working[index % len(self.working)]
            self.emit(f"  cvtqt {source},{fp}")

    def epilogue(self) -> None:
        # Materialize the whole working set into the output array: register
        # dataflow becomes architectural memory state, which is what the
        # rewritten-vs-original oracle compares (interior registers that
        # liveness proves dead are deliberately not comparable).
        self.emit(f"  la {_ADDR_REG},out")
        for offset, reg in enumerate(self.working + self.fp_regs):
            self.emit(f"  stq {reg},{offset * 8}({_ADDR_REG})")
        self.emit("  halt")

    # -- regions ------------------------------------------------------------------

    def region(self, depth: int, force_loop: bool = False) -> None:
        roll = self.rng.below(100)
        wants_loop = force_loop or (depth < self.spec.loop_depth
                                    and roll < 55)
        if wants_loop and self._loop_fits(depth):
            self.loop(depth)
        elif roll < 55 + self.spec.branch_density:
            self.diamond()
        else:
            self.straight(self.spec.block_len)

    def _trip_for(self, depth: int) -> int:
        # Inner loops iterate less: the multiplier is the product of every
        # enclosing trip count, and DYNAMIC_CAP bounds the product.
        return self.spec.trip if depth == 0 else min(self.spec.trip, 4)

    def _loop_fits(self, depth: int) -> bool:
        trip = self._trip_for(depth)
        body_cost = self.spec.block_len * 2 + 4
        projected = self.dynamic_estimate + self.multiplier * trip * body_cost
        return projected <= DYNAMIC_CAP

    def loop(self, depth: int) -> None:
        trip = self._trip_for(depth)
        counter = _COUNTER_REGS[depth]
        head = self.label("loop")
        self.emit(f"  ldi {counter},{trip}")
        self.emit(f"{head}:")
        self.multiplier *= trip
        subregions = 1 + self.rng.below(2)
        for _ in range(subregions):
            self.region(depth + 1)
        self.emit(f"  subqi {counter},1,{counter}")
        self.emit(f"  bgt {counter},{head}")
        self.multiplier //= trip

    def diamond(self) -> None:
        condition = self.rng.choice(self.working)
        op = self.rng.choice(_FWD_BRANCHES)
        join = self.label("skip")
        self.emit(f"  {op} {condition},{join}")
        self.straight(max(2, self.spec.block_len // 2))
        self.emit(f"{join}:")

    def straight(self, length: int) -> None:
        budget = length
        spec = self.spec
        while budget > 0:
            roll = self.rng.below(100)
            if roll < spec.mem_density:
                # A memory op costs three slots (mask, address, access); a
                # shorter tail degrades to ALU work rather than borrowing a
                # neighbouring density window.
                if budget >= 3:
                    self.memory_op()
                    budget -= 3
                else:
                    self.alu_op()
                    budget -= 1
            elif roll < spec.mem_density + spec.fp_density:
                self.fp_op()
                budget -= 1
            elif roll < spec.mem_density + spec.fp_density + spec.mul_density:
                self.mul_op()
                budget -= 1
            else:
                self.alu_op()
                budget -= 1

    # -- individual operations ----------------------------------------------------

    def memory_op(self) -> None:
        base = self.rng.choice(self.base_regs)
        index_source = self.rng.choice(self.working)
        mask = self.spec.array_words - 1
        self.emit(f"  andi {index_source},{mask},{_IDX_REG}")
        self.emit(f"  s8addl {_IDX_REG},{base},{_ADDR_REG}")
        if self.rng.chance(55):
            op = self.rng.choice(_LOAD_OPS)
            dest = self.rng.choice(self.working)
            self.emit(f"  {op} {dest},0({_ADDR_REG})")
        else:
            op = self.rng.choice(_STORE_OPS)
            value = self.rng.choice(self.working)
            self.emit(f"  {op} {value},0({_ADDR_REG})")

    def alu_op(self) -> None:
        dest = self.rng.choice(self.working)
        source = self.rng.choice(self.working)
        form = self.rng.below(100)
        if form < 45:
            op = self.rng.choice(_ALU_RRR)
            other = self.rng.choice(self.working)
            self.emit(f"  {op} {source},{other},{dest}")
        elif form < 90:
            op = self.rng.choice(_ALU_RIR)
            self.emit(f"  {op} {source},{self._imm_for(op)},{dest}")
        else:
            op = self.rng.choice(_ALU_RR)
            self.emit(f"  {op} {source},{dest}")

    def _imm_for(self, op: str) -> int:
        if op in _SHIFT_IMM_OPS:
            return self.rng.below(8)
        if op in _BYTE_IMM_OPS:
            return self.rng.below(256)
        return self.rng.below(512) - 256

    def mul_op(self) -> None:
        dest = self.rng.choice(self.working)
        if self.rng.chance(30):
            source = self.rng.choice(self.working)
            self.emit(f"  mulli {source},{self.rng.below(64) + 1},{dest}")
        else:
            op = self.rng.choice(_MUL_RRR)
            a = self.rng.choice(self.working)
            b = self.rng.choice(self.working)
            self.emit(f"  {op} {a},{b},{dest}")

    def fp_op(self) -> None:
        roll = self.rng.below(100)
        if roll < 15:
            # Cross the files occasionally: refresh an FP value from the
            # integer side, or extract an FP value back.
            if self.rng.chance(50):
                source = self.rng.choice(self.working)
                dest = self.rng.choice(self.fp_regs)
                self.emit(f"  cvtqt {source},{dest}")
            else:
                source = self.rng.choice(self.fp_regs)
                dest = self.rng.choice(self.working)
                self.emit(f"  cvttq {source},{dest}")
        elif roll < 30:
            op = self.rng.choice(_FP_RR)
            source = self.rng.choice(self.fp_regs)
            dest = self.rng.choice(self.fp_regs)
            self.emit(f"  {op} {source},{dest}")
        else:
            op = self.rng.choice(_FP_RRR)
            a = self.rng.choice(self.fp_regs)
            b = self.rng.choice(self.fp_regs)
            dest = self.rng.choice(self.fp_regs)
            self.emit(f"  {op} {a},{b},{dest}")

    # -- driver --------------------------------------------------------------------

    def render(self) -> str:
        self.data_segment()
        self.prologue()
        for index in range(self.spec.blocks):
            # Guarantee at least one loop when the dials allow any: loops
            # are what give the profile hot blocks for selection to chew on.
            force_loop = index == 0 and self.spec.loop_depth > 0
            self.region(0, force_loop=force_loop)
        self.epilogue()
        return "\n".join(self.lines) + "\n"


def generate_source(spec: SynthSpec, input_name: str = "reference") -> str:
    """Assembly source of one synthetic program: a pure function of
    ``(spec, input_name)``."""
    if input_name not in ("reference", "train"):
        raise SynthSpecError(
            f"synth benchmarks have inputs ('reference', 'train'); "
            f"got {input_name!r}")
    return _Emitter(spec, input_name).render()


def generate_program(spec: SynthSpec, input_name: str = "reference"):
    """Assemble one synthetic program into a
    :class:`~repro.program.program.Program`."""
    from ..program.program import Program

    return Program.from_assembly(
        spec.name, generate_source(spec, input_name),
        metadata={"suite": "synth", "input": input_name,
                  "description": "seeded synthetic fuzz program"})
