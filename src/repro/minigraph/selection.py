"""Greedy, coverage-driven mini-graph selection.

Implements the paper's Section 3.2 selection algorithm:

1. enumerate all legal candidates (done by :mod:`repro.minigraph.enumeration`);
2. coalesce static instances with identical dataflow/immediates into
   templates and rank templates by estimated coverage ``sum (n-1)*f`` over
   their instances, where ``f`` comes from a basic-block frequency profile;
3. iterate over the ranked list, selecting templates until the MGT is full or
   the list is exhausted; a static instruction may belong to at most one
   selected mini-graph, so the benefit of the remaining templates is adjusted
   after every pick.

The module also implements *domain-specific* selection (one MGT shared by a
whole benchmark suite, Figure 5 bottom).

The greedy core is **heap-driven** (see ``docs/architecture.md``,
"Compilation front-end"): groups are keyed by interned template id, a
lazy-revalidation max-heap orders them by current benefit (dense
canonical-key ranks break ties — the exact total order of the seed's
``repr(key)`` comparison), and an inverted index from static instruction
index to overlapping instances propagates each pick only to the groups it
actually conflicts with.  Benefits only ever decrease, so a popped entry
whose stored benefit is stale is simply re-pushed with the current value.
The result is bit-identical to the quadratic reference loop, which is kept
as :func:`select_minigraphs_reference` and cross-checked by the test suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..program.profile import BlockProfile
from ..program.program import Program
from ..program.rewriter import RewriteSite
from .candidates import MiniGraphCandidate
from .enumeration import EnumerationLimits, EnumerationResult, enumerate_minigraphs
from .policies import DEFAULT_POLICY, SelectionPolicy
from .registry import FRONTEND_STATS, TEMPLATE_REGISTRY, candidate_template_id
from .templates import MiniGraphTemplate


@dataclass
class SelectedMiniGraph:
    """One selected template with its MGID and committed static instances."""

    mgid: int
    template: MiniGraphTemplate
    instances: List[MiniGraphCandidate] = field(default_factory=list)
    dynamic_benefit: int = 0

    @property
    def static_instances(self) -> int:
        return len(self.instances)


@dataclass
class SelectionResult:
    """Output of :func:`select_minigraphs` for one program.

    Attributes:
        program_name: the analysed program.
        selected: selected templates in MGID order.
        policy: the policy that produced this selection.
        dynamic_instructions: denominator for coverage (from the profile).
        covered_dynamic_instructions: dynamic instructions removed from the
            pipeline (``sum (n-1) * f`` over committed instances).
        candidate_count: number of admissible candidates considered.
        truncated: True if an enumeration safety valve
            (``max_candidates_per_block`` or the connected-subset cap)
            silently dropped candidates before selection ever saw them.
        dropped_candidates: number of enumerated-but-untried connected
            subsets (a lower bound on what truncation discarded).
    """

    program_name: str
    selected: List[SelectedMiniGraph]
    policy: SelectionPolicy
    dynamic_instructions: int
    covered_dynamic_instructions: int
    candidate_count: int
    truncated: bool = False
    dropped_candidates: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of dynamic instructions removed from the pipeline."""
        if self.dynamic_instructions <= 0:
            return 0.0
        return self.covered_dynamic_instructions / self.dynamic_instructions

    @property
    def template_count(self) -> int:
        return len(self.selected)

    def rewrite_sites(self) -> List[RewriteSite]:
        """All static instances as rewrite sites for the binary rewriter."""
        sites: List[RewriteSite] = []
        for selected in self.selected:
            for instance in selected.instances:
                sites.append(instance.rewrite_site(selected.mgid))
        return sites

    def coverage_by_size(self) -> Dict[int, float]:
        """Coverage contribution broken down by mini-graph size (Figure 5 stacks)."""
        if self.dynamic_instructions <= 0:
            return {}
        by_size: Dict[int, int] = {}
        for selected in self.selected:
            size = selected.template.size
            by_size[size] = by_size.get(size, 0) + selected.dynamic_benefit
        return {size: benefit / self.dynamic_instructions
                for size, benefit in sorted(by_size.items())}

    def templates(self) -> List[MiniGraphTemplate]:
        return [selected.template for selected in self.selected]


@dataclass
class _TemplateGroup:
    """All admissible instances of one template, with bookkeeping.

    Retained for :func:`select_minigraphs_reference`; the heap-driven core
    uses :class:`_Group` with incrementally maintained benefits instead.
    """

    template: MiniGraphTemplate
    instances: List[MiniGraphCandidate] = field(default_factory=list)

    def benefit(self, profile: BlockProfile, used: Set[int]) -> int:
        """Current benefit: sum of (n-1)*f over still-available instances."""
        total = 0
        for instance in self.instances:
            if instance.conflicts_with(used):
                continue
            total += instance.instructions_removed * profile.frequency(instance.block_id)
        return total

    def available_instances(self, used: Set[int]) -> List[MiniGraphCandidate]:
        return [instance for instance in self.instances if not instance.conflicts_with(used)]


def group_candidates(candidates: Iterable[MiniGraphCandidate]
                     ) -> Dict[Tuple, _TemplateGroup]:
    """Coalesce candidates by template identity (reference implementation)."""
    groups: Dict[Tuple, _TemplateGroup] = {}
    for candidate in candidates:
        key = candidate.template.key()
        group = groups.get(key)
        if group is None:
            group = _TemplateGroup(template=candidate.template)
            groups[key] = group
        group.instances.append(candidate)
    return groups


# -- heap-driven greedy core ---------------------------------------------------


class _Instance:
    """One admissible candidate inside the incremental selector."""

    __slots__ = ("candidate", "weight", "group", "alive")

    def __init__(self, candidate: MiniGraphCandidate, weight: int,
                 group: "_Group") -> None:
        self.candidate = candidate
        self.weight = weight
        self.group = group
        self.alive = True


class _Group:
    """All instances of one interned template, with an exact running benefit."""

    __slots__ = ("tid", "template", "instances", "benefit", "picked")

    def __init__(self, tid: int, template: MiniGraphTemplate) -> None:
        self.tid = tid
        self.template = template
        self.instances: List[_Instance] = []
        self.benefit = 0
        self.picked = False


def _greedy_select(admissible: Sequence[MiniGraphCandidate],
                   profile: BlockProfile,
                   max_templates: int) -> Tuple[List[SelectedMiniGraph], int]:
    """Heap-driven greedy selection over interned template groups.

    Invariants (the reasons this is bit-identical to the reference loop):

    * ``group.benefit`` always equals the reference's recomputed
      ``sum (n-1)*f`` over instances not conflicting with the committed set —
      an instance's weight is subtracted exactly once, when the first of its
      members is claimed;
    * benefits only decrease, so a popped heap entry is either *fresh*
      (stored == current: it is the true maximum) or *stale* (stored >
      current: re-push with the current value and keep going);
    * ties break on dense ranks in canonical-key sort order, the same total
      order as the reference's ``repr(key)`` comparison;
    * a pick commits the instances alive *at pick time* (mutually overlapping
      instances of the same template are all committed, as in the reference,
      whose availability snapshot predates its member claims); its member
      claims then propagate through the inverted index only to the instances
      that actually overlap them — never a rescan of the remaining groups.
    """
    registry = TEMPLATE_REGISTRY
    groups: Dict[int, _Group] = {}
    inverted: Dict[int, List[_Instance]] = {}
    for candidate in admissible:
        tid = candidate_template_id(candidate, registry)
        group = groups.get(tid)
        if group is None:
            group = groups[tid] = _Group(tid, candidate.template)
        weight = candidate.instructions_removed * profile.frequency(candidate.block_id)
        instance = _Instance(candidate, weight, group)
        group.instances.append(instance)
        group.benefit += weight
        for index in candidate.member_indices:
            bucket = inverted.get(index)
            if bucket is None:
                bucket = inverted[index] = []
            bucket.append(instance)

    ranks = registry.ranks(list(groups))
    heap = [(-group.benefit, ranks[tid], tid)
            for tid, group in groups.items() if group.benefit > 0]
    heapify(heap)

    selected: List[SelectedMiniGraph] = []
    covered = 0
    used: Set[int] = set()
    while heap and len(selected) < max_templates:
        neg_benefit, rank, tid = heappop(heap)
        group = groups[tid]
        if group.picked:
            continue
        if -neg_benefit != group.benefit:
            if group.benefit > 0:
                heappush(heap, (-group.benefit, rank, tid))
            continue
        if group.benefit <= 0:
            break
        alive = [instance for instance in group.instances if instance.alive]
        benefit = group.benefit
        group.picked = True

        for instance in alive:
            for index in instance.candidate.member_indices:
                if index in used:
                    continue
                used.add(index)
                for other in inverted.get(index, ()):
                    if other.alive and not other.group.picked:
                        other.alive = False
                        other.group.benefit -= other.weight

        selected.append(SelectedMiniGraph(
            mgid=len(selected),
            template=group.template,
            instances=[instance.candidate for instance in alive],
            dynamic_benefit=benefit,
        ))
        covered += benefit
    return selected, covered


def select_minigraphs(program: Program, profile: BlockProfile, *,
                      policy: SelectionPolicy = DEFAULT_POLICY,
                      candidates: Optional[Sequence[MiniGraphCandidate]] = None
                      ) -> SelectionResult:
    """Run greedy coverage-driven selection for one program.

    Args:
        program: the program to analyse.
        profile: basic-block frequency profile used as the benefit weight.
        policy: admissibility filters and MGT capacity.
        candidates: pre-enumerated candidates; when omitted, candidates are
            enumerated with limits derived from the policy.  Passing a shared
            candidate list lets the Figure 5 sweeps avoid re-enumerating for
            every MGT size.
    """
    stats = FRONTEND_STATS
    enum_seconds_before = stats.enumeration_seconds
    start = time.perf_counter()
    if candidates is None:
        limits = EnumerationLimits(max_size=policy.max_size,
                                   allow_memory=policy.allow_memory,
                                   allow_branches=policy.allow_branches)
        candidates = enumerate_minigraphs(program, limits)
    truncated_blocks = getattr(candidates, "truncated_blocks", 0)
    dropped_subsets = getattr(candidates, "dropped_subsets", 0)
    admissible = policy.filter_candidates(candidates)
    selected, covered = _greedy_select(admissible, profile, policy.max_templates)

    stats.selection_runs += 1
    stats.selection_seconds += ((time.perf_counter() - start)
                                - (stats.enumeration_seconds - enum_seconds_before))
    return SelectionResult(
        program_name=program.name,
        selected=selected,
        policy=policy,
        dynamic_instructions=profile.dynamic_instructions,
        covered_dynamic_instructions=covered,
        candidate_count=len(admissible),
        truncated=truncated_blocks > 0,
        dropped_candidates=dropped_subsets,
    )


def select_minigraphs_reference(program: Program, profile: BlockProfile, *,
                                policy: SelectionPolicy = DEFAULT_POLICY,
                                candidates: Optional[Sequence[MiniGraphCandidate]] = None
                                ) -> SelectionResult:
    """The seed's quadratic greedy loop, kept as the behavioural reference.

    Every pick rescans every remaining group's full instance list and breaks
    ties on ``repr`` of the template's structural key.  The heap-driven
    :func:`select_minigraphs` must produce bit-identical output; the property
    tests cross-check the two on random programs.
    """
    if candidates is None:
        limits = EnumerationLimits(max_size=policy.max_size,
                                   allow_memory=policy.allow_memory,
                                   allow_branches=policy.allow_branches)
        candidates = enumerate_minigraphs(program, limits)
    truncated_blocks = getattr(candidates, "truncated_blocks", 0)
    dropped_subsets = getattr(candidates, "dropped_subsets", 0)
    admissible = policy.filter_candidates(candidates)
    groups = group_candidates(admissible)

    used: Set[int] = set()
    selected: List[SelectedMiniGraph] = []
    covered = 0
    remaining = dict(groups)

    while remaining and len(selected) < policy.max_templates:
        best_key = None
        best_benefit = 0
        # Ties are broken on the template's textual key so selection order is
        # deterministic across runs and Python versions.
        for key, group in remaining.items():
            benefit = group.benefit(profile, used)
            if benefit > best_benefit or (benefit == best_benefit and benefit > 0
                                          and (best_key is None or repr(key) < repr(best_key))):
                best_key = key
                best_benefit = benefit
        if best_key is None or best_benefit <= 0:
            break
        group = remaining.pop(best_key)
        instances = []
        benefit = 0
        for instance in group.available_instances(used):
            instances.append(instance)
            benefit += instance.instructions_removed * profile.frequency(instance.block_id)
            used.update(instance.member_indices)
        if not instances:
            continue
        selected.append(SelectedMiniGraph(
            mgid=len(selected),
            template=group.template,
            instances=instances,
            dynamic_benefit=benefit,
        ))
        covered += benefit

    return SelectionResult(
        program_name=program.name,
        selected=selected,
        policy=policy,
        dynamic_instructions=profile.dynamic_instructions,
        covered_dynamic_instructions=covered,
        candidate_count=len(admissible),
        truncated=truncated_blocks > 0,
        dropped_candidates=dropped_subsets,
    )


@dataclass
class DomainSelectionResult:
    """Result of domain-specific selection across a suite of programs."""

    suite_name: str
    templates: List[MiniGraphTemplate]
    per_program: Dict[str, SelectionResult]

    @property
    def template_count(self) -> int:
        return len(self.templates)

    def mean_coverage(self) -> float:
        if not self.per_program:
            return 0.0
        return sum(result.coverage for result in self.per_program.values()) / len(self.per_program)


def select_domain_minigraphs(programs: Mapping[str, Tuple[Program, BlockProfile]], *,
                             suite_name: str,
                             policy: SelectionPolicy = DEFAULT_POLICY
                             ) -> DomainSelectionResult:
    """Select one shared MGT for a whole benchmark suite (Figure 5, bottom).

    The shared MGT holds the ``policy.max_templates`` templates with the
    highest total benefit summed across every program in the suite.  Each
    program is then re-selected restricted to that shared template set, so the
    reported coverage reflects what the shared MGT actually achieves per
    program.

    The fold is **streaming**: each program's candidates are enumerated,
    folded into per-template-id benefit totals in the registry's id space,
    and dropped before the next program is touched — memory stays
    O(program), not O(corpus).  The re-selection pass re-enumerates through
    the block memo (repeated blocks are a dict hit) and goes through the
    same heap-driven core as application-specific selection.
    """
    total_benefit: Dict[int, int] = {}

    limits = EnumerationLimits(max_size=policy.max_size,
                               allow_memory=policy.allow_memory,
                               allow_branches=policy.allow_branches)
    for name, (program, profile) in programs.items():
        # Per-program greedy commitment is how instances would actually be
        # claimed; the cross-suite ranking uses the uncontended benefit, which
        # is the standard (and the paper's implied) approximation.
        for candidate in policy.filter_candidates(enumerate_minigraphs(program, limits)):
            tid = candidate_template_id(candidate)
            total_benefit[tid] = (total_benefit.get(tid, 0)
                                  + candidate.instructions_removed
                                  * profile.frequency(candidate.block_id))

    registry = TEMPLATE_REGISTRY
    ranked = sorted(total_benefit.items(),
                    key=lambda item: (-item[1], registry.sort_key(item[0])))
    shared_ids = {tid for tid, benefit in ranked[:policy.max_templates] if benefit > 0}
    shared_templates = [registry.template(tid) for tid, _ in ranked[:policy.max_templates]
                        if tid in shared_ids]

    per_program_results: Dict[str, SelectionResult] = {}
    for name, (program, profile) in programs.items():
        enumerated = enumerate_minigraphs(program, limits)
        restricted = EnumerationResult(
            candidate for candidate in policy.filter_candidates(enumerated)
            if candidate_template_id(candidate) in shared_ids)
        restricted.truncated_blocks = enumerated.truncated_blocks
        restricted.dropped_subsets = enumerated.dropped_subsets
        per_program_results[name] = select_minigraphs(
            program, profile, policy=policy, candidates=restricted)

    return DomainSelectionResult(
        suite_name=suite_name,
        templates=shared_templates,
        per_program=per_program_results,
    )
