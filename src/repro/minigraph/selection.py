"""Greedy, coverage-driven mini-graph selection.

Implements the paper's Section 3.2 selection algorithm:

1. enumerate all legal candidates (done by :mod:`repro.minigraph.enumeration`);
2. coalesce static instances with identical dataflow/immediates into
   templates and rank templates by estimated coverage ``sum (n-1)*f`` over
   their instances, where ``f`` comes from a basic-block frequency profile;
3. iterate over the ranked list, selecting templates until the MGT is full or
   the list is exhausted; a static instruction may belong to at most one
   selected mini-graph, so the benefit of the remaining templates is adjusted
   after every pick.

The module also implements *domain-specific* selection (one MGT shared by a
whole benchmark suite, Figure 5 bottom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..program.basic_block import BlockIndex
from ..program.profile import BlockProfile
from ..program.program import Program
from ..program.rewriter import RewriteSite
from .candidates import MiniGraphCandidate
from .enumeration import EnumerationLimits, enumerate_minigraphs
from .policies import DEFAULT_POLICY, SelectionPolicy
from .templates import MiniGraphTemplate


@dataclass
class SelectedMiniGraph:
    """One selected template with its MGID and committed static instances."""

    mgid: int
    template: MiniGraphTemplate
    instances: List[MiniGraphCandidate] = field(default_factory=list)
    dynamic_benefit: int = 0

    @property
    def static_instances(self) -> int:
        return len(self.instances)


@dataclass
class SelectionResult:
    """Output of :func:`select_minigraphs` for one program.

    Attributes:
        program_name: the analysed program.
        selected: selected templates in MGID order.
        policy: the policy that produced this selection.
        dynamic_instructions: denominator for coverage (from the profile).
        covered_dynamic_instructions: dynamic instructions removed from the
            pipeline (``sum (n-1) * f`` over committed instances).
        candidate_count: number of admissible candidates considered.
    """

    program_name: str
    selected: List[SelectedMiniGraph]
    policy: SelectionPolicy
    dynamic_instructions: int
    covered_dynamic_instructions: int
    candidate_count: int

    @property
    def coverage(self) -> float:
        """Fraction of dynamic instructions removed from the pipeline."""
        if self.dynamic_instructions <= 0:
            return 0.0
        return self.covered_dynamic_instructions / self.dynamic_instructions

    @property
    def template_count(self) -> int:
        return len(self.selected)

    def rewrite_sites(self) -> List[RewriteSite]:
        """All static instances as rewrite sites for the binary rewriter."""
        sites: List[RewriteSite] = []
        for selected in self.selected:
            for instance in selected.instances:
                sites.append(instance.rewrite_site(selected.mgid))
        return sites

    def coverage_by_size(self) -> Dict[int, float]:
        """Coverage contribution broken down by mini-graph size (Figure 5 stacks)."""
        if self.dynamic_instructions <= 0:
            return {}
        by_size: Dict[int, int] = {}
        for selected in self.selected:
            size = selected.template.size
            by_size[size] = by_size.get(size, 0) + selected.dynamic_benefit
        return {size: benefit / self.dynamic_instructions
                for size, benefit in sorted(by_size.items())}

    def templates(self) -> List[MiniGraphTemplate]:
        return [selected.template for selected in self.selected]


@dataclass
class _TemplateGroup:
    """All admissible instances of one template, with bookkeeping."""

    template: MiniGraphTemplate
    instances: List[MiniGraphCandidate] = field(default_factory=list)

    def benefit(self, profile: BlockProfile, used: Set[int]) -> int:
        """Current benefit: sum of (n-1)*f over still-available instances."""
        total = 0
        for instance in self.instances:
            if instance.conflicts_with(used):
                continue
            total += instance.instructions_removed * profile.frequency(instance.block_id)
        return total

    def available_instances(self, used: Set[int]) -> List[MiniGraphCandidate]:
        return [instance for instance in self.instances if not instance.conflicts_with(used)]


def group_candidates(candidates: Iterable[MiniGraphCandidate]
                     ) -> Dict[Tuple, _TemplateGroup]:
    """Coalesce candidates by template identity."""
    groups: Dict[Tuple, _TemplateGroup] = {}
    for candidate in candidates:
        key = candidate.template.key()
        group = groups.get(key)
        if group is None:
            group = _TemplateGroup(template=candidate.template)
            groups[key] = group
        group.instances.append(candidate)
    return groups


def select_minigraphs(program: Program, profile: BlockProfile, *,
                      policy: SelectionPolicy = DEFAULT_POLICY,
                      candidates: Optional[Sequence[MiniGraphCandidate]] = None
                      ) -> SelectionResult:
    """Run greedy coverage-driven selection for one program.

    Args:
        program: the program to analyse.
        profile: basic-block frequency profile used as the benefit weight.
        policy: admissibility filters and MGT capacity.
        candidates: pre-enumerated candidates; when omitted, candidates are
            enumerated with limits derived from the policy.  Passing a shared
            candidate list lets the Figure 5 sweeps avoid re-enumerating for
            every MGT size.
    """
    if candidates is None:
        limits = EnumerationLimits(max_size=policy.max_size,
                                   allow_memory=policy.allow_memory,
                                   allow_branches=policy.allow_branches)
        candidates = enumerate_minigraphs(program, limits)
    admissible = policy.filter_candidates(candidates)
    groups = group_candidates(admissible)

    used: Set[int] = set()
    selected: List[SelectedMiniGraph] = []
    covered = 0
    remaining = dict(groups)

    while remaining and len(selected) < policy.max_templates:
        best_key = None
        best_benefit = 0
        # Ties are broken on the template's textual key so selection order is
        # deterministic across runs and Python versions.
        for key, group in remaining.items():
            benefit = group.benefit(profile, used)
            if benefit > best_benefit or (benefit == best_benefit and benefit > 0
                                          and (best_key is None or repr(key) < repr(best_key))):
                best_key = key
                best_benefit = benefit
        if best_key is None or best_benefit <= 0:
            break
        group = remaining.pop(best_key)
        instances = []
        benefit = 0
        for instance in group.available_instances(used):
            instances.append(instance)
            benefit += instance.instructions_removed * profile.frequency(instance.block_id)
            used.update(instance.member_indices)
        if not instances:
            continue
        selected.append(SelectedMiniGraph(
            mgid=len(selected),
            template=group.template,
            instances=instances,
            dynamic_benefit=benefit,
        ))
        covered += benefit

    return SelectionResult(
        program_name=program.name,
        selected=selected,
        policy=policy,
        dynamic_instructions=profile.dynamic_instructions,
        covered_dynamic_instructions=covered,
        candidate_count=len(admissible),
    )


@dataclass
class DomainSelectionResult:
    """Result of domain-specific selection across a suite of programs."""

    suite_name: str
    templates: List[MiniGraphTemplate]
    per_program: Dict[str, SelectionResult]

    @property
    def template_count(self) -> int:
        return len(self.templates)

    def mean_coverage(self) -> float:
        if not self.per_program:
            return 0.0
        return sum(result.coverage for result in self.per_program.values()) / len(self.per_program)


def select_domain_minigraphs(programs: Mapping[str, Tuple[Program, BlockProfile]], *,
                             suite_name: str,
                             policy: SelectionPolicy = DEFAULT_POLICY
                             ) -> DomainSelectionResult:
    """Select one shared MGT for a whole benchmark suite (Figure 5, bottom).

    The shared MGT holds the ``policy.max_templates`` templates with the
    highest total benefit summed across every program in the suite.  Each
    program is then re-selected restricted to that shared template set, so the
    reported coverage reflects what the shared MGT actually achieves per
    program.
    """
    per_program_candidates: Dict[str, List[MiniGraphCandidate]] = {}
    total_benefit: Dict[Tuple, int] = {}
    representative_template: Dict[Tuple, MiniGraphTemplate] = {}

    limits = EnumerationLimits(max_size=policy.max_size,
                               allow_memory=policy.allow_memory,
                               allow_branches=policy.allow_branches)
    for name, (program, profile) in programs.items():
        candidates = policy.filter_candidates(enumerate_minigraphs(program, limits))
        per_program_candidates[name] = candidates
        # Per-program greedy commitment is how instances would actually be
        # claimed; the cross-suite ranking uses the uncontended benefit, which
        # is the standard (and the paper's implied) approximation.
        for key, group in group_candidates(candidates).items():
            representative_template.setdefault(key, group.template)
            benefit = group.benefit(programs[name][1], set())
            total_benefit[key] = total_benefit.get(key, 0) + benefit

    ranked = sorted(total_benefit.items(), key=lambda item: (-item[1], repr(item[0])))
    shared_keys = {key for key, benefit in ranked[:policy.max_templates] if benefit > 0}
    shared_templates = [representative_template[key] for key, _ in ranked[:policy.max_templates]
                        if key in shared_keys]

    per_program_results: Dict[str, SelectionResult] = {}
    for name, (program, profile) in programs.items():
        restricted = [candidate for candidate in per_program_candidates[name]
                      if candidate.template.key() in shared_keys]
        per_program_results[name] = select_minigraphs(
            program, profile, policy=policy, candidates=restricted)

    return DomainSelectionResult(
        suite_name=suite_name,
        templates=shared_templates,
        per_program=per_program_results,
    )
