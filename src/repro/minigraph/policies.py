"""Selection policies: which candidate mini-graphs are admissible.

Section 6.2 of the paper studies three selection sub-policies that trade
coverage against serialization and replay costs:

* disallowing *externally serial* mini-graphs (external inputs to any
  instruction other than the first),
* disallowing *internally parallel* mini-graphs (graphs that are not serial
  dependence chains and therefore suffer internal serialization), and
* disallowing *replay-vulnerable* mini-graphs (loads in any position other
  than the last, which force a whole-graph replay on a cache miss).

A :class:`SelectionPolicy` bundles these switches together with the basic
size and composition limits so that the Figure 5 and Figure 7 sweeps are just
different policy values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List

from .candidates import MiniGraphCandidate
from .registry import TEMPLATE_REGISTRY, TemplateFlags
from .templates import MiniGraphTemplate


@dataclass(frozen=True)
class SelectionPolicy:
    """Filters applied to candidates before greedy selection.

    Attributes:
        max_size: maximum mini-graph size in instructions.
        allow_memory: admit integer-memory mini-graphs (loads/stores).
        allow_branches: admit graphs terminating in a control transfer.
        allow_externally_serial: admit graphs with external inputs to
            instructions other than the first.
        allow_internally_parallel: admit graphs that are not serial chains.
        allow_interior_loads: admit graphs whose load is not the terminal
            instruction (replay-vulnerable).
        max_templates: MGT capacity (number of distinct templates).
    """

    max_size: int = 4
    allow_memory: bool = True
    allow_branches: bool = True
    allow_externally_serial: bool = True
    allow_internally_parallel: bool = True
    allow_interior_loads: bool = True
    max_templates: int = 512

    def admits_structure(self, flags) -> bool:
        """Admission on precomputed structural flags (see
        :class:`repro.minigraph.registry.TemplateFlags`)."""
        if flags.size > self.max_size:
            return False
        if flags.has_memory and not self.allow_memory:
            return False
        if flags.has_branch and not self.allow_branches:
            return False
        if flags.externally_serial and not self.allow_externally_serial:
            return False
        if flags.internally_parallel and not self.allow_internally_parallel:
            return False
        if flags.interior_load and not self.allow_interior_loads:
            return False
        return True

    def admits_template(self, template: MiniGraphTemplate) -> bool:
        """True if ``template`` satisfies every enabled restriction."""
        return self.admits_structure(TemplateFlags.of(template))

    def filter_candidates(self, candidates: Iterable[MiniGraphCandidate]
                          ) -> List[MiniGraphCandidate]:
        """Return the candidates admitted by this policy.

        Candidates carrying an interned template id (everything the
        enumerator produces) go through the registry's per-``(policy, id)``
        admission memo, so the structural predicates run once per distinct
        dataflow shape instead of once per static instance.
        """
        registry = TEMPLATE_REGISTRY
        admitted: List[MiniGraphCandidate] = []
        for candidate in candidates:
            template_id = candidate.template_id
            if template_id is not None:
                if registry.admits(self, template_id):
                    admitted.append(candidate)
            elif self.admits_template(candidate.template):
                admitted.append(candidate)
        return admitted

    # -- named variants used by the experiment harnesses ----------------------

    def integer_only(self) -> "SelectionPolicy":
        """Variant admitting only integer (no-memory) mini-graphs."""
        return replace(self, allow_memory=False)

    def without_external_serialization(self) -> "SelectionPolicy":
        """Variant rejecting externally serial mini-graphs (Figure 7)."""
        return replace(self, allow_externally_serial=False)

    def without_internal_serialization(self) -> "SelectionPolicy":
        """Variant rejecting internally parallel mini-graphs (Figure 7)."""
        return replace(self, allow_internally_parallel=False)

    def without_replay_vulnerable(self) -> "SelectionPolicy":
        """Variant rejecting interior-load mini-graphs (Figure 7)."""
        return replace(self, allow_interior_loads=False)

    def with_mgt_entries(self, entries: int) -> "SelectionPolicy":
        """Variant with a different MGT capacity (Figure 5 sweep)."""
        return replace(self, max_templates=entries)

    def with_max_size(self, size: int) -> "SelectionPolicy":
        """Variant with a different maximum mini-graph size (Figure 5 sweep)."""
        return replace(self, max_size=size)


#: Policy used for all headline experiments: 512 application-specific
#: mini-graphs of at most four instructions each (Section 6.1).
DEFAULT_POLICY = SelectionPolicy()

#: Integer-only variant (the paper's "int" configurations).
INTEGER_POLICY = DEFAULT_POLICY.integer_only()

#: Integer-memory variant (identical to the default, named for clarity).
INTEGER_MEMORY_POLICY = DEFAULT_POLICY

#: The fully restricted policy from Figure 7 (no serialization, no replay).
NON_SERIAL_NON_REPLAY_POLICY = (
    DEFAULT_POLICY
    .without_external_serialization()
    .without_internal_serialization()
    .without_replay_vulnerable()
)
