"""Coverage accounting for mini-graph selections.

*Coverage* is the paper's benefit metric: the fraction of dynamic
instructions a selection removes from the pipeline (a mini-graph of size
``n`` executed ``f`` times removes ``(n-1)*f`` instructions).  This module
computes coverage reports for single selections, for MGT-size / graph-size
sweeps (Figure 5) and for robustness comparisons across input sets
(Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..program.profile import BlockProfile
from ..program.program import Program
from .candidates import MiniGraphCandidate
from .enumeration import EnumerationLimits, enumerate_minigraphs
from .policies import SelectionPolicy
from .selection import SelectionResult, select_minigraphs

#: MGT sizes swept in Figure 5.
FIGURE5_MGT_SIZES: Tuple[int, ...] = (32, 128, 512, 2048)
#: Maximum mini-graph sizes swept in Figure 5.
FIGURE5_GRAPH_SIZES: Tuple[int, ...] = (2, 3, 4, 8)


@dataclass
class CoverageCell:
    """One cell of the Figure 5 sweep: coverage for (MGT size, graph size)."""

    mgt_entries: int
    max_graph_size: int
    coverage: float
    coverage_by_size: Dict[int, float] = field(default_factory=dict)
    templates_used: int = 0


@dataclass
class CoverageSweep:
    """Full Figure 5 sweep for one program and one policy family.

    ``truncated_blocks``/``dropped_subsets`` surface what the shared
    enumeration's safety valves dropped — every cell of a truncated sweep
    under-reports coverage, so the figure harness flags it.
    """

    program_name: str
    memory_allowed: bool
    cells: List[CoverageCell] = field(default_factory=list)
    truncated_blocks: int = 0
    dropped_subsets: int = 0

    @property
    def truncated(self) -> bool:
        return self.truncated_blocks > 0

    def cell(self, mgt_entries: int, max_graph_size: int) -> CoverageCell:
        for cell in self.cells:
            if cell.mgt_entries == mgt_entries and cell.max_graph_size == max_graph_size:
                return cell
        raise KeyError((mgt_entries, max_graph_size))

    def coverage_at(self, mgt_entries: int, max_graph_size: int) -> float:
        return self.cell(mgt_entries, max_graph_size).coverage


def coverage_of_selection(selection: SelectionResult) -> float:
    """Coverage of one selection (fraction of dynamic instructions removed)."""
    return selection.coverage


def sweep_coverage(program: Program, profile: BlockProfile, *,
                   base_policy: SelectionPolicy,
                   mgt_sizes: Sequence[int] = FIGURE5_MGT_SIZES,
                   graph_sizes: Sequence[int] = FIGURE5_GRAPH_SIZES) -> CoverageSweep:
    """Run the Figure 5 sweep for one program.

    Candidates are enumerated once at the largest graph size and reused for
    every cell; smaller cells simply filter by the policy's ``max_size`` and
    ``max_templates``.
    """
    largest = max(graph_sizes)
    limits = EnumerationLimits(max_size=largest,
                               allow_memory=base_policy.allow_memory,
                               allow_branches=base_policy.allow_branches)
    candidates = enumerate_minigraphs(program, limits)

    sweep = CoverageSweep(program_name=program.name,
                          memory_allowed=base_policy.allow_memory,
                          truncated_blocks=candidates.truncated_blocks,
                          dropped_subsets=candidates.dropped_subsets)
    for mgt_entries in mgt_sizes:
        for graph_size in graph_sizes:
            policy = base_policy.with_mgt_entries(mgt_entries).with_max_size(graph_size)
            selection = select_minigraphs(program, profile, policy=policy,
                                          candidates=candidates)
            sweep.cells.append(CoverageCell(
                mgt_entries=mgt_entries,
                max_graph_size=graph_size,
                coverage=selection.coverage,
                coverage_by_size=selection.coverage_by_size(),
                templates_used=selection.template_count,
            ))
    return sweep


@dataclass
class RobustnessReport:
    """Coverage obtained when selecting on one input and measuring on another."""

    program_name: str
    reference_coverage: float
    cross_input_coverage: float

    @property
    def relative_loss(self) -> float:
        """Relative coverage reduction, e.g. 0.15 for a drop from 20% to 17%."""
        if self.reference_coverage <= 0.0:
            return 0.0
        return 1.0 - (self.cross_input_coverage / self.reference_coverage)


def measure_selection_on_profile(selection: SelectionResult,
                                 profile: BlockProfile) -> float:
    """Coverage that ``selection`` achieves under a *different* profile.

    Used by the robustness study: mini-graphs selected with a training-input
    profile are evaluated against the reference-input profile.
    """
    if profile.dynamic_instructions <= 0:
        return 0.0
    covered = 0
    for selected in selection.selected:
        for instance in selected.instances:
            covered += instance.instructions_removed * profile.frequency(instance.block_id)
    return covered / profile.dynamic_instructions


def robustness_report(program: Program, reference_profile: BlockProfile,
                      alternate_profile: BlockProfile, *,
                      policy: SelectionPolicy) -> RobustnessReport:
    """Compare same-input selection against cross-input selection coverage."""
    reference_selection = select_minigraphs(program, reference_profile, policy=policy)
    alternate_selection = select_minigraphs(program, alternate_profile, policy=policy)
    return RobustnessReport(
        program_name=program.name,
        reference_coverage=reference_selection.coverage,
        cross_input_coverage=measure_selection_on_profile(alternate_selection,
                                                          reference_profile),
    )
