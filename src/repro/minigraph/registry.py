"""Process-wide interning of mini-graph templates.

Every distinct dataflow shape — a :class:`~repro.minigraph.templates.
MiniGraphTemplate` canonical structural key — is interned exactly once per
process and identified by a small integer id.  Interning replaces the seed
code's tuple-key dicts and ``repr()``-based tie-breaking everywhere templates
are grouped, ranked, or matched:

* **grouping** (selection, domain folds) keys by the interned id instead of
  re-building ``template.key()`` tuples per candidate;
* **ranking** uses :meth:`TemplateRegistry.sort_key` — the canonical key's
  ``repr`` computed once per distinct template — so tie-breaking is a string
  cached at intern time (or, inside the selection loop, a dense integer rank
  derived from it) rather than ``repr()`` re-evaluated per comparison.  Ranks
  therefore realise the seed's exact total order;
* **matching** (policy admission) is memoized per ``(policy, id)`` on top of
  structural flags computed once at intern time.

Lifetime and pool transfer
--------------------------

The registry is a process-global singleton (:data:`TEMPLATE_REGISTRY`) that
lives for the whole process, exactly like the interned decode metadata in
:mod:`repro.uarch.decode` (the :mod:`repro.program.weakcache` idiom family).
Ids are **process-local and never serialized**: artifacts (selections, MGTs,
cached candidates) carry the template *objects*, and a worker process
re-interns them lazily on first use — :func:`candidate_template_id` caches
the id on the candidate in-process and strips it on pickling, so ids can
never leak across the :meth:`repro.api.Session.map` / ``sweep`` process pool
or the on-disk artifact store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .candidates import MiniGraphCandidate
from .templates import MiniGraphTemplate, OperandKind

_KIND_CODES = {
    OperandKind.EXTERNAL: 0,
    OperandKind.INTERNAL: 1,
    OperandKind.IMMEDIATE: 2,
    OperandKind.ZERO: 3,
}


@dataclass(frozen=True)
class TemplateFlags:
    """Structural properties of a template, precomputed at intern time.

    These are exactly the properties a :class:`~repro.minigraph.policies.
    SelectionPolicy` inspects for admission; caching them per interned id
    turns policy filtering into flat tuple tests instead of per-candidate
    property-chain walks over the opcode table.
    """

    size: int
    has_memory: bool
    has_branch: bool
    externally_serial: bool
    internally_parallel: bool
    interior_load: bool

    @classmethod
    def of(cls, template: MiniGraphTemplate) -> "TemplateFlags":
        return cls(
            size=template.size,
            has_memory=template.has_memory,
            has_branch=template.has_branch,
            externally_serial=template.is_externally_serial,
            internally_parallel=template.is_internally_parallel,
            interior_load=template.has_interior_load,
        )


class TemplateRegistry:
    """Interns templates by canonical structural key: one int id per shape."""

    __slots__ = ("_ids", "_invalid", "_templates", "_sort_keys", "_flags",
                 "_by_objid", "_admits")

    def __init__(self) -> None:
        self._ids: Dict[Tuple, int] = {}            # raw structural key -> id
        self._invalid: Set[Tuple] = set()           # keys that fail validation
        self._templates: List[MiniGraphTemplate] = []
        self._sort_keys: List[str] = []             # repr(template.key()), cached
        self._flags: List[TemplateFlags] = []
        self._by_objid: Dict[int, int] = {}         # id(canonical object) -> id
        self._admits: Dict[object, Dict[int, bool]] = {}

    def __len__(self) -> int:
        return len(self._templates)

    # -- interning ----------------------------------------------------------

    def intern(self, template: MiniGraphTemplate) -> int:
        """Return the process-wide id of ``template``'s structural shape."""
        tid = self._by_objid.get(id(template))
        if tid is not None and self._templates[tid] is template:
            return tid
        raw = raw_template_key(template)
        tid = self._ids.get(raw)
        if tid is None:
            tid = self._register(raw, template)
        return tid

    def intern_raw(self, raw_key: Tuple,
                   build: Callable[[], Optional[Tuple[
                       MiniGraphTemplate, Optional[str], Optional["TemplateFlags"]]]]
                   ) -> Optional[int]:
        """Intern by raw structural key, building the template only on a miss.

        ``build`` runs only on a registry miss and returns ``(template,
        sort_key, flags)`` — or ``None`` for structurally invalid shapes
        (:class:`~repro.minigraph.templates.TemplateError`); invalid keys are
        memoized so a shape is validated at most once per process.  Builders
        that can derive the sort key / structural flags from the raw key
        cheaply (the enumerator) return them; passing ``None`` falls back to
        deriving them from the template itself.
        """
        tid = self._ids.get(raw_key)
        if tid is not None:
            return tid
        if raw_key in self._invalid:
            return None
        built = build()
        if built is None:
            self._invalid.add(raw_key)
            return None
        template, sort_key, flags = built
        return self._register(raw_key, template, sort_key, flags)

    def _register(self, raw_key: Tuple, template: MiniGraphTemplate,
                  sort_key: Optional[str] = None,
                  flags: Optional[TemplateFlags] = None) -> int:
        tid = len(self._templates)
        self._ids[raw_key] = tid
        self._templates.append(template)
        self._sort_keys.append(repr(template.key()) if sort_key is None
                               else sort_key)
        self._flags.append(TemplateFlags.of(template) if flags is None
                           else flags)
        self._by_objid[id(template)] = tid
        return tid

    # -- lookups ------------------------------------------------------------

    def template(self, tid: int) -> MiniGraphTemplate:
        """The canonical (shared) template object for ``tid``."""
        return self._templates[tid]

    def sort_key(self, tid: int) -> str:
        """Canonical tie-break key: ``repr(template.key())`` cached at intern."""
        return self._sort_keys[tid]

    def flags(self, tid: int) -> TemplateFlags:
        return self._flags[tid]

    def ranks(self, tids: Sequence[int]) -> Dict[int, int]:
        """Dense ranks over ``tids`` in canonical-key sort order.

        Rank comparison reproduces the seed's ``repr(key)`` tie-break exactly:
        distinct shapes have distinct canonical reprs, so the order is total.
        """
        ordered = sorted(set(tids), key=self._sort_keys.__getitem__)
        return {tid: rank for rank, tid in enumerate(ordered)}

    def admits(self, policy, tid: int) -> bool:
        """Memoized ``policy.admits_template`` on the interned shape."""
        per_policy = self._admits.get(policy)
        if per_policy is None:
            per_policy = self._admits[policy] = {}
        admitted = per_policy.get(tid)
        if admitted is None:
            admitted = per_policy[tid] = policy.admits_structure(self._flags[tid])
        return admitted


def _encode_ref(ref) -> Optional[int]:
    """Pack an OperandRef into a small int for raw structural keys."""
    if ref is None:
        return None
    return (_KIND_CODES[ref.kind] << 8) | ref.index


def raw_template_key(template: MiniGraphTemplate) -> Tuple:
    """The registry's raw structural key (bijective with ``template.key()``)."""
    return (
        tuple((t.op, _encode_ref(t.src0), _encode_ref(t.src1), t.imm)
              for t in template.instructions),
        template.num_inputs,
        template.out_index,
    )


#: The process-wide registry.  Pool workers each grow their own; ids are
#: never serialized (see the module docstring).
TEMPLATE_REGISTRY = TemplateRegistry()


def candidate_template_id(candidate: MiniGraphCandidate,
                          registry: Optional[TemplateRegistry] = None) -> int:
    """Interned template id of ``candidate``, cached on the instance.

    The cache is process-local: it is stripped when the candidate is pickled
    (pool transfer, artifact store) and lazily re-established by the first
    call in the receiving process.
    """
    tid = candidate.template_id
    if tid is None:
        tid = (registry or TEMPLATE_REGISTRY).intern(candidate.template)
        object.__setattr__(candidate, "template_id", tid)
    return tid


@dataclass
class FrontendStats:
    """Process-wide counters for the compilation front-end.

    Sampled by :class:`repro.api.Session` around the select stage (deltas are
    folded into :class:`~repro.api.session.SessionStats`, which merges across
    the process pool) and reported by ``repro bench``.
    """

    enumeration_seconds: float = 0.0
    selection_seconds: float = 0.0
    candidates_enumerated: int = 0
    blocks_enumerated: int = 0
    block_memo_hits: int = 0
    block_memo_misses: int = 0
    truncated_blocks: int = 0
    dropped_candidates: int = 0
    selection_runs: int = 0

    def snapshot(self) -> "FrontendStats":
        return FrontendStats(**vars(self))

    def delta_since(self, earlier: "FrontendStats") -> "FrontendStats":
        return FrontendStats(**{name: value - getattr(earlier, name)
                                for name, value in vars(self).items()})


#: Process-wide front-end instrumentation, updated by enumeration/selection.
FRONTEND_STATS = FrontendStats()
