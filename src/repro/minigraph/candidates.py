"""Mini-graph candidate instances.

A *candidate* binds a :class:`~repro.minigraph.templates.MiniGraphTemplate`
to one static location: the basic block, the layout indices of the member
instructions, the chosen anchor, and the concrete interface register names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..program.rewriter import RewriteSite
from .templates import MiniGraphTemplate


@dataclass(frozen=True)
class MiniGraphCandidate:
    """One static instance of a mini-graph.

    Attributes:
        block_id: basic block containing the instance.
        member_indices: program layout indices of the members, in program
            order (which is also the template's execution order).
        anchor_index: layout index where the handle will be planted.
        template: the register-name-independent definition.
        input_regs: architectural registers bound to E0/E1 (in order).
        output_reg: architectural register bound to the output, or None.
        template_id: process-local interned id of ``template`` (see
            :mod:`repro.minigraph.registry`).  A cache, not part of the
            candidate's identity: excluded from equality/hash and stripped on
            pickling because ids never transfer across processes.
    """

    block_id: int
    member_indices: Tuple[int, ...]
    anchor_index: int
    template: MiniGraphTemplate
    input_regs: Tuple[int, ...]
    output_reg: Optional[int]
    template_id: Optional[int] = field(default=None, compare=False, repr=False)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["template_id"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    @property
    def size(self) -> int:
        """Number of member instructions."""
        return len(self.member_indices)

    @property
    def instructions_removed(self) -> int:
        """Pipeline slots saved per dynamic execution: ``n - 1``."""
        return self.size - 1

    def conflicts_with(self, used_indices: set[int]) -> bool:
        """True if any member instruction is already claimed by another graph."""
        return any(index in used_indices for index in self.member_indices)

    def rewrite_site(self, mgid: int) -> RewriteSite:
        """Convert this candidate into a :class:`RewriteSite` with ``mgid``."""
        return RewriteSite(
            anchor_index=self.anchor_index,
            member_indices=self.member_indices,
            mgid=mgid,
            input_regs=self.input_regs,
            output_reg=self.output_reg,
        )

    def describe(self) -> str:
        """Readable one-line description for reports and debugging."""
        members = ",".join(str(index) for index in self.member_indices)
        return (f"block {self.block_id} [{members}] anchor {self.anchor_index}: "
                f"{self.template.describe()}")
