"""The mini-graph table (MGT): header table (MGHT) and sequencing table (MGST).

The MGT is the central component of the mini-graph execution core
(Section 4.1).  It is organised as two tables:

* the **MGHT** holds the scheduling information read at rename time and
  copied into the scheduler entry: the functional unit of the first
  instruction (``FU0``), a bitmap of the functional units needed by the
  second and subsequent instructions per execution cycle (``FUBMP``), and the
  latency of the interface register output (``LAT``);
* the **MGST** holds per-cycle execution information — one *bank* per
  execution cycle containing functional unit, opcode, immediate and the two
  bypass directives (operand sources).  Multi-cycle operations (loads) leave
  the following ``latency - 1`` banks empty so that one pipelined sequencer
  per issued handle can simply advance one bank per cycle.

This module builds MGHT/MGST entries from templates, exposes a
:class:`MiniGraphTable` keyed by MGID, and provides the functional expansion
used by the verification path (expand a handle back into concrete
instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass, opcode
from ..isa.registers import ZERO_REG
from .selection import SelectedMiniGraph, SelectionResult
from .templates import MiniGraphTemplate, OperandKind, OperandRef, TemplateInstruction

#: Functional-unit names used in MGHT/MGST entries.
FU_ALU_PIPELINE = "AP"
FU_ALU = "ALU"
FU_LOAD = "LD"
FU_STORE = "ST"
FU_BRANCH = "BR"


class MgtError(ValueError):
    """Raised for malformed MGT contents or unknown MGIDs."""


def functional_unit_for(template_insn: TemplateInstruction, *,
                        on_alu_pipeline: bool, pipeline_stage: int) -> str:
    """Functional unit used by one constituent instruction."""
    if template_insn.is_load:
        return FU_LOAD
    if template_insn.is_store:
        return FU_STORE
    if on_alu_pipeline:
        return f"{FU_ALU_PIPELINE}.{pipeline_stage}"
    if template_insn.is_control:
        return FU_BRANCH if not on_alu_pipeline else f"{FU_ALU_PIPELINE}.{pipeline_stage}"
    return FU_ALU


@dataclass(frozen=True)
class MgstEntry:
    """One MGST bank entry: the control signals for one execution cycle."""

    fu: str
    op: str
    imm: Optional[int]
    b0: Optional[OperandRef]
    b1: Optional[OperandRef]
    slot: int  # position of this instruction within the template

    def describe(self) -> str:
        operands = [str(ref) for ref in (self.b0, self.b1) if ref is not None]
        if self.imm is not None:
            operands.append(str(self.imm))
        return f"{self.fu} {self.op} " + ",".join(operands)


@dataclass(frozen=True)
class MghtEntry:
    """One MGHT row: scheduling header for a mini-graph."""

    lat: int                      # latency of the interface register output
    fu0: str                      # functional unit of the first instruction
    fubmp: Tuple[Optional[str], ...]  # FU needed in each cycle after the first
    total_latency: int            # execution latency of the complete graph
    size: int                     # number of constituent instructions

    def describe(self) -> str:
        bmp = ":".join(fu if fu else "-" for fu in self.fubmp) if self.fubmp else "-"
        return f"LAT={self.lat} FU0={self.fu0} FUBMP={bmp}"


@dataclass
class MgtEntry:
    """Complete MGT row: template plus its MGHT header and MGST banks."""

    mgid: int
    template: MiniGraphTemplate
    header: MghtEntry
    banks: List[Optional[MgstEntry]]

    @property
    def execution_cycles(self) -> int:
        """Number of MGST banks (execution cycles) the graph occupies."""
        return len(self.banks)


@dataclass(frozen=True)
class MgtBuildOptions:
    """Assumptions baked into MGHT/MGST construction.

    Attributes:
        load_latency: L1-hit load latency assumed by the bank layout.
        use_alu_pipeline: place contiguous integer portions on ALU pipelines.
        collapsing: pair-wise collapsing ALU pipelines — two dependent integer
            operations execute per cycle (Section 6.2 "latency reduction").
    """

    load_latency: int = 2
    use_alu_pipeline: bool = True
    collapsing: bool = False


def _integer_run_is_pipelined(template: MiniGraphTemplate, options: MgtBuildOptions) -> List[bool]:
    """Decide, per instruction, whether it runs on an ALU pipeline stage.

    Integer-only graphs run entirely on an ALU pipeline.  Integer-memory
    graphs run their contiguous trailing integer portion on an ALU pipeline
    when one exists (the paper's "partial mini-graphs on ALU pipelines"),
    while the memory operation uses a load/store port.
    """
    flags = [False] * template.size
    if not options.use_alu_pipeline:
        return flags
    if template.is_integer_only:
        return [not t.is_memory for t in template.instructions]
    # Trailing run of non-memory instructions after the last memory op.
    last_memory = max(i for i, t in enumerate(template.instructions) if t.is_memory)
    for position in range(last_memory + 1, template.size):
        flags[position] = True
    return flags


def build_mgt_entry(mgid: int, template: MiniGraphTemplate,
                    options: Optional[MgtBuildOptions] = None) -> MgtEntry:
    """Build the MGHT header and MGST banks for one template."""
    options = options or MgtBuildOptions()
    pipelined = _integer_run_is_pipelined(template, options)

    banks: List[Optional[MgstEntry]] = []
    start_cycle: List[int] = []
    pipeline_stage = 0
    collapsed_parity = 0
    for position, template_insn in enumerate(template.instructions):
        if position == 0:
            cycle = 0
        else:
            previous_start = start_cycle[position - 1]
            previous = template.instructions[position - 1]
            previous_latency = options.load_latency if previous.is_load else 1
            if (options.collapsing and pipelined[position] and pipelined[position - 1]
                    and not previous.is_load and collapsed_parity == 0):
                # Pair-wise collapsing: this instruction shares its
                # predecessor's cycle.
                cycle = previous_start
                collapsed_parity = 1
            else:
                cycle = previous_start + previous_latency
                collapsed_parity = 0
        start_cycle.append(cycle)
        while len(banks) <= cycle:
            banks.append(None)
        fu = functional_unit_for(template_insn, on_alu_pipeline=pipelined[position],
                                 pipeline_stage=pipeline_stage)
        if pipelined[position]:
            pipeline_stage += 1
        entry = MgstEntry(fu=fu, op=template_insn.op, imm=template_insn.imm,
                          b0=template_insn.src0, b1=template_insn.src1, slot=position)
        if banks[cycle] is None:
            banks[cycle] = entry
        else:
            # Collapsed pair: represent the second op of the pair in the same
            # bank by chaining its description; the timing model only needs
            # the cycle occupancy, which is identical.
            first = banks[cycle]
            banks[cycle] = MgstEntry(
                fu=first.fu, op=f"{first.op}+{entry.op}", imm=first.imm,
                b0=first.b0, b1=first.b1, slot=first.slot)

    last = template.instructions[-1]
    last_latency = options.load_latency if last.is_load else 1
    total_latency = start_cycle[-1] + last_latency
    if template.out_index is not None:
        out_insn = template.instructions[template.out_index]
        out_latency = options.load_latency if out_insn.is_load else 1
        lat = start_cycle[template.out_index] + out_latency
    else:
        lat = total_latency

    fubmp: List[Optional[str]] = []
    for cycle in range(1, len(banks)):
        bank = banks[cycle]
        fubmp.append(bank.fu if bank is not None else None)

    header = MghtEntry(
        lat=lat,
        fu0=banks[0].fu if banks[0] is not None else FU_ALU,
        fubmp=tuple(fubmp),
        total_latency=total_latency,
        size=template.size,
    )
    return MgtEntry(mgid=mgid, template=template, header=header, banks=banks)


#: Scratch registers used when expanding a handle back into concrete
#: instructions (the DISE dedicated register set, modelled as registers that
#: the 64-register architectural namespace never uses for program values).
_SCRATCH_REGS = (25, 27)


class MiniGraphTable:
    """The on-chip MGT: MGID -> (template, MGHT header, MGST banks)."""

    def __init__(self, options: Optional[MgtBuildOptions] = None) -> None:
        self._options = options or MgtBuildOptions()
        self._entries: Dict[int, MgtEntry] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_selection(cls, selection: SelectionResult,
                       options: Optional[MgtBuildOptions] = None) -> "MiniGraphTable":
        """Build an MGT from a selection result (MGIDs follow the selection)."""
        table = cls(options)
        for selected in selection.selected:
            table.add(selected.mgid, selected.template)
        return table

    @classmethod
    def from_templates(cls, templates: Sequence[MiniGraphTemplate],
                       options: Optional[MgtBuildOptions] = None) -> "MiniGraphTable":
        """Build an MGT from bare templates, assigning dense MGIDs."""
        table = cls(options)
        for mgid, template in enumerate(templates):
            table.add(mgid, template)
        return table

    def add(self, mgid: int, template: MiniGraphTemplate) -> MgtEntry:
        """Install ``template`` at ``mgid``; returns the built entry."""
        if mgid in self._entries:
            raise MgtError(f"MGID {mgid} already present in the MGT")
        entry = build_mgt_entry(mgid, template, self._options)
        self._entries[mgid] = entry
        return entry

    # -- lookup ----------------------------------------------------------------

    def __contains__(self, mgid: int) -> bool:
        return mgid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, mgid: int) -> MgtEntry:
        """Return the MGT entry for ``mgid``."""
        try:
            return self._entries[mgid]
        except KeyError as exc:
            raise MgtError(f"MGID {mgid} not present in the MGT") from exc

    def header(self, mgid: int) -> MghtEntry:
        """MGHT read: the scheduling header for ``mgid``."""
        return self.lookup(mgid).header

    def banks(self, mgid: int) -> List[Optional[MgstEntry]]:
        """MGST read: the per-cycle banks for ``mgid``."""
        return self.lookup(mgid).banks

    def mgids(self) -> List[int]:
        return sorted(self._entries)

    @property
    def options(self) -> MgtBuildOptions:
        return self._options

    # -- functional expansion ---------------------------------------------------

    def expand_handle(self, handle: Instruction) -> List[Instruction]:
        """Expand a handle into concrete instructions (DISE expansion path).

        Interior values are carried in scratch registers drawn from the DISE
        dedicated register set; the interface output is written to the
        handle's destination register.  The expansion is only used for
        functional verification and for processors that do not support a
        given MGID — a mini-graph processor executes the handle directly from
        the MGST.
        """
        if not handle.is_handle:
            raise MgtError("expand_handle requires an mg handle")
        entry = self.lookup(handle.mgid)
        template = entry.template
        external_regs = [handle.rs1, handle.rs2]
        value_reg: Dict[int, int] = {}
        expansion: List[Instruction] = []

        for position, template_insn in enumerate(template.instructions):
            if position == template.out_index:
                dest = handle.rd if handle.rd is not None else ZERO_REG
            elif template_insn.spec.writes_rd:
                dest = _SCRATCH_REGS[position % len(_SCRATCH_REGS)]
            else:
                dest = None
            value_reg[position] = dest if dest is not None else ZERO_REG

            def resolve(ref: Optional[OperandRef]) -> Optional[int]:
                if ref is None:
                    return None
                if ref.kind is OperandKind.EXTERNAL:
                    return external_regs[ref.index]
                if ref.kind is OperandKind.INTERNAL:
                    return value_reg[ref.index]
                return ZERO_REG

            spec = opcode(template_insn.op)
            rs1 = resolve(template_insn.src0) if spec.reads_rs1 or spec.is_memory else None
            rs2 = resolve(template_insn.src1) if spec.reads_rs2 else None
            expansion.append(Instruction(
                template_insn.op,
                rd=dest if spec.writes_rd else None,
                rs1=rs1,
                rs2=rs2,
                imm=template_insn.imm,
            ))
        return expansion

    # -- formatting -------------------------------------------------------------

    def format_logical(self, mgid: int) -> str:
        """Render one entry in the logical MGT format of Figure 1c."""
        entry = self.lookup(mgid)
        columns = [str(t) for t in entry.template.instructions]
        out = entry.template.out_index if entry.template.out_index is not None else "-"
        return f"MGID {mgid}: OUT={out} | " + " | ".join(columns)

    def format_physical(self, mgid: int) -> str:
        """Render one entry in the physical MGHT/MGST format of Figure 2."""
        entry = self.lookup(mgid)
        banks = []
        for cycle, bank in enumerate(entry.banks):
            banks.append(f"MGST.{cycle}[{bank.describe() if bank else 'empty'}]")
        return f"MGID {mgid}: MGHT[{entry.header.describe()}] " + " ".join(banks)

    def describe(self) -> str:
        """Render the whole table (physical format), one line per MGID."""
        return "\n".join(self.format_physical(mgid) for mgid in self.mgids())
