"""Mini-graph templates and operand references.

A *template* is the dataflow definition of a mini-graph independent of the
register names at any particular static instance: the per-instruction opcodes
and immediates, plus for every operand a reference that says whether it comes
from the handle's interface (E0/E1), from an earlier instruction inside the
graph (M0, M1, ...) or from an immediate.  Static instances with identical
templates are coalesced into a single MGT entry, exactly as the paper does
("we consider static mini-graphs with identical dataflows and immediate
operands as equivalent").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from ..isa.opcodes import OpClass, opcode

#: Maximum number of interface (external) register inputs.
MAX_EXTERNAL_INPUTS = 2
#: Maximum number of interface (external) register outputs.
MAX_EXTERNAL_OUTPUTS = 1
#: Maximum number of memory operations inside one mini-graph.
MAX_MEMORY_OPS = 1


class OperandKind(enum.Enum):
    """Where an operand of a template instruction comes from."""

    EXTERNAL = "E"   # interface input register (E0 or E1 of the handle)
    INTERNAL = "M"   # result of an earlier instruction in the same graph
    IMMEDIATE = "IM"  # literal encoded in the MGST
    ZERO = "Z"       # hardwired zero register


@dataclass(frozen=True)
class OperandRef:
    """Reference to the source of one operand.

    Attributes:
        kind: operand source kind.
        index: E index (0/1) for EXTERNAL, producing-instruction position for
            INTERNAL, unused otherwise.
    """

    kind: OperandKind
    index: int = 0

    def __str__(self) -> str:
        if self.kind is OperandKind.EXTERNAL:
            return f"E{self.index}"
        if self.kind is OperandKind.INTERNAL:
            return f"M{self.index}"
        if self.kind is OperandKind.IMMEDIATE:
            return "IM"
        return "zero"

    @property
    def is_external(self) -> bool:
        return self.kind is OperandKind.EXTERNAL

    @property
    def is_internal(self) -> bool:
        return self.kind is OperandKind.INTERNAL


def external(index: int) -> OperandRef:
    """Shorthand for an external operand reference (E0/E1)."""
    return OperandRef(OperandKind.EXTERNAL, index)


def internal(index: int) -> OperandRef:
    """Shorthand for an internal operand reference (M<index>)."""
    return OperandRef(OperandKind.INTERNAL, index)


def immediate() -> OperandRef:
    """Shorthand for an immediate operand reference."""
    return OperandRef(OperandKind.IMMEDIATE)


def zero() -> OperandRef:
    """Shorthand for a hardwired-zero operand reference."""
    return OperandRef(OperandKind.ZERO)


@dataclass(frozen=True)
class TemplateInstruction:
    """One constituent instruction of a mini-graph template.

    Attributes:
        op: mnemonic.
        src0: reference for the first source operand (None if unused).
        src1: reference for the second source operand (None if unused).
        imm: immediate value (ALU immediate, memory displacement, or branch
            target PC), or None.
    """

    op: str
    src0: Optional[OperandRef] = None
    src1: Optional[OperandRef] = None
    imm: Optional[int] = None

    @property
    def spec(self):
        return opcode(self.op)

    @property
    def is_load(self) -> bool:
        return self.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    @property
    def is_memory(self) -> bool:
        return self.spec.is_memory

    @property
    def is_control(self) -> bool:
        return self.spec.is_control

    @property
    def is_alu(self) -> bool:
        return self.spec.op_class is OpClass.ALU

    def operand_refs(self) -> Tuple[OperandRef, ...]:
        """All non-None operand references."""
        refs = []
        if self.src0 is not None:
            refs.append(self.src0)
        if self.src1 is not None:
            refs.append(self.src1)
        return tuple(refs)

    def __str__(self) -> str:
        parts = [str(ref) for ref in self.operand_refs()]
        if self.imm is not None:
            parts.append(str(self.imm))
        return f"{self.op} " + ",".join(parts) if parts else self.op


class TemplateError(ValueError):
    """Raised for malformed mini-graph templates."""


@dataclass(frozen=True)
class MiniGraphTemplate:
    """The register-name-independent definition of a mini-graph.

    Attributes:
        instructions: constituent instructions in execution order.
        num_inputs: number of interface inputs actually used (0..2).
        out_index: position of the instruction whose result is the interface
            output, or None if the graph produces no register output (e.g. a
            store or a compare-and-branch whose values are all dead).
    """

    instructions: Tuple[TemplateInstruction, ...]
    num_inputs: int
    out_index: Optional[int]

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check the template against the paper's structural constraints."""
        if len(self.instructions) < 2:
            raise TemplateError("a mini-graph needs at least two instructions")
        if not 0 <= self.num_inputs <= MAX_EXTERNAL_INPUTS:
            raise TemplateError(
                f"mini-graphs allow at most {MAX_EXTERNAL_INPUTS} external inputs")
        if self.out_index is not None and not 0 <= self.out_index < len(self.instructions):
            raise TemplateError("out_index outside the template")
        memory_ops = sum(1 for t in self.instructions if t.is_memory)
        if memory_ops > MAX_MEMORY_OPS:
            raise TemplateError(
                f"mini-graphs allow at most {MAX_MEMORY_OPS} memory operation")
        for position, template_insn in enumerate(self.instructions):
            if template_insn.is_control and position != len(self.instructions) - 1:
                raise TemplateError("control transfers must be terminal")
            if not template_insn.spec.minigraph_eligible:
                raise TemplateError(
                    f"{template_insn.op} is not eligible for mini-graph inclusion")
            for ref in template_insn.operand_refs():
                if ref.is_internal and ref.index >= position:
                    raise TemplateError(
                        "internal operand must reference an earlier instruction")
                if ref.is_external and ref.index >= max(self.num_inputs, 1):
                    if ref.index >= MAX_EXTERNAL_INPUTS:
                        raise TemplateError("external operand index out of range")
        if self.out_index is not None and not self.instructions[self.out_index].spec.writes_rd:
            raise TemplateError("output-producing instruction writes no register")

    # -- structural properties -----------------------------------------------

    @property
    def size(self) -> int:
        """Number of constituent instructions."""
        return len(self.instructions)

    @property
    def has_load(self) -> bool:
        return any(t.is_load for t in self.instructions)

    @property
    def has_store(self) -> bool:
        return any(t.is_store for t in self.instructions)

    @property
    def has_memory(self) -> bool:
        return self.has_load or self.has_store

    @property
    def has_branch(self) -> bool:
        return any(t.is_control for t in self.instructions)

    @property
    def is_integer_only(self) -> bool:
        """True for graphs containing no memory operation (paper: "integer")."""
        return not self.has_memory

    @property
    def is_integer_memory(self) -> bool:
        """True for graphs containing a load or a store."""
        return self.has_memory

    @property
    def load_position(self) -> Optional[int]:
        """Position of the load, if any."""
        for position, template_insn in enumerate(self.instructions):
            if template_insn.is_load:
                return position
        return None

    @property
    def has_interior_load(self) -> bool:
        """True if a load appears at any position other than the last.

        Interior-load graphs must be replayed wholesale on a cache miss
        (Section 4.3), which is the effect the Figure 7 "replay" policy
        removes.
        """
        position = self.load_position
        return position is not None and position != self.size - 1

    @property
    def is_externally_serial(self) -> bool:
        """True if any instruction other than the first has an external input.

        Such graphs may suffer *external serialization*: the first instruction
        is spuriously forced to wait for inputs only needed later.
        """
        for position, template_insn in enumerate(self.instructions[1:], start=1):
            if any(ref.is_external for ref in template_insn.operand_refs()):
                return True
        return False

    @property
    def is_internally_parallel(self) -> bool:
        """True if the graph is not a pure serial dependence chain.

        Internally parallel graphs suffer *internal serialization* because the
        MGST drives one instruction per cycle.
        """
        for position, template_insn in enumerate(self.instructions[1:], start=1):
            consumes_previous = any(
                ref.is_internal and ref.index == position - 1
                for ref in template_insn.operand_refs()
            )
            if not consumes_previous:
                return True
        return False

    @property
    def is_serial_chain(self) -> bool:
        """True if every instruction consumes its predecessor's result."""
        return not self.is_internally_parallel

    # -- identity ------------------------------------------------------------

    def key(self) -> Tuple:
        """Hashable identity used to coalesce equivalent static instances."""
        return (
            tuple((t.op, t.src0, t.src1, t.imm) for t in self.instructions),
            self.num_inputs,
            self.out_index,
        )

    def describe(self) -> str:
        """One-line description, e.g. ``addl E0,2 ; cmplt M0,E1 ; bne M1``."""
        body = " ; ".join(str(t) for t in self.instructions)
        out = f" -> out@{self.out_index}" if self.out_index is not None else " -> no out"
        return body + out

    def __str__(self) -> str:
        return self.describe()
