"""Enumeration of legal mini-graph candidates within basic blocks.

This implements the first stage of the paper's selection flow: analyse the
static executable and enumerate all possible legal mini-graphs.  Enumeration
works one basic block at a time (atomicity restricts mini-graphs to basic
blocks) and grows connected subgraphs of the block-local dependence graph up
to a maximum size.

Legality testing goes beyond the interface (two register inputs, one register
output) and composition (one memory operation, terminal control transfer)
conditions: because member instructions are collapsed around a statically
chosen *anchor* (branch > memory operation > last instruction), the collapse
must not change execution semantics.  The interference check rejects
candidates whose members cannot be moved to the anchor position past the
intervening non-member instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..program.basic_block import BasicBlock, BlockIndex
from ..program.cfg import ControlFlowGraph
from ..program.liveness import LivenessInfo, analyze_liveness
from ..program.program import Program
from .candidates import MiniGraphCandidate
from .templates import (
    MAX_EXTERNAL_INPUTS,
    MiniGraphTemplate,
    OperandRef,
    TemplateError,
    TemplateInstruction,
    external,
    immediate,
    internal,
    zero,
)


@dataclass
class EnumerationLimits:
    """Bounds on the enumeration search.

    Attributes:
        max_size: maximum number of instructions per mini-graph (paper sweeps
            2, 3, 4 and 8; the main results use 4).
        allow_memory: include loads/stores (integer-memory mini-graphs).
        allow_branches: include terminal control transfers.
        max_candidates_per_block: safety valve on pathological blocks.
    """

    max_size: int = 4
    allow_memory: bool = True
    allow_branches: bool = True
    max_candidates_per_block: int = 4096


@dataclass
class _BlockContext:
    """Pre-computed per-block information shared by all candidate checks."""

    block: BasicBlock
    eligible: List[int]                     # block-local positions eligible for membership
    def_position: Dict[int, List[int]]      # register -> positions that define it
    reads: Dict[int, Tuple[int, ...]]       # position -> registers read
    writes: Dict[int, Optional[int]]        # position -> register written (or None)
    most_recent_def: Dict[Tuple[int, int], Optional[int]]  # (position, reg) -> defining position
    live_after_block: FrozenSet[int]


class MiniGraphEnumerator:
    """Enumerates legal mini-graph candidates for one program."""

    def __init__(self, program: Program, limits: Optional[EnumerationLimits] = None) -> None:
        self._program = program
        self._limits = limits or EnumerationLimits()
        self._cfg = ControlFlowGraph(program)
        self._liveness = analyze_liveness(self._cfg)

    @property
    def limits(self) -> EnumerationLimits:
        return self._limits

    @property
    def block_index(self) -> BlockIndex:
        return self._cfg.block_index

    # -- public API ----------------------------------------------------------

    def enumerate(self) -> List[MiniGraphCandidate]:
        """Enumerate all legal candidates in the whole program."""
        candidates: List[MiniGraphCandidate] = []
        for block in self._cfg.block_index.blocks:
            candidates.extend(self.enumerate_block(block))
        return candidates

    def enumerate_block(self, block: BasicBlock) -> List[MiniGraphCandidate]:
        """Enumerate all legal candidates within one basic block."""
        context = self._build_context(block)
        if len(context.eligible) < 2:
            return []
        subsets = self._connected_subsets(context)
        candidates: List[MiniGraphCandidate] = []
        for subset in subsets:
            candidate = self._try_build_candidate(context, subset)
            if candidate is not None:
                candidates.append(candidate)
            if len(candidates) >= self._limits.max_candidates_per_block:
                break
        return candidates

    # -- per-block pre-computation --------------------------------------------

    #: Conditional moves read their destination register implicitly, which the
    #: interface analysis does not model; they stay singletons.
    _INELIGIBLE_OPS = frozenset({"cmovne", "cmoveq"})

    def _is_eligible(self, insn: Instruction, position: int, block: BasicBlock) -> bool:
        spec = insn.spec
        if insn.is_nop or insn.is_handle:
            return False
        if insn.op in self._INELIGIBLE_OPS:
            return False
        if not spec.minigraph_eligible:
            return False
        if spec.is_memory and not self._limits.allow_memory:
            return False
        if spec.is_control:
            if not self._limits.allow_branches:
                return False
            # Control transfers must be terminal: only the block's last
            # instruction qualifies, and indirect transfers / calls never do
            # (minigraph_eligible already excludes them).
            if position != len(block.instructions) - 1:
                return False
        return True

    def _build_context(self, block: BasicBlock) -> _BlockContext:
        eligible = [position for position, insn in enumerate(block.instructions)
                    if self._is_eligible(insn, position, block)]
        def_position: Dict[int, List[int]] = {}
        reads: Dict[int, Tuple[int, ...]] = {}
        writes: Dict[int, Optional[int]] = {}
        for position, insn in enumerate(block.instructions):
            reads[position] = insn.source_registers()
            dest = insn.destination_register()
            writes[position] = dest
            if dest is not None:
                def_position.setdefault(dest, []).append(position)

        most_recent_def: Dict[Tuple[int, int], Optional[int]] = {}
        last_def: Dict[int, int] = {}
        for position, insn in enumerate(block.instructions):
            for reg in reads[position]:
                most_recent_def[(position, reg)] = last_def.get(reg)
            dest = writes[position]
            if dest is not None:
                last_def[dest] = position

        return _BlockContext(
            block=block,
            eligible=eligible,
            def_position=def_position,
            reads=reads,
            writes=writes,
            most_recent_def=most_recent_def,
            live_after_block=self._liveness.live_out.get(block.block_id, frozenset()),
        )

    # -- connected subset enumeration -----------------------------------------

    def _dependence_neighbours(self, context: _BlockContext) -> Dict[int, Set[int]]:
        """Undirected block-local true-dependence adjacency among eligible positions."""
        neighbours: Dict[int, Set[int]] = {position: set() for position in context.eligible}
        eligible_set = set(context.eligible)
        for position in context.eligible:
            for reg in context.reads[position]:
                producer = context.most_recent_def.get((position, reg))
                if producer is not None and producer in eligible_set:
                    neighbours[position].add(producer)
                    neighbours[producer].add(position)
        return neighbours

    def _connected_subsets(self, context: _BlockContext) -> List[Tuple[int, ...]]:
        """Enumerate connected subsets (size 2..max_size) of the dependence graph.

        Uses the standard "anchor at the smallest member" expansion so every
        connected subset is produced exactly once.
        """
        neighbours = self._dependence_neighbours(context)
        max_size = self._limits.max_size
        results: List[Tuple[int, ...]] = []
        limit = self._limits.max_candidates_per_block * 4

        def expand(current: Set[int], frontier: Set[int], forbidden: Set[int]) -> None:
            if len(results) >= limit:
                return
            if 2 <= len(current) <= max_size:
                results.append(tuple(sorted(current)))
            if len(current) >= max_size:
                return
            frontier_list = sorted(frontier)
            local_forbidden = set(forbidden)
            for node in frontier_list:
                new_frontier = (frontier | neighbours[node]) - current - {node} - local_forbidden
                expand(current | {node}, new_frontier, local_forbidden)
                local_forbidden.add(node)

        for seed in context.eligible:
            forbidden = {node for node in context.eligible if node < seed}
            expand({seed}, neighbours[seed] - forbidden, forbidden)
            if len(results) >= limit:
                break
        return results

    # -- candidate construction and legality ----------------------------------

    def _choose_anchor(self, context: _BlockContext, members: Sequence[int]) -> int:
        """Anchor preference: branch, then memory operation, then last member."""
        for position in members:
            if context.block.instructions[position].is_control:
                return position
        for position in members:
            if context.block.instructions[position].is_memory:
                return position
        return max(members)

    def _try_build_candidate(self, context: _BlockContext,
                             members: Tuple[int, ...]) -> Optional[MiniGraphCandidate]:
        block = context.block
        instructions = [block.instructions[position] for position in members]

        memory_count = sum(1 for insn in instructions if insn.is_memory)
        if memory_count > 1:
            return None
        control_count = sum(1 for insn in instructions if insn.is_control)
        if control_count > 1:
            return None
        if control_count == 1 and not instructions[-1].is_control:
            return None

        interface = self._interface_registers(context, members)
        if interface is None:
            return None
        input_regs, output_reg, out_member = interface

        anchor = self._choose_anchor(context, members)
        if not self._movement_is_legal(context, members, anchor):
            return None

        template = self._build_template(context, members, input_regs, out_member)
        if template is None:
            return None

        return MiniGraphCandidate(
            block_id=block.block_id,
            member_indices=tuple(block.start_index + position for position in members),
            anchor_index=block.start_index + anchor,
            template=template,
            input_regs=input_regs,
            output_reg=output_reg,
        )

    def _interface_registers(self, context: _BlockContext, members: Tuple[int, ...]
                             ) -> Optional[Tuple[Tuple[int, ...], Optional[int], Optional[int]]]:
        """Compute (input_regs, output_reg, out_member) or None if illegal.

        *Inputs* are registers read by members whose most recent definition is
        not another member.  *Outputs* are member-produced values that are
        observable outside the graph: read later in the block by a non-member
        before redefinition, or reaching the block end while the register is
        live-out.  At most two inputs and one output are allowed.
        """
        member_set = set(members)
        block = context.block
        input_regs: List[int] = []
        for position in members:
            for reg in context.reads[position]:
                producer = context.most_recent_def.get((position, reg))
                if producer is not None and producer in member_set:
                    continue
                if reg not in input_regs:
                    input_regs.append(reg)
        if len(input_regs) > MAX_EXTERNAL_INPUTS:
            return None

        output_reg: Optional[int] = None
        out_member: Optional[int] = None
        block_length = len(block.instructions)
        for position in members:
            dest = context.writes[position]
            if dest is None:
                continue
            visible = False
            redefined = False
            for later in range(position + 1, block_length):
                if later not in member_set and dest in context.reads[later]:
                    visible = True
                    break
                if context.writes[later] == dest:
                    # Redefinition kills this value before any external use in
                    # the block; redefinitions by later members do not make the
                    # value external either.
                    redefined = True
                    break
            if not visible and not redefined and dest in context.live_after_block:
                visible = True
            if visible:
                if output_reg is not None and (output_reg != dest or out_member != position):
                    return None
                output_reg = dest
                out_member = position
        return tuple(input_regs), output_reg, out_member

    def _movement_is_legal(self, context: _BlockContext, members: Tuple[int, ...],
                           anchor: int) -> bool:
        """Check that collapsing all members at ``anchor`` preserves semantics.

        A member moving across an intervening non-member must not have a true,
        anti or output register dependence with it, and memory members must
        not cross other memory operations (conservative no-alias assumption).
        """
        member_set = set(members)
        block = context.block
        for position in members:
            if position == anchor:
                continue
            low, high = (position, anchor) if position < anchor else (anchor, position)
            member_reads = set(context.reads[position])
            member_write = context.writes[position]
            member_is_memory = block.instructions[position].is_memory
            for between in range(low + 1, high):
                if between in member_set:
                    continue
                other = block.instructions[between]
                other_write = context.writes[between]
                other_reads = set(context.reads[between])
                if other_write is not None and other_write in member_reads:
                    return False
                if member_write is not None and member_write in other_reads:
                    return False
                if member_write is not None and member_write == other_write:
                    return False
                if member_is_memory and other.is_memory:
                    return False
                if other.is_control:
                    # Should not happen inside a block, but never hoist across
                    # a control transfer.
                    return False
        return True

    def _build_template(self, context: _BlockContext, members: Tuple[int, ...],
                        input_regs: Tuple[int, ...],
                        out_member: Optional[int]) -> Optional[MiniGraphTemplate]:
        member_set = set(members)
        position_to_slot = {position: slot for slot, position in enumerate(members)}
        input_index = {reg: index for index, reg in enumerate(input_regs)}
        template_instructions: List[TemplateInstruction] = []

        for position in members:
            insn = context.block.instructions[position]
            spec = insn.spec

            def ref_for(reg: Optional[int], is_read: bool) -> Optional[OperandRef]:
                if not is_read or reg is None:
                    return None
                if reg not in context.reads[position]:
                    # Reads of the hardwired zero register.
                    return zero()
                producer = context.most_recent_def.get((position, reg))
                if producer is not None and producer in member_set:
                    return internal(position_to_slot[producer])
                return external(input_index[reg])

            src0 = ref_for(insn.rs1, spec.reads_rs1)
            src1 = ref_for(insn.rs2, spec.reads_rs2)
            if spec.is_store:
                # Stores read the stored value through rs2 and the address
                # base through rs1; both are captured above.
                pass
            template_instructions.append(
                TemplateInstruction(op=insn.op, src0=src0, src1=src1, imm=insn.imm))

        out_index = position_to_slot[out_member] if out_member is not None else None
        try:
            return MiniGraphTemplate(
                instructions=tuple(template_instructions),
                num_inputs=len(input_regs),
                out_index=out_index,
            )
        except TemplateError:
            return None


def enumerate_minigraphs(program: Program,
                         limits: Optional[EnumerationLimits] = None
                         ) -> List[MiniGraphCandidate]:
    """Enumerate all legal mini-graph candidates of ``program``."""
    return MiniGraphEnumerator(program, limits).enumerate()
