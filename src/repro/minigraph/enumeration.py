"""Enumeration of legal mini-graph candidates within basic blocks.

This implements the first stage of the paper's selection flow: analyse the
static executable and enumerate all possible legal mini-graphs.  Enumeration
works one basic block at a time (atomicity restricts mini-graphs to basic
blocks) and grows connected subgraphs of the block-local dependence graph up
to a maximum size.

Legality testing goes beyond the interface (two register inputs, one register
output) and composition (one memory operation, terminal control transfer)
conditions: because member instructions are collapsed around a statically
chosen *anchor* (branch > memory operation > last instruction), the collapse
must not change execution semantics.  The interference check rejects
candidates whose members cannot be moved to the anchor position past the
intervening non-member instructions.

Incremental core (see ``docs/architecture.md``, "Compilation front-end"):

* per-block candidate lists are **memoized** process-wide, keyed by the
  block's instruction content, the enumeration limits, and the slice of the
  block's live-out set that its written registers can observe.  Fragment-
  built workloads, shared loop bodies and repeated domain-suite blocks
  enumerate once; later blocks only rebind the cached *relative* candidates
  to their layout position;
* the per-block context is flat position-indexed arrays (reads, producers,
  writes, opcode flags) instead of dicts-of-tuples, and connected-subset
  search runs on int bitsets;
* templates are interned through :mod:`repro.minigraph.registry` from raw
  structural keys, so a dataflow shape is constructed and validated at most
  once per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass, opcode
from ..isa.registers import is_zero_reg
from ..program.basic_block import BasicBlock, BlockIndex
from ..program.cfg import ControlFlowGraph
from ..program.liveness import analyze_liveness
from ..program.program import Program
from ..program.weakcache import PerProgramCache
from .candidates import MiniGraphCandidate
from .registry import FRONTEND_STATS, TEMPLATE_REGISTRY, TemplateFlags
from .templates import (
    MAX_EXTERNAL_INPUTS,
    MiniGraphTemplate,
    OperandRef,
    TemplateError,
    TemplateInstruction,
    external,
    internal,
    zero,
)


@dataclass
class EnumerationLimits:
    """Bounds on the enumeration search.

    Attributes:
        max_size: maximum number of instructions per mini-graph (paper sweeps
            2, 3, 4 and 8; the main results use 4).
        allow_memory: include loads/stores (integer-memory mini-graphs).
        allow_branches: include terminal control transfers.
        max_candidates_per_block: safety valve on pathological blocks.
    """

    max_size: int = 4
    allow_memory: bool = True
    allow_branches: bool = True
    max_candidates_per_block: int = 4096

    def _memo_key(self) -> Tuple:
        return (self.max_size, self.allow_memory, self.allow_branches,
                self.max_candidates_per_block)


class EnumerationResult(List[MiniGraphCandidate]):
    """Candidate list plus enumeration bookkeeping.

    A ``list`` subclass so every existing consumer of
    :func:`enumerate_minigraphs` keeps working; the extra attributes surface
    what the safety valves silently dropped (``truncated_blocks`` /
    ``dropped_subsets``) and how the block memo behaved.  Slicing or
    filtering returns plain lists — the attributes describe this exact
    enumeration, not derived views.
    """

    truncated_blocks: int = 0
    dropped_subsets: int = 0
    blocks_enumerated: int = 0
    memo_hits: int = 0
    memo_misses: int = 0

    @property
    def truncated(self) -> bool:
        """True if any per-block safety valve dropped candidates."""
        return self.truncated_blocks > 0


# -- per-opcode flags ----------------------------------------------------------

class _OpFlags(NamedTuple):
    """Flat per-mnemonic facts, resolved once instead of per property chain."""

    eligible: bool        # minigraph_eligible and not nop/handle
    is_memory: bool
    is_control: bool
    is_load: bool
    is_store: bool
    reads_rs1: bool
    reads_rs2: bool
    writes_rd: bool
    is_cmov: bool         # implicitly reads the destination register


_OP_FLAGS: Dict[str, _OpFlags] = {}

#: Encoded operand references (see :func:`repro.minigraph.registry.
#: raw_template_key`): ``(kind << 8) | index`` with kind E=0, M=1, IM=2, Z=3.
_ENC_EXTERNAL_BASE = 0 << 8
_ENC_INTERNAL_BASE = 1 << 8
_ENC_ZERO_BASE = 3 << 8


def _op_flags(op: str) -> _OpFlags:
    flags = _OP_FLAGS.get(op)
    if flags is None:
        spec = opcode(op)
        flags = _OP_FLAGS[op] = _OpFlags(
            eligible=(spec.minigraph_eligible
                      and spec.op_class is not OpClass.NOP
                      and spec.op_class is not OpClass.MG),
            is_memory=spec.is_memory,
            is_control=spec.is_control,
            is_load=spec.is_load,
            is_store=spec.is_store,
            reads_rs1=spec.reads_rs1,
            reads_rs2=spec.reads_rs2,
            writes_rd=spec.writes_rd,
            is_cmov=op in ("cmovne", "cmoveq"),
        )
    return flags


def _sources_of(insn: Instruction, flags: _OpFlags) -> Tuple[int, ...]:
    """``Instruction.source_registers`` on precomputed flags (hot path)."""
    sources = []
    rs1 = insn.rs1
    if flags.reads_rs1 and rs1 is not None and not is_zero_reg(rs1):
        sources.append(rs1)
    rs2 = insn.rs2
    if flags.reads_rs2 and rs2 is not None and not is_zero_reg(rs2):
        sources.append(rs2)
    if flags.is_cmov:
        rd = insn.rd
        if rd is not None and not is_zero_reg(rd) and rd not in sources:
            sources.append(rd)
    return tuple(sources)


def _dest_of(insn: Instruction, flags: _OpFlags) -> Optional[int]:
    """``Instruction.destination_register`` on precomputed flags (hot path)."""
    rd = insn.rd
    if not flags.writes_rd or rd is None or is_zero_reg(rd):
        return None
    return rd


# -- per-program analysis (weak, id-keyed cache) -------------------------------

@dataclass
class _ProgramAnalysis:
    """Blocks and live-out sets, shared by every enumeration of a program.

    Deliberately holds no reference to the :class:`Program` itself (nor to a
    CFG/BlockIndex, which do) so the :class:`PerProgramCache` finalizer can
    fire; basic blocks only reference the shared instruction objects.
    """

    blocks: List[BasicBlock]
    live_out: Dict[int, FrozenSet[int]]


def _build_analysis(program: Program) -> _ProgramAnalysis:
    cfg = ControlFlowGraph(program)
    liveness = analyze_liveness(cfg)
    return _ProgramAnalysis(blocks=cfg.block_index.blocks,
                            live_out=dict(liveness.live_out))


_ANALYSIS_CACHE: PerProgramCache[_ProgramAnalysis] = PerProgramCache(_build_analysis)


# -- flat per-block context ----------------------------------------------------

class _BlockContext:
    """Pre-computed per-block information shared by all candidate checks.

    Everything is a flat position-indexed array (the seed used
    dicts-of-tuples); ``read_producers[p]`` is aligned with ``reads[p]`` and
    holds the block-local position of each read's most recent definition, or
    None when the value enters the block live.  ``out_events[p]`` is the
    ordered list of later positions that read or redefine ``writes[p]`` (cut
    at the first redefinition) — the only positions the output-visibility
    scan ever has to look at, precomputed once per block instead of walking
    the whole block tail per candidate.
    """

    __slots__ = ("instructions", "eligible", "reads", "read_producers",
                 "writes", "is_memory", "is_control", "live_after_block",
                 "out_events")

    def __init__(self, instructions: Sequence[Instruction],
                 limits: EnumerationLimits,
                 live_after_block: FrozenSet[int]) -> None:
        self.instructions = instructions
        self.live_after_block = live_after_block
        length = len(instructions)
        self.reads: List[Tuple[int, ...]] = []
        self.read_producers: List[Tuple[Optional[int], ...]] = []
        self.writes: List[Optional[int]] = []
        self.is_memory: List[bool] = []
        self.is_control: List[bool] = []
        self.eligible: List[int] = []
        last_def: Dict[int, int] = {}
        for position, insn in enumerate(instructions):
            flags = _op_flags(insn.op)
            sources = _sources_of(insn, flags)
            self.reads.append(sources)
            self.read_producers.append(
                tuple(last_def.get(reg) for reg in sources))
            dest = _dest_of(insn, flags)
            self.writes.append(dest)
            self.is_memory.append(flags.is_memory)
            self.is_control.append(flags.is_control)
            if self._is_eligible(insn, flags, position, length, limits):
                self.eligible.append(position)
            if dest is not None:
                last_def[dest] = position

        writes = self.writes
        reads = self.reads
        out_events: List[Optional[Tuple[Tuple[int, bool, bool], ...]]] = []
        for position in range(length):
            dest = writes[position]
            if dest is None:
                out_events.append(None)
                continue
            events: List[Tuple[int, bool, bool]] = []
            for later in range(position + 1, length):
                reads_dest = dest in reads[later]
                writes_dest = writes[later] == dest
                if reads_dest or writes_dest:
                    events.append((later, reads_dest, writes_dest))
                    if writes_dest:
                        break
            out_events.append(tuple(events))
        self.out_events = out_events

    #: Conditional moves read their destination register implicitly, which the
    #: interface analysis does not model; they stay singletons.
    _INELIGIBLE_OPS = frozenset({"cmovne", "cmoveq"})

    @classmethod
    def _is_eligible(cls, insn: Instruction, flags: _OpFlags, position: int,
                     block_length: int, limits: EnumerationLimits) -> bool:
        if not flags.eligible or insn.op in cls._INELIGIBLE_OPS:
            return False
        if flags.is_memory and not limits.allow_memory:
            return False
        if flags.is_control:
            if not limits.allow_branches:
                return False
            # Control transfers must be terminal: only the block's last
            # instruction qualifies, and indirect transfers / calls never do
            # (minigraph_eligible already excludes them).
            if position != block_length - 1:
                return False
        return True

    def producer_of(self, position: int, reg: int) -> Optional[int]:
        """Most recent block-local definition of ``reg`` before ``position``."""
        sources = self.reads[position]
        for slot, read_reg in enumerate(sources):
            if read_reg == reg:
                return self.read_producers[position][slot]
        return None


# -- memoized relative candidates ----------------------------------------------

class _RelCandidate(NamedTuple):
    """A candidate relative to its block start, ready for cheap rebinding."""

    members: Tuple[int, ...]      # block-local member positions
    anchor: int                   # block-local anchor position
    template: MiniGraphTemplate   # canonical (registry-owned) object
    template_id: int
    input_regs: Tuple[int, ...]
    output_reg: Optional[int]


class _BlockEntry(NamedTuple):
    """Memoized enumeration of one block content under one set of limits."""

    candidates: Tuple[_RelCandidate, ...]
    truncated: bool
    dropped_subsets: int


#: Process-wide block memo.  Soft-capped: insertion-ordered eviction keeps
#: streaming over an unbounded corpus O(distinct recent blocks).
_BLOCK_MEMO: Dict[Tuple, _BlockEntry] = {}
_BLOCK_MEMO_MAX = 1 << 16


def clear_block_memo() -> None:
    """Drop every memoized block (tests, memory pressure)."""
    _BLOCK_MEMO.clear()


def block_memo_size() -> int:
    return len(_BLOCK_MEMO)


def _block_content_key(instructions: Sequence[Instruction]
                       ) -> Tuple[Tuple, FrozenSet[int]]:
    """(content key, written registers) of a block's instruction sequence."""
    rows = []
    written: Set[int] = set()
    for insn in instructions:
        op = insn.op
        rows.append((op, insn.rd, insn.rs1, insn.rs2, insn.imm))
        dest = _dest_of(insn, _op_flags(op))
        if dest is not None:
            written.add(dest)
    return tuple(rows), frozenset(written)


class MiniGraphEnumerator:
    """Enumerates legal mini-graph candidates for one program."""

    def __init__(self, program: Program, limits: Optional[EnumerationLimits] = None) -> None:
        self._program = program
        self._limits = limits or EnumerationLimits()
        self._analysis = _ANALYSIS_CACHE.get(program)
        self._block_index: Optional[BlockIndex] = None

    @property
    def limits(self) -> EnumerationLimits:
        return self._limits

    @property
    def block_index(self) -> BlockIndex:
        if self._block_index is None:
            self._block_index = BlockIndex(self._program)
        return self._block_index

    # -- public API ----------------------------------------------------------

    def enumerate(self) -> EnumerationResult:
        """Enumerate all legal candidates in the whole program."""
        start = time.perf_counter()
        result = EnumerationResult()
        for block in self._analysis.blocks:
            entry, hit = self._block_entry(block)
            result.blocks_enumerated += 1
            if hit:
                result.memo_hits += 1
            else:
                result.memo_misses += 1
            if entry.truncated:
                result.truncated_blocks += 1
                result.dropped_subsets += entry.dropped_subsets
            base = block.start_index
            block_id = block.block_id
            for rel in entry.candidates:
                result.append(MiniGraphCandidate(
                    block_id=block_id,
                    member_indices=tuple(base + position
                                         for position in rel.members),
                    anchor_index=base + rel.anchor,
                    template=rel.template,
                    input_regs=rel.input_regs,
                    output_reg=rel.output_reg,
                    template_id=rel.template_id,
                ))
        stats = FRONTEND_STATS
        stats.enumeration_seconds += time.perf_counter() - start
        stats.candidates_enumerated += len(result)
        stats.blocks_enumerated += result.blocks_enumerated
        stats.block_memo_hits += result.memo_hits
        stats.block_memo_misses += result.memo_misses
        stats.truncated_blocks += result.truncated_blocks
        stats.dropped_candidates += result.dropped_subsets
        return result

    def enumerate_block(self, block: BasicBlock) -> List[MiniGraphCandidate]:
        """Enumerate all legal candidates within one basic block."""
        entry, _ = self._block_entry(block)
        base = block.start_index
        return [MiniGraphCandidate(
                    block_id=block.block_id,
                    member_indices=tuple(base + position
                                         for position in rel.members),
                    anchor_index=base + rel.anchor,
                    template=rel.template,
                    input_regs=rel.input_regs,
                    output_reg=rel.output_reg,
                    template_id=rel.template_id)
                for rel in entry.candidates]

    # -- memo ----------------------------------------------------------------

    def _block_entry(self, block: BasicBlock) -> Tuple[_BlockEntry, bool]:
        live_out = self._analysis.live_out.get(block.block_id, frozenset())
        content_key, written = _block_content_key(block.instructions)
        memo_key = (content_key, tuple(sorted(live_out & written)),
                    self._limits._memo_key())
        entry = _BLOCK_MEMO.get(memo_key)
        if entry is not None:
            return entry, True
        context = _BlockContext(block.instructions, self._limits,
                                live_out)
        entry = self._enumerate_context(context)
        if len(_BLOCK_MEMO) >= _BLOCK_MEMO_MAX:
            # Insertion-ordered soft eviction: drop the oldest entry so a
            # streaming corpus cannot grow the memo without bound.
            del _BLOCK_MEMO[next(iter(_BLOCK_MEMO))]
        _BLOCK_MEMO[memo_key] = entry
        return entry, False

    def _enumerate_context(self, context: _BlockContext) -> _BlockEntry:
        if len(context.eligible) < 2:
            return _BlockEntry(candidates=(), truncated=False, dropped_subsets=0)
        subsets, subsets_capped = self._connected_subsets(context)
        candidates: List[_RelCandidate] = []
        consumed = 0
        cap = self._limits.max_candidates_per_block
        for subset in subsets:
            consumed += 1
            candidate = self._try_build_candidate(context, subset)
            if candidate is not None:
                candidates.append(candidate)
            if len(candidates) >= cap:
                break
        dropped = len(subsets) - consumed
        return _BlockEntry(candidates=tuple(candidates),
                           truncated=subsets_capped or dropped > 0,
                           dropped_subsets=dropped)

    # -- connected subset enumeration -----------------------------------------

    def _dependence_masks(self, context: _BlockContext) -> Dict[int, int]:
        """Undirected block-local true-dependence adjacency as bitsets."""
        masks: Dict[int, int] = {position: 0 for position in context.eligible}
        eligible_set = set(context.eligible)
        for position in context.eligible:
            producers = context.read_producers[position]
            for producer in producers:
                if producer is not None and producer in eligible_set:
                    masks[position] |= 1 << producer
                    masks[producer] |= 1 << position
        return masks

    def _connected_subsets(self, context: _BlockContext
                           ) -> Tuple[List[Tuple[int, ...]], bool]:
        """Enumerate connected subsets (size 2..max_size) of the dependence graph.

        Uses the standard "anchor at the smallest member" expansion so every
        connected subset is produced exactly once; subsets, frontiers and
        exclusion sets are int bitsets.  Returns the subsets (in the same
        deterministic DFS order as the seed implementation — the order the
        ``max_candidates_per_block`` valve truncates in) and whether the
        subset safety valve itself capped the search.
        """
        masks = self._dependence_masks(context)
        max_size = self._limits.max_size
        results: List[Tuple[int, ...]] = []
        limit = self._limits.max_candidates_per_block * 4
        dropped = False  # a subset was actually discarded, not just limit == count

        def expand(current: int, count: int, frontier: int, forbidden: int) -> None:
            nonlocal dropped
            if len(results) >= limit:
                if count >= 2:
                    # This call would have recorded ``current``: real truncation.
                    dropped = True
                return
            if count >= 2:
                members = []
                remaining = current
                while remaining:
                    bit = remaining & -remaining
                    members.append(bit.bit_length() - 1)
                    remaining ^= bit
                results.append(tuple(members))
            if count >= max_size:
                return
            local_forbidden = forbidden
            pending = frontier
            while pending:
                node_bit = pending & -pending
                pending ^= node_bit
                node = node_bit.bit_length() - 1
                new_frontier = ((frontier | masks[node])
                                & ~current & ~node_bit & ~local_forbidden)
                expand(current | node_bit, count + 1, new_frontier,
                       local_forbidden)
                local_forbidden |= node_bit

        for position, seed in enumerate(context.eligible):
            seed_bit = 1 << seed
            forbidden = seed_bit - 1  # every position below the seed
            expand(seed_bit, 1, masks[seed] & ~forbidden, forbidden)
            if len(results) >= limit:
                if not dropped:
                    # A remaining seed with a higher-position neighbour would
                    # have produced at least the pair subset {seed, neighbour}.
                    for unprocessed in context.eligible[position + 1:]:
                        if masks[unprocessed] & ~((1 << (unprocessed + 1)) - 1):
                            dropped = True
                            break
                break
        return results, dropped

    # -- candidate construction and legality ----------------------------------

    def _choose_anchor(self, context: _BlockContext, members: Sequence[int]) -> int:
        """Anchor preference: branch, then memory operation, then last member."""
        for position in members:
            if context.is_control[position]:
                return position
        for position in members:
            if context.is_memory[position]:
                return position
        return members[-1]

    def _try_build_candidate(self, context: _BlockContext,
                             members: Tuple[int, ...]) -> Optional[_RelCandidate]:
        is_memory = context.is_memory
        is_control = context.is_control

        memory_count = 0
        control_count = 0
        member_mask = 0
        for position in members:
            member_mask |= 1 << position
            if is_memory[position]:
                memory_count += 1
            if is_control[position]:
                control_count += 1
        if memory_count > 1 or control_count > 1:
            return None
        if control_count == 1 and not is_control[members[-1]]:
            return None

        interface = self._interface_registers(context, members, member_mask)
        if interface is None:
            return None
        input_regs, output_reg, out_member = interface

        anchor = self._choose_anchor(context, members)
        if not self._movement_is_legal(context, members, member_mask, anchor):
            return None

        built = self._intern_template(context, members, member_mask,
                                      input_regs, out_member)
        if built is None:
            return None
        template_id, template = built

        return _RelCandidate(
            members=members,
            anchor=anchor,
            template=template,
            template_id=template_id,
            input_regs=input_regs,
            output_reg=output_reg,
        )

    def _interface_registers(self, context: _BlockContext,
                             members: Tuple[int, ...], member_mask: int
                             ) -> Optional[Tuple[Tuple[int, ...], Optional[int], Optional[int]]]:
        """Compute (input_regs, output_reg, out_member) or None if illegal.

        *Inputs* are registers read by members whose most recent definition is
        not another member.  *Outputs* are member-produced values that are
        observable outside the graph: read later in the block by a non-member
        before redefinition, or reaching the block end while the register is
        live-out.  At most two inputs and one output are allowed.
        """
        reads = context.reads
        writes = context.writes
        input_regs: List[int] = []
        for position in members:
            producers = context.read_producers[position]
            for slot, reg in enumerate(reads[position]):
                producer = producers[slot]
                if producer is not None and (member_mask >> producer) & 1:
                    continue
                if reg not in input_regs:
                    input_regs.append(reg)
        if len(input_regs) > MAX_EXTERNAL_INPUTS:
            return None

        output_reg: Optional[int] = None
        out_member: Optional[int] = None
        out_events = context.out_events
        for position in members:
            dest = writes[position]
            if dest is None:
                continue
            visible = False
            redefined = False
            for later, reads_dest, writes_dest in out_events[position]:
                if reads_dest and not (member_mask >> later) & 1:
                    visible = True
                    break
                if writes_dest:
                    # Redefinition kills this value before any external use in
                    # the block; redefinitions by later members do not make the
                    # value external either.
                    redefined = True
                    break
            if not visible and not redefined and dest in context.live_after_block:
                visible = True
            if visible:
                if output_reg is not None and (output_reg != dest or out_member != position):
                    return None
                output_reg = dest
                out_member = position
        return tuple(input_regs), output_reg, out_member

    def _movement_is_legal(self, context: _BlockContext, members: Tuple[int, ...],
                           member_mask: int, anchor: int) -> bool:
        """Check that collapsing all members at ``anchor`` preserves semantics.

        A member moving across an intervening non-member must not have a true,
        anti or output register dependence with it, and memory members must
        not cross other memory operations (conservative no-alias assumption).
        """
        reads = context.reads
        writes = context.writes
        for position in members:
            if position == anchor:
                continue
            low, high = (position, anchor) if position < anchor else (anchor, position)
            member_reads = reads[position]
            member_write = writes[position]
            member_is_memory = context.is_memory[position]
            for between in range(low + 1, high):
                if (member_mask >> between) & 1:
                    continue
                other_write = writes[between]
                if other_write is not None:
                    if other_write in member_reads:
                        return False
                    if member_write is not None and member_write == other_write:
                        return False
                if member_write is not None and member_write in reads[between]:
                    return False
                if member_is_memory and context.is_memory[between]:
                    return False
                if context.is_control[between]:
                    # Should not happen inside a block, but never hoist across
                    # a control transfer.
                    return False
        return True

    #: Encoded operand references for raw template keys: (kind << 8) | index.
    _ENC_EXTERNAL = _ENC_EXTERNAL_BASE
    _ENC_INTERNAL = _ENC_INTERNAL_BASE
    _ENC_ZERO = _ENC_ZERO_BASE

    def _intern_template(self, context: _BlockContext, members: Tuple[int, ...],
                         member_mask: int, input_regs: Tuple[int, ...],
                         out_member: Optional[int]
                         ) -> Optional[Tuple[int, MiniGraphTemplate]]:
        """Build the raw structural key and intern it (construct on first use)."""
        position_to_slot = {position: slot for slot, position in enumerate(members)}
        input_index = {reg: index for index, reg in enumerate(input_regs)}
        rows: List[Tuple[str, Optional[int], Optional[int], Optional[int]]] = []
        enc_zero = self._ENC_ZERO
        enc_internal = self._ENC_INTERNAL
        enc_external = self._ENC_EXTERNAL

        for position in members:
            insn = context.instructions[position]
            flags = _op_flags(insn.op)
            sources = context.reads[position]
            producers = context.read_producers[position]

            encoded = [None, None]
            for operand, (reg, is_read) in enumerate(
                    ((insn.rs1, flags.reads_rs1), (insn.rs2, flags.reads_rs2))):
                if not is_read or reg is None:
                    continue
                for slot, read_reg in enumerate(sources):
                    if read_reg == reg:
                        producer = producers[slot]
                        if producer is not None and (member_mask >> producer) & 1:
                            encoded[operand] = enc_internal | position_to_slot[producer]
                        else:
                            encoded[operand] = enc_external | input_index[reg]
                        break
                else:
                    # Reads of the hardwired zero register.
                    encoded[operand] = enc_zero

            rows.append((insn.op, encoded[0], encoded[1], insn.imm))

        out_index = position_to_slot[out_member] if out_member is not None else None
        raw_key = (tuple(rows), len(input_regs), out_index)
        template_id = TEMPLATE_REGISTRY.intern_raw(
            raw_key, lambda: _build_registration(rows, len(input_regs), out_index))
        if template_id is None:
            return None
        return template_id, TEMPLATE_REGISTRY.template(template_id)


#: Interned OperandRef instances and their exact reprs, keyed by encoding.
_REF_CACHE: Dict[Optional[int], Optional[OperandRef]] = {None: None}
_REF_REPRS: Dict[Optional[int], str] = {None: "None"}
_OP_REPRS: Dict[str, str] = {}


def _decode_ref(encoded: Optional[int]) -> Optional[OperandRef]:
    ref = _REF_CACHE.get(encoded, _REF_CACHE)
    if ref is _REF_CACHE:
        kind = encoded >> 8
        if kind == 0:
            ref = external(encoded & 0xFF)
        elif kind == 1:
            ref = internal(encoded & 0xFF)
        else:
            ref = zero()
        _REF_CACHE[encoded] = ref
        _REF_REPRS[encoded] = repr(ref)
    return ref


def _sort_key_from_rows(rows: Sequence[Tuple[str, Optional[int], Optional[int], Optional[int]]],
                        num_inputs: int, out_index: Optional[int]) -> str:
    """``repr(template.key())`` assembled from cached piece reprs.

    The registry's tie-break order must equal the seed's ``repr`` of the
    canonical key byte-for-byte; operand-reference reprs are produced by
    ``repr()`` itself (once per distinct encoding) so dataclass/enum repr
    formatting can never drift from this fast path (asserted by the test
    suite against the slow form).
    """
    op_reprs = _OP_REPRS
    ref_reprs = _REF_REPRS
    parts = []
    for op, enc0, enc1, imm in rows:
        op_repr = op_reprs.get(op)
        if op_repr is None:
            op_repr = op_reprs[op] = repr(op)
        if enc0 not in ref_reprs:
            _decode_ref(enc0)
        if enc1 not in ref_reprs:
            _decode_ref(enc1)
        parts.append(f"({op_repr}, {ref_reprs[enc0]}, {ref_reprs[enc1]}, {imm!r})")
    return f"(({', '.join(parts)}), {num_inputs!r}, {out_index!r})"


def _flags_from_rows(rows: Sequence[Tuple[str, Optional[int], Optional[int], Optional[int]]]
                     ) -> "TemplateFlags":
    """Structural flags computed directly from encoded rows (intern miss)."""
    size = len(rows)
    has_memory = False
    has_branch = False
    load_position: Optional[int] = None
    externally_serial = False
    internally_parallel = False
    for position, (op, enc0, enc1, _imm) in enumerate(rows):
        flags = _op_flags(op)
        if flags.is_memory:
            has_memory = True
        if flags.is_control:
            has_branch = True
        if flags.is_load and load_position is None:
            load_position = position
        if position > 0:
            previous = _ENC_INTERNAL_BASE | (position - 1)
            consumes_previous = False
            for enc in (enc0, enc1):
                if enc is None:
                    continue
                if enc >> 8 == 0:
                    externally_serial = True
                if enc == previous:
                    consumes_previous = True
            if not consumes_previous:
                internally_parallel = True
    return TemplateFlags(
        size=size,
        has_memory=has_memory,
        has_branch=has_branch,
        externally_serial=externally_serial,
        internally_parallel=internally_parallel,
        interior_load=load_position is not None and load_position != size - 1,
    )


def _build_registration(rows: Sequence[Tuple[str, Optional[int], Optional[int], Optional[int]]],
                        num_inputs: int, out_index: Optional[int]
                        ) -> Optional[Tuple[MiniGraphTemplate, str, "TemplateFlags"]]:
    """Construct, validate and characterise a template (first intern only)."""
    try:
        template = MiniGraphTemplate(
            instructions=tuple(
                TemplateInstruction(op=op, src0=_decode_ref(enc0),
                                    src1=_decode_ref(enc1), imm=imm)
                for op, enc0, enc1, imm in rows),
            num_inputs=num_inputs,
            out_index=out_index,
        )
    except TemplateError:
        return None
    return (template, _sort_key_from_rows(rows, num_inputs, out_index),
            _flags_from_rows(rows))


def enumerate_minigraphs(program: Program,
                         limits: Optional[EnumerationLimits] = None
                         ) -> EnumerationResult:
    """Enumerate all legal mini-graph candidates of ``program``.

    Returns an :class:`EnumerationResult` — a plain candidate list carrying
    truncation and memoization bookkeeping as attributes.
    """
    return MiniGraphEnumerator(program, limits).enumerate()
