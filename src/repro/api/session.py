"""The stage-graph session: one front door for the whole pipeline.

A :class:`Session` materializes the paper's tool chain

    assemble -> profile -> select -> rewrite -> build_mgt -> trace -> time

as named stages with typed artifacts.  Every stage result is cached in an
:class:`~repro.api.store.ArtifactStore` under a content-addressed key derived
from the :class:`~repro.api.spec.RunSpec`, the stage name and
``repro.__version__`` — so repeated experiment and benchmark runs (within a
process via the memory layer, across processes via the disk layer) skip
redundant simulation entirely.  :meth:`Session.map` fans independent specs
out across a process pool for multi-benchmark sweeps; :meth:`Session.sweep`
is the fast path for machine/policy sweeps, grouping specs that share
upstream artifacts so each benchmark is profiled once per pool and the
interned decode metadata (:mod:`repro.uarch.decode`) is reused by every
timing run of a group.  Trace artifacts ride everywhere — pool job results,
disk cache entries, artifacts embedding a trace — as flat packed-column
buffers (:mod:`repro.sim.trace`'s binary codec), never as per-entry object
graphs.  See ``docs/api.md`` for the full contract and cache-invalidation
semantics.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..minigraph.mgt import MiniGraphTable
from ..minigraph.registry import FRONTEND_STATS
from ..minigraph.selection import SelectionResult, select_minigraphs
from ..program.profile import BlockProfile
from ..program.program import Program
from ..program.rewriter import rewrite_program
from ..sim.functional import run_program
from ..sim.trace import Trace
from ..uarch.config import MachineConfig
from ..uarch.pipeline import simulate_program
from ..uarch.stats import PipelineStats
from ..workloads import load_benchmark
from .keys import canonical_key, content_hash
from .spec import RunSpec
from .store import MISS, ArtifactStore, CacheStats


@dataclass
class ProfileArtifact:
    """Output of the ``profile`` stage: the baseline functional run.

    Pickles compactly: the embedded trace serializes as one flat binary
    column blob (``Trace.__reduce__``), both on disk and across the
    :meth:`Session.map` / :meth:`Session.sweep` process pool.
    """

    profile: BlockProfile
    trace: Trace


@dataclass
class SessionStats:
    """How much actual work (vs cache reuse) a session performed.

    The ``frontend_*`` fields mirror the compilation front-end counters
    (:data:`repro.minigraph.registry.FRONTEND_STATS`) for the select stages
    this session actually executed; they are sampled as deltas around each
    stage so pool workers report the front-end work their process performed
    and :meth:`merge` aggregates it back into the driving session.
    """

    assemble_runs: int = 0
    functional_runs: int = 0
    selection_runs: int = 0
    rewrite_runs: int = 0
    mgt_builds: int = 0
    timing_runs: int = 0
    batched_timing_passes: int = 0
    batched_timing_lanes: int = 0
    batched_timing_deduped: int = 0
    batched_timing_cross_trace_lanes: int = 0
    batched_timing_shared_trace_lanes: int = 0
    frontend_enumeration_seconds: float = 0.0
    frontend_selection_seconds: float = 0.0
    frontend_candidates: int = 0
    frontend_blocks: int = 0
    frontend_memo_hits: int = 0
    frontend_memo_misses: int = 0
    frontend_truncated_blocks: int = 0
    frontend_dropped_candidates: int = 0

    @property
    def simulations(self) -> int:
        """Functional plus timing simulations actually executed."""
        return self.functional_runs + self.timing_runs

    @property
    def batched_timing_lanes_per_pass(self) -> float:
        """Mean active lanes per batched pass (0.0 when nothing batched).

        The occupancy headline: cross-trace packing exists so this stays
        near ``max_lanes`` even when no single trace has that many
        machines.  Derived, so it survives :meth:`merge` aggregation.
        """
        if not self.batched_timing_passes:
            return 0.0
        return self.batched_timing_lanes / self.batched_timing_passes

    def as_dict(self) -> Dict[str, Any]:
        return {"assemble_runs": self.assemble_runs,
                "functional_runs": self.functional_runs,
                "selection_runs": self.selection_runs,
                "rewrite_runs": self.rewrite_runs,
                "mgt_builds": self.mgt_builds,
                "timing_runs": self.timing_runs,
                "batched_timing_passes": self.batched_timing_passes,
                "batched_timing_lanes": self.batched_timing_lanes,
                "batched_timing_deduped": self.batched_timing_deduped,
                "batched_timing_cross_trace_lanes":
                    self.batched_timing_cross_trace_lanes,
                "batched_timing_shared_trace_lanes":
                    self.batched_timing_shared_trace_lanes,
                "frontend_enumeration_seconds": self.frontend_enumeration_seconds,
                "frontend_selection_seconds": self.frontend_selection_seconds,
                "frontend_candidates": self.frontend_candidates,
                "frontend_blocks": self.frontend_blocks,
                "frontend_memo_hits": self.frontend_memo_hits,
                "frontend_memo_misses": self.frontend_memo_misses,
                "frontend_truncated_blocks": self.frontend_truncated_blocks,
                "frontend_dropped_candidates": self.frontend_dropped_candidates}

    def merge(self, other: "SessionStats") -> None:
        """Accumulate another session's work (e.g. a map() worker's)."""
        self.assemble_runs += other.assemble_runs
        self.functional_runs += other.functional_runs
        self.selection_runs += other.selection_runs
        self.rewrite_runs += other.rewrite_runs
        self.mgt_builds += other.mgt_builds
        self.timing_runs += other.timing_runs
        self.batched_timing_passes += other.batched_timing_passes
        self.batched_timing_lanes += other.batched_timing_lanes
        self.batched_timing_deduped += other.batched_timing_deduped
        self.batched_timing_cross_trace_lanes += \
            other.batched_timing_cross_trace_lanes
        self.batched_timing_shared_trace_lanes += \
            other.batched_timing_shared_trace_lanes
        self.frontend_enumeration_seconds += other.frontend_enumeration_seconds
        self.frontend_selection_seconds += other.frontend_selection_seconds
        self.frontend_candidates += other.frontend_candidates
        self.frontend_blocks += other.frontend_blocks
        self.frontend_memo_hits += other.frontend_memo_hits
        self.frontend_memo_misses += other.frontend_memo_misses
        self.frontend_truncated_blocks += other.frontend_truncated_blocks
        self.frontend_dropped_candidates += other.frontend_dropped_candidates

    def record_frontend_delta(self, delta) -> None:
        """Fold a :class:`~repro.minigraph.registry.FrontendStats` delta in."""
        self.frontend_enumeration_seconds += delta.enumeration_seconds
        self.frontend_selection_seconds += delta.selection_seconds
        self.frontend_candidates += delta.candidates_enumerated
        self.frontend_blocks += delta.blocks_enumerated
        self.frontend_memo_hits += delta.block_memo_hits
        self.frontend_memo_misses += delta.block_memo_misses
        self.frontend_truncated_blocks += delta.truncated_blocks
        self.frontend_dropped_candidates += delta.dropped_candidates


@dataclass
class RunArtifacts:
    """Everything :meth:`Session.run` produces for one spec."""

    spec: RunSpec
    program: Program
    profile: BlockProfile
    baseline_trace: Trace
    timing: PipelineStats
    baseline_timing: PipelineStats
    selection: Optional[SelectionResult] = None
    mgt: Optional[MiniGraphTable] = None
    rewritten: Optional[Program] = None
    minigraph_trace: Optional[Trace] = None

    @property
    def coverage(self) -> float:
        """Fraction of dynamic instructions absorbed into handles."""
        if self.minigraph_trace is None:
            return 0.0
        return self.minigraph_trace.dynamic_coverage()

    @property
    def speedup(self) -> float:
        """IPC of this spec's machine relative to its baseline machine.

        ``nan`` when the baseline retired nothing — a silent 1.0 would hide
        a broken reference run.
        """
        if self.baseline_timing.ipc == 0.0:
            return float("nan")
        return self.timing.ipc / self.baseline_timing.ipc

    def report(self) -> Dict[str, Any]:
        """JSON-friendly result summary."""
        speedup = self.speedup
        return {
            "spec": self.spec.describe(),
            "coverage": self.coverage,
            "baseline_ipc": self.baseline_timing.ipc,
            "ipc": self.timing.ipc,
            "speedup": None if math.isnan(speedup) else speedup,
            "cycles": self.timing.cycles,
            "baseline_cycles": self.baseline_timing.cycles,
            "templates": None if self.selection is None else self.selection.template_count,
        }


class Session:
    """Caching, stage-graph front door to the mini-graph pipeline."""

    def __init__(self, *, store: Optional[ArtifactStore] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 workers: Optional[int] = None,
                 version: Optional[str] = None,
                 remote: Optional[os.PathLike] = None,
                 namespace: str = "") -> None:
        if store is not None and cache_dir is not None:
            raise ValueError("pass either a store or a cache_dir, not both")
        if version is None:
            from .. import __version__
            version = __version__
        self._version = version
        # Session-created stores are version-aware so their disk entries land
        # in the per-version directory `repro cache prune` can GC.
        self._store = store if store is not None \
            else ArtifactStore(cache_dir, version=version)
        self._workers = workers
        self.stats = SessionStats()
        # Remote mode: run/map/sweep/run_grid execute on a `repro serve`
        # daemon (remote is its socket path; True means the default socket).
        # The daemon's warm workers do the work; this session only absorbs
        # the returned artifacts and accounting.
        self._remote = remote
        self._namespace = namespace
        self._client = None

    @property
    def store(self) -> ArtifactStore:
        return self._store

    @property
    def cache_stats(self) -> CacheStats:
        return self._store.stats

    @property
    def version(self) -> str:
        return self._version

    @property
    def remote(self) -> bool:
        """True when this session executes on a ``repro serve`` daemon."""
        return self._remote is not None

    def close(self) -> None:
        """Release the daemon connection and the store's activity lock.

        The session stays usable afterwards — the connection and lock are
        re-acquired on demand — so ``close()`` marks a quiet point, not the
        end of life.
        """
        if self._client is not None:
            self._client.close()
            self._client = None
        self.store.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- keying / caching ----------------------------------------------------------

    def _key(self, stage: str, spec: RunSpec, extra: Tuple[Any, ...] = ()) -> str:
        material = (self._version, stage) + spec.stage_material(stage) + extra
        return f"{stage}-{content_hash(material)}"

    def _stage(self, stage: str, spec: RunSpec, compute: Callable[[], Any],
               extra: Tuple[Any, ...] = ()) -> Any:
        key = self._key(stage, spec, extra)
        value = self._store.get(key)
        if value is not MISS:
            return value
        value = compute()
        self._store.put(key, value)
        return value

    # -- individual stages ---------------------------------------------------------

    def program(self, spec: RunSpec) -> Program:
        """Stage ``assemble``: the program image for the spec's source."""
        def compute() -> Program:
            self.stats.assemble_runs += 1
            if spec.program is not None:
                return spec.program
            return load_benchmark(spec.benchmark, spec.input_name)
        return self._stage("assemble", spec, compute)

    def _profile_artifact(self, spec: RunSpec) -> ProfileArtifact:
        def compute() -> ProfileArtifact:
            self.stats.functional_runs += 1
            result = run_program(self.program(spec), max_instructions=spec.budget)
            return ProfileArtifact(profile=result.profile, trace=result.trace)
        return self._stage("profile", spec, compute)

    def profile(self, spec: RunSpec) -> BlockProfile:
        """Stage ``profile``: basic-block frequencies of the baseline run."""
        return self._profile_artifact(spec).profile

    def baseline_trace(self, spec: RunSpec) -> Trace:
        """Stage ``profile``: committed-order trace of the baseline run."""
        return self._profile_artifact(spec).trace

    def selection(self, spec: RunSpec) -> SelectionResult:
        """Stage ``select``: greedy coverage-driven mini-graph selection.

        A selection that enumeration truncated (its safety valves dropped
        candidates) is surfaced through ``SelectionResult.truncated`` and the
        session's ``frontend_*`` statistics.
        """
        if spec.policy is None:
            raise ValueError(f"{spec.label}: baseline-only specs have no selection")
        def compute() -> SelectionResult:
            self.stats.selection_runs += 1
            before = FRONTEND_STATS.snapshot()
            result = select_minigraphs(self.program(spec), self.profile(spec),
                                       policy=spec.policy)
            self.stats.record_frontend_delta(FRONTEND_STATS.delta_since(before))
            return result
        return self._stage("select", spec, compute)

    def rewritten(self, spec: RunSpec) -> Program:
        """Stage ``rewrite``: the handle-rewritten binary."""
        def compute() -> Program:
            self.stats.rewrite_runs += 1
            sites = self.selection(spec).rewrite_sites()
            return rewrite_program(self.program(spec), sites).program
        return self._stage("rewrite", spec, compute)

    def mgt(self, spec: RunSpec) -> MiniGraphTable:
        """Stage ``build_mgt``: the MGHT/MGST for the selection."""
        def compute() -> MiniGraphTable:
            self.stats.mgt_builds += 1
            return MiniGraphTable.from_selection(self.selection(spec),
                                                 spec.resolved_mgt_options)
        return self._stage("build_mgt", spec, compute)

    def minigraph_trace(self, spec: RunSpec) -> Trace:
        """Stage ``trace``: functional run of the rewritten binary."""
        def compute() -> Trace:
            self.stats.functional_runs += 1
            result = run_program(self.rewritten(spec), mgt=self.mgt(spec),
                                 max_instructions=spec.budget)
            return result.trace
        return self._stage("trace", spec, compute)

    # -- timing --------------------------------------------------------------------

    def baseline_timing(self, spec: RunSpec,
                        machine: Optional[MachineConfig] = None) -> PipelineStats:
        """Stage ``time``: cycle-simulate the *original* program on ``machine``."""
        config = machine if machine is not None else spec.resolved_baseline_machine
        def compute() -> PipelineStats:
            self.stats.timing_runs += 1
            return simulate_program(self.program(spec), self.baseline_trace(spec),
                                    config)
        return self._stage("time_baseline", spec, compute,
                           extra=(config.resolve().key,))

    def minigraph_timing(self, spec: RunSpec,
                         machine: Optional[MachineConfig] = None) -> PipelineStats:
        """Stage ``time``: cycle-simulate the rewritten program with its MGT."""
        if spec.policy is None:
            raise ValueError(f"{spec.label}: baseline-only specs have no "
                             "mini-graph timing; use baseline_timing")
        config = machine if machine is not None else spec.resolved_machine
        def compute() -> PipelineStats:
            self.stats.timing_runs += 1
            return simulate_program(self.rewritten(spec), self.minigraph_trace(spec),
                                    config, mgt=self.mgt(spec),
                                    compressed_layout=spec.compressed_layout)
        return self._stage("time", spec, compute,
                           extra=("minigraph", config.resolve().key,
                                  spec.compressed_layout))

    def timing(self, spec: RunSpec) -> PipelineStats:
        """Timing statistics of the spec itself (baseline or mini-graph)."""
        if spec.policy is None:
            return self.baseline_timing(spec, spec.resolved_machine)
        return self.minigraph_timing(spec)

    def speedup(self, spec: RunSpec) -> float:
        """Relative IPC of the spec's machine over its baseline machine.

        Returns ``nan`` (rather than a misleading 1.0) when the baseline
        retired no instructions.
        """
        baseline = self.baseline_timing(spec)
        timing = self.timing(spec)
        if baseline.ipc == 0.0:
            return float("nan")
        return timing.ipc / baseline.ipc

    def prime_timing(self, specs: Iterable[RunSpec], *,
                     max_lanes: Optional[int] = None) -> int:
        """Batched timing pre-pass: fill the scalar timing stage cache.

        Groups the timing runs the given specs will need by their decoded
        trace (baseline runs by profile identity, mini-graph runs by trace
        identity + layout), filters each group down to its *cache-miss*
        lanes, then bin-packs the surviving lane groups globally —
        longest estimated trace first, remainders riding in other groups'
        leftover cells — into cross-trace passes of at most ``max_lanes``
        lanes, each driven through one :meth:`~repro.uarch.batch.
        BatchedTimingSimulator.from_lanes` pass.  Every lane's stats land
        in the store under the exact key :meth:`baseline_timing` /
        :meth:`minigraph_timing` would use — the batched kernel is
        bit-identical to ``simulate_program`` — so subsequent :meth:`run`
        calls for these specs hit the cache instead of paying the scalar
        per-cell interpreter loop.

        Purely an optimisation: upstream (front-end) failures drop that
        trace's lanes from the pack, per-lane timing/admission errors
        leave those lanes unprimed, and the scalar path surfaces the
        identical error at the cell that owns it.  Returns the number of
        lanes primed.
        """
        from ..grid.planner import pack_lane_groups
        from ..uarch.batch import (
            DEFAULT_MAX_LANES,
            BatchedTimingSimulator,
            TimingLane,
        )
        if max_lanes is None:
            max_lanes = DEFAULT_MAX_LANES
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be positive, got {max_lanes}")
        specs = list(specs)
        if self._remote is not None or not specs:
            return 0
        # Lane collection: one dict per decoded trace, keyed by the scalar
        # stage-cache key (which folds in the resolved machine) so duplicate
        # (trace, machine) requests collapse to one lane.  Group keys are
        # namespaced so a baseline profile and a mini-graph trace of the
        # same spec stay distinct groups (they decode different traces).
        groups: Dict[Tuple[Any, ...],
                     Dict[str, Tuple[RunSpec, MachineConfig]]] = {}
        for spec in specs:
            profile_key = ("baseline", spec.source_id, spec.input_name,
                           spec.budget)
            lanes = groups.setdefault(profile_key, {})
            configs = [spec.resolved_baseline_machine]
            if spec.policy is None:
                configs.append(spec.resolved_machine)
            for config in configs:
                key = self._key("time_baseline", spec,
                                extra=(config.resolve().key,))
                lanes.setdefault(key, (spec, config))
            if spec.policy is not None:
                config = spec.resolved_machine
                trace_key = ("minigraph",) + spec.stage_material("trace") \
                    + (spec.compressed_layout,)
                key = self._key("time", spec,
                                extra=("minigraph", config.resolve().key,
                                       spec.compressed_layout))
                groups.setdefault(trace_key, {}) \
                    .setdefault(key, (spec, config))
        # Cache-miss filter first, then resolve each surviving group's trace
        # once; upstream stages run (or hit the cache) exactly as the scalar
        # path would, and any front-end failure drops the group (deferred to
        # the scalar path, which surfaces it at the owning cell).
        resolved: List[Tuple[List[Tuple[str, RunSpec, MachineConfig]],
                             Program, Trace,
                             Optional[MiniGraphTable], bool]] = []
        for group_key, lanes in groups.items():
            missing = [(key, spec, config)
                       for key, (spec, config) in lanes.items()
                       if key not in self._store]
            if not missing:
                continue
            anchor = missing[0][1]
            try:
                if group_key[0] == "minigraph":
                    program = self.rewritten(anchor)
                    trace = self.minigraph_trace(anchor)
                    mgt = self.mgt(anchor)
                    compressed = anchor.compressed_layout
                else:
                    program = self.program(anchor)
                    trace = self.baseline_trace(anchor)
                    mgt = None
                    compressed = False
            except Exception:
                continue
            resolved.append((missing, program, trace, mgt, compressed))
        if not resolved:
            return 0
        bins = pack_lane_groups([(len(missing), missing[0][1].budget)
                                 for missing, *_ in resolved], max_lanes)
        primed = 0
        for chunks in bins:
            part: List[Tuple[str, TimingLane]] = []
            for index, start, stop in chunks:
                missing, program, trace, mgt, compressed = resolved[index]
                part.extend(
                    (key, TimingLane(program, trace, config, mgt=mgt,
                                     compressed_layout=compressed))
                    for key, _, config in missing[start:stop])
            batch = BatchedTimingSimulator.from_lanes(
                [lane for _, lane in part])
            results = batch.run()
            self.stats.batched_timing_passes += 1
            self.stats.batched_timing_lanes += len(part)
            self.stats.batched_timing_deduped += batch.deduped_lanes
            if batch.cross_trace:
                self.stats.batched_timing_cross_trace_lanes += len(part)
            else:
                self.stats.batched_timing_shared_trace_lanes += len(part)
            for lane, (key, _) in enumerate(part):
                if lane in batch.lane_errors:
                    continue        # scalar path re-raises at the owning cell
                self._store.put(key, results[lane])
                self.stats.timing_runs += 1
                primed += 1
        return primed

    # -- end-to-end ----------------------------------------------------------------

    def run(self, spec: RunSpec) -> RunArtifacts:
        """Run (or reuse) the full stage graph for one spec."""
        if self._remote is not None:
            return self._remote_artifacts([spec], label=spec.label)[0]
        program = self.program(spec)
        profile_artifact = self._profile_artifact(spec)
        if spec.policy is None:
            timing = self.baseline_timing(spec, spec.resolved_machine)
            return RunArtifacts(
                spec=spec, program=program,
                profile=profile_artifact.profile,
                baseline_trace=profile_artifact.trace,
                timing=timing,
                baseline_timing=self.baseline_timing(spec))
        return RunArtifacts(
            spec=spec, program=program,
            profile=profile_artifact.profile,
            baseline_trace=profile_artifact.trace,
            selection=self.selection(spec),
            mgt=self.mgt(spec),
            rewritten=self.rewritten(spec),
            minigraph_trace=self.minigraph_trace(spec),
            timing=self.minigraph_timing(spec),
            baseline_timing=self.baseline_timing(spec))

    def map(self, specs: Iterable[RunSpec], *,
            workers: Optional[int] = None) -> List[RunArtifacts]:
        """Run independent specs, fanning out across a process pool.

        Results come back in input order and are bit-identical to serial
        execution (every stage is deterministic).  ``workers=0`` or ``1``
        forces serial in-process execution; the default sizes the pool to
        ``min(len(specs), cpu_count)``.  Workers share this session's disk
        cache (when one is configured), so artifacts computed in the pool are
        reused by later in-process runs.
        """
        specs = list(specs)
        if self._remote is not None:
            return self._remote_artifacts(specs, label="map")
        workers = self._resolve_workers(workers, len(specs))
        if workers <= 1 or len(specs) <= 1:
            return [self.run(spec) for spec in specs]
        outcomes = self._fan_out([[spec] for spec in specs], workers)
        if outcomes is None:
            # Process pools can be unavailable in restricted environments;
            # fall back to the (identical) serial execution.
            return [self.run(spec) for spec in specs]
        return [artifacts for group in outcomes for artifacts in group]

    def sweep(self, specs: Iterable[RunSpec], *,
              workers: Optional[int] = None) -> List[RunArtifacts]:
        """Fast-path :meth:`map`: group specs that share upstream artifacts.

        :meth:`map` ships every spec to its own worker, so a sweep of N
        machine configurations or policies over one benchmark re-derives the
        shared prefix stages (assemble, profile, and often select/rewrite/
        trace) N times — once per worker process.  ``sweep`` instead groups
        specs by their profile-stage identity ``(source, input, budget)`` and
        fans *groups* out across the pool: each group runs inside one worker
        session, where the shared stages are computed once and the interned
        decode/plan artifacts (:mod:`repro.uarch.decode`) are reused by every
        timing run of the group.

        Results come back in input order and are bit-identical to serial
        execution and to :meth:`map` (every stage is deterministic).
        ``workers=0`` or ``1`` forces serial in-process execution, which
        still applies the same grouping so shared artifacts stay hot in the
        memory cache.
        """
        specs = list(specs)
        if not specs:
            return []
        if self._remote is not None:
            # The daemon plans artifact jobs through the same profile-identity
            # grouping, so the sweep dedup happens in its warm workers.
            return self._remote_artifacts(specs, label="sweep")
        groups: Dict[Tuple[str, str, int], List[int]] = {}
        for position, spec in enumerate(specs):
            key = (spec.source_id, spec.input_name, spec.budget)
            groups.setdefault(key, []).append(position)
        positions_by_group = list(groups.values())
        workers = self._resolve_workers(workers, len(groups))
        results: List[Optional[RunArtifacts]] = [None] * len(specs)
        outcomes = None
        if workers > 1 and len(groups) > 1:
            outcomes = self._fan_out(
                [[specs[position] for position in positions]
                 for positions in positions_by_group], workers)
        if outcomes is None:
            # Serial (or pool-unavailable fallback): group order keeps each
            # benchmark's shared artifacts hot in the memory cache, and the
            # batched timing pre-pass runs each group's machines in one go.
            for positions in positions_by_group:
                self.prime_timing(specs[position] for position in positions)
                for position in positions:
                    results[position] = self.run(specs[position])
            return results  # type: ignore[return-value]
        for positions, group_artifacts in zip(positions_by_group, outcomes):
            for position, artifacts in zip(positions, group_artifacts):
                results[position] = artifacts
        return results  # type: ignore[return-value]

    # -- grids ---------------------------------------------------------------------

    def plan(self, grid) -> "GridPlan":  # noqa: F821 - forward ref, see repro.grid
        """Expand a :class:`~repro.grid.spec.GridSpec` into a
        :class:`~repro.grid.planner.GridPlan` of shared-artifact stages."""
        from ..grid.planner import plan_grid
        return plan_grid(grid)

    def run_grid(self, grid, *, shard=None, resume=False, workers=None,
                 batch=True, max_lanes=None):
        """Execute a grid (or plan), streaming one row per cell.

        Thin front door to :func:`repro.grid.engine.run_grid`: supports
        ``shard=(index, count)`` stage-partitioning, ``resume=True`` (serve
        cells whose terminal row artifact is already stored), a
        ``max_lanes`` override for the batched timing passes, and the same
        process-pool fan-out/accounting as :meth:`sweep`.  Returns a lazy
        iterator of :class:`~repro.grid.engine.GridRow`.

        Remote sessions submit the (locally expanded and sharded) cells to
        the daemon and stream rows back as its warm workers complete them —
        in completion order, not plan order, since stages of one job
        interleave with other clients' work on the daemon.
        """
        if self._remote is not None:
            return self._remote_grid(grid, shard=shard, resume=resume)
        from ..grid.engine import run_grid
        return run_grid(self, grid, shard=shard, resume=resume,
                        workers=workers, batch=batch, max_lanes=max_lanes)

    # -- remote execution (repro serve) ---------------------------------------------

    def _serve_client(self):
        if self._client is None:
            from ..serve.client import ServeClient
            path = None if self._remote is True else self._remote
            self._client = ServeClient(path, namespace=self._namespace)
        return self._client

    def _absorb_job_stats(self, job: Dict[str, Any]) -> None:
        """Fold a finished daemon job's accounting into this session."""
        stats = job.get("session_stats") or {}
        if stats:
            self.stats.merge(SessionStats(**stats))
        cache = job.get("cache_stats") or {}
        if cache:
            self._merge_cache_stats(CacheStats(
                memory_hits=cache.get("memory_hits", 0),
                disk_hits=cache.get("disk_hits", 0),
                misses=cache.get("misses", 0),
                puts=cache.get("puts", 0)))

    def _remote_artifacts(self, specs: List[RunSpec],
                          label: str) -> List[RunArtifacts]:
        """Run specs on the daemon; full artifacts come back pickled."""
        import base64
        import pickle

        if not specs:
            return []
        client = self._serve_client()
        response = client.submit_specs(specs, label=label)
        rows, job = client.run_to_completion(response)
        self._absorb_job_stats(job)
        by_index = {row["index"]:
                    pickle.loads(base64.b64decode(row["artifact_b64"]))
                    for row in rows}
        return [by_index[index] for index in range(len(specs))]

    def _remote_grid(self, grid, *, shard, resume):
        from ..grid.engine import GridRow
        from ..grid.planner import GridPlan, plan_grid

        plan = grid if isinstance(grid, GridPlan) else plan_grid(grid)
        if shard is not None:
            plan = plan.take_shard(*shard)
        name = None if plan.grid is None else plan.grid.name
        client = self._serve_client()
        response = client.submit_cells(
            plan.cells(), label=f"grid:{name}" if name else "cells",
            resume=resume)
        for row in client.stream(response["job_id"]):
            yield GridRow.from_dict(row)
        self._absorb_job_stats(client.poll(response["job_id"]))

    # -- pool plumbing shared by map() and sweep() ---------------------------------

    def _resolve_workers(self, workers: Optional[int], job_count: int) -> int:
        if workers is None:
            workers = self._workers
        if workers is None:
            workers = min(job_count, os.cpu_count() or 1)
        return workers

    def _fan_out(self, groups: List[List[RunSpec]],
                 workers: int) -> Optional[List[List[RunArtifacts]]]:
        """Run spec groups across a process pool, one worker session each.

        Returns the per-group artifact lists in input order, folding the
        workers' accounting back in so ``--stats`` and cache-hit assertions
        see the work the pool actually performed — or ``None`` when process
        pools are unavailable (the caller falls back to serial execution).
        """
        cache_dir = self._store.cache_dir
        cache_dir_name = None if cache_dir is None else str(cache_dir)
        jobs = [(group, cache_dir_name, self._version) for group in groups]
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
                outcomes = list(pool.map(_run_group_job, jobs))
        except (OSError, PermissionError):
            return None
        results: List[List[RunArtifacts]] = []
        for group_artifacts, worker_stats, worker_cache in outcomes:
            results.append(group_artifacts)
            self.stats.merge(worker_stats)
            self._merge_cache_stats(worker_cache)
        return results

    def _merge_cache_stats(self, worker_cache: CacheStats) -> None:
        stats = self._store.stats
        stats.memory_hits += worker_cache.memory_hits
        stats.disk_hits += worker_cache.disk_hits
        stats.misses += worker_cache.misses
        stats.puts += worker_cache.puts


def _run_group_job(job: Tuple[List[RunSpec], Optional[str], str]
                   ) -> Tuple[List[RunArtifacts], SessionStats, CacheStats]:
    """Process-pool worker: run one artifact-sharing group in one session."""
    group, cache_dir, version = job
    session = Session(cache_dir=cache_dir, version=version)
    session.prime_timing(group)
    artifacts = [session.run(spec) for spec in group]
    return artifacts, session.stats, session.cache_stats
