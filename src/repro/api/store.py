"""Content-addressed artifact store: an in-memory layer over an on-disk cache.

Keys are opaque strings produced by the :class:`~repro.api.session.Session`
from stage name, spec material and package version, so a bump of
``repro.__version__`` naturally invalidates every persisted artifact.  Values
are arbitrary picklable stage artifacts (programs, profiles, traces, MGTs,
timing statistics).

Disk entries carry one of two codecs, distinguished by their leading bytes:

* **trace** — a bare :class:`~repro.sim.trace.Trace` value is written with
  the versioned binary trace codec (:func:`repro.sim.trace.encode_trace`:
  header + raw column bytes) and loaded back without unpickling an object
  graph.  An entry written by an *unknown* codec version is treated as a
  cache miss — never an error — and left on disk for the build that wrote it.
* **pickle** — everything else.  Artifacts that *contain* a trace (e.g. the
  profile stage's trace+profile pair) still serialize its columns as one
  flat binary blob via ``Trace.__reduce__``.

A value that cannot be serialized is kept in the memory layer and the disk
write is skipped (the temp file is cleaned up); the cache is an optimization
and must never take the pipeline down.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..sim.trace import (
    TRACE_MAGIC,
    Trace,
    TraceCodecError,
    UnknownTraceCodecVersion,
    decode_trace,
    encode_trace,
    is_trace_blob,
)

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


def default_cache_dir() -> Path:
    """Cache location used by the CLI: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss accounting for one store."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "puts": self.puts}


@dataclass
class StoreInfo:
    """Snapshot of a store's contents (``repro cache info``)."""

    cache_dir: Optional[str]
    memory_entries: int
    disk_entries: int
    disk_bytes: int
    version: Optional[str] = None
    stale_entries: int = 0
    stale_bytes: int = 0

    def render(self) -> str:
        lines = [f"cache directory : {self.cache_dir or '(memory only)'}",
                 f"store version   : {self.version or '(unversioned)'}",
                 f"memory entries  : {self.memory_entries}",
                 f"disk entries    : {self.disk_entries}",
                 f"disk bytes      : {self.disk_bytes}"]
        if self.version is not None:
            lines.append(f"stale entries   : {self.stale_entries} "
                         f"({self.stale_bytes} bytes from other versions; "
                         f"`repro cache prune` evicts them)")
        return "\n".join(lines)


def _version_dirname(version: str) -> str:
    """Filesystem-safe directory name for one ``repro.__version__``."""
    safe = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                   for ch in version)
    return f"v-{safe}"


class ArtifactStore:
    """Two-level (memory + optional disk) cache for pipeline artifacts.

    When a ``version`` is given, disk entries live under a per-version
    subdirectory (``<cache_dir>/v-<version>/``); entries from other versions
    are never read (keys embed the version anyway) but keep accumulating
    across upgrades, so :meth:`prune` can evict every stale-version entry
    while leaving the live set intact.  A version-less store keeps the flat
    legacy layout.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None, *,
                 version: Optional[str] = None) -> None:
        self._memory: Dict[str, Any] = {}
        self._cache_dir: Optional[Path] = Path(cache_dir) if cache_dir is not None else None
        self._version = version
        if self._cache_dir is not None and version is not None:
            self._entry_dir: Optional[Path] = \
                self._cache_dir / _version_dirname(version)
        else:
            self._entry_dir = self._cache_dir
        #: Shared flock on this version directory's ``.lock`` while the
        #: store has written to disk; see :meth:`prune`.
        self._activity_lock_fd: Optional[int] = None
        self.stats = CacheStats()

    @property
    def cache_dir(self) -> Optional[Path]:
        return self._cache_dir

    @property
    def version(self) -> Optional[str]:
        return self._version

    # -- lookup / insert -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self._entry_dir is not None
        return self._entry_dir / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Cached value for ``key``, or :data:`MISS`."""
        if key in self._memory:
            self.stats.memory_hits += 1
            return self._memory[key]
        if self._cache_dir is not None:
            path = self._path(key)
            if path.exists():
                value = self._load_disk_entry(path)
                if value is not MISS:
                    self.stats.disk_hits += 1
                    self._memory[key] = value
                    return value
        self.stats.misses += 1
        return MISS

    @staticmethod
    def _load_disk_entry(path: Path) -> Any:
        """Decode one disk entry, sniffing the codec from its leading bytes."""
        try:
            with path.open("rb") as handle:
                head = handle.read(len(TRACE_MAGIC))
                if is_trace_blob(head):
                    try:
                        return decode_trace(head + handle.read())
                    except UnknownTraceCodecVersion:
                        # Another build's codec: a miss for us, but leave the
                        # entry for the writer (keys are version-hashed, so
                        # collisions are corruption, not contention).
                        return MISS
                    except TraceCodecError:
                        path.unlink(missing_ok=True)
                        return MISS
                # Pickle entries stream from the handle (no whole-file copy
                # next to the deserialized object).
                handle.seek(0)
                return pickle.load(handle)
        except OSError:
            return MISS
        except UnknownTraceCodecVersion:
            # A pickle entry embedding a foreign-version trace blob (via
            # Trace.__reduce__): same policy as a bare trace — miss, leave
            # the entry for the build that wrote it.
            return MISS
        except Exception:
            # A truncated or unreadable entry is just a miss.
            path.unlink(missing_ok=True)
            return MISS

    def put(self, key: str, value: Any) -> None:
        """Insert ``value`` into the memory layer and, if enabled, the disk layer.

        Serialization failures are contained: the temp file is removed, the
        value stays served from memory and no exception escapes — a cache
        that cannot persist must degrade, not crash the pipeline.
        """
        self._memory[key] = value
        self.stats.puts += 1
        if self._cache_dir is None:
            return
        path = self._path(key)
        # Write-then-rename so concurrent readers (Session.map workers sharing
        # one cache directory) never observe a partial entry.
        try:
            self._entry_dir.mkdir(parents=True, exist_ok=True)
            self._mark_active()
            fd, tmp_name = tempfile.mkstemp(dir=str(self._entry_dir),
                                            suffix=".tmp")
        except OSError:
            # Unwritable cache directory: stay memory-only for this value.
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                if isinstance(value, Trace):
                    # Bare traces take the binary codec: header + raw column
                    # bytes, loaded back without unpickling an object graph.
                    handle.write(encode_trace(value))
                else:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            # Unserializable artifact or failed disk write (full disk,
            # permissions): stay memory-only for this value.

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self._cache_dir is not None and self._path(key).exists()

    # -- cross-process activity locking ---------------------------------------------

    def _mark_active(self) -> None:
        """Hold a shared flock on this version directory's ``.lock``.

        Taken at the first disk write and held until :meth:`close`: it is
        the signal :meth:`prune` in *another* process (possibly another
        ``repro.__version__``) checks before deleting this directory's
        entries, closing the race where a prune sweeping "stale" versions
        deletes an entry a live store just renamed into place.
        """
        if (self._activity_lock_fd is not None or fcntl is None
                or self._entry_dir is None
                or not self._entry_dir.name.startswith("v-")):
            return
        try:
            lock_fd = os.open(str(self._entry_dir / ".lock"),
                              os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_SH)
        except OSError:
            os.close(lock_fd)
            return
        self._activity_lock_fd = lock_fd

    def close(self) -> None:
        """Release the activity lock; the store remains usable (the next
        disk write re-acquires it)."""
        if self._activity_lock_fd is not None:
            os.close(self._activity_lock_fd)
            self._activity_lock_fd = None

    def _try_claim_for_prune(self, directory: Path) -> Optional[int]:
        """Exclusively lock a stale version directory, or ``None`` if a live
        store holds its shared activity lock.  ``-1`` means no lockfile
        discipline applies (no fcntl, or a pre-lockfile directory)."""
        if fcntl is None:
            return -1
        try:
            lock_fd = os.open(str(directory / ".lock"),
                              os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return -1
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(lock_fd)
            return None
        return lock_fd

    # -- maintenance ---------------------------------------------------------------

    def _disk_entries(self) -> Iterator[Path]:
        """Every disk entry, across all version directories (and the flat
        legacy layout), in a deterministic order."""
        if self._cache_dir is None or not self._cache_dir.is_dir():
            return iter(())
        return iter(sorted(self._cache_dir.rglob("*.pkl")))

    def _is_current(self, path: Path) -> bool:
        """True when ``path`` belongs to this store's live entry directory."""
        return self._entry_dir is not None and path.parent == self._entry_dir

    def clear(self, *, memory: bool = True, disk: bool = True) -> int:
        """Drop cached artifacts; returns the number of disk entries removed."""
        if memory:
            self._memory.clear()
        removed = 0
        if disk:
            for path in self._disk_entries():
                path.unlink(missing_ok=True)
                removed += 1
            if self._cache_dir is not None and self._cache_dir.is_dir():
                for stray in self._cache_dir.glob("v-*/.lock"):
                    stray.unlink(missing_ok=True)
            self._remove_empty_version_dirs()
        return removed

    def prune(self) -> Tuple[int, int]:
        """Evict disk entries from *other* (stale) ``__version__``\\ s.

        Version-hashed keys mean those entries can never be served again by
        this build; pruning reclaims the space without touching the live
        set.  Returns ``(entries_removed, bytes_removed)``.

        Concurrent-safe against live stores: a version directory whose
        shared activity lock (see :meth:`_mark_active`) is held by any
        process — e.g. a ``repro serve`` daemon of an older build still
        writing entries — is skipped entirely rather than swept mid-write.
        """
        removed = 0
        freed = 0
        skipped: set = set()
        claimed: Dict[Path, int] = {}
        try:
            for path in self._disk_entries():
                if self._is_current(path):
                    continue
                parent = path.parent
                if parent in skipped:
                    continue
                if parent.name.startswith("v-") and parent not in claimed:
                    lock_fd = self._try_claim_for_prune(parent)
                    if lock_fd is None:
                        skipped.add(parent)
                        continue
                    claimed[parent] = lock_fd
                try:
                    freed += path.stat().st_size
                except OSError:
                    pass
                path.unlink(missing_ok=True)
                removed += 1
            for directory, lock_fd in claimed.items():
                if lock_fd != -1:
                    (directory / ".lock").unlink(missing_ok=True)
        finally:
            for lock_fd in claimed.values():
                if lock_fd != -1:
                    os.close(lock_fd)
        self._remove_empty_version_dirs()
        return removed, freed

    def _remove_empty_version_dirs(self) -> None:
        if self._cache_dir is None or not self._cache_dir.is_dir():
            return
        for child in self._cache_dir.iterdir():
            if child.is_dir() and child.name.startswith("v-"):
                try:
                    child.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    def info(self) -> StoreInfo:
        disk_entries = 0
        disk_bytes = 0
        stale_entries = 0
        stale_bytes = 0
        for path in self._disk_entries():
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            disk_entries += 1
            disk_bytes += size
            if self._version is not None and not self._is_current(path):
                stale_entries += 1
                stale_bytes += size
        return StoreInfo(
            cache_dir=str(self._cache_dir) if self._cache_dir is not None else None,
            memory_entries=len(self._memory),
            disk_entries=disk_entries,
            disk_bytes=disk_bytes,
            version=self._version,
            stale_entries=stale_entries,
            stale_bytes=stale_bytes)
