"""Canonical keying and content hashing for cache keys.

Every cache key in :mod:`repro.api` — and the policy key of the legacy
:class:`~repro.experiments.runner.ExperimentRunner` — is derived from the
*fields* of the participating dataclasses rather than from hand-maintained
tuples.  Adding a field to :class:`~repro.minigraph.policies.SelectionPolicy`
or :class:`~repro.uarch.config.MachineConfig` therefore changes the key
automatically instead of silently aliasing cache entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
from enum import Enum
from typing import Any, Tuple


class KeyError_(TypeError):
    """Raised when a value cannot be canonically keyed."""


def canonical_key(value: Any) -> Any:
    """Reduce ``value`` to a deterministic, hashable, order-stable structure.

    Dataclasses become ``(class name, (field name, canonical value)...)``
    tuples driven by :func:`dataclasses.fields`; mappings are sorted by their
    canonical keys; sequences map element-wise; scalars pass through.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, canonical_key(getattr(value, f.name)))
            for f in dataclasses.fields(value))
        return (type(value).__name__,) + fields
    if isinstance(value, Enum):
        return (type(value).__name__, value.name)
    if isinstance(value, dict):
        return ("dict",) + tuple(sorted(
            (repr(canonical_key(key)), canonical_key(item))
            for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canonical_key(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted(repr(canonical_key(item)) for item in value))
    if value is None or isinstance(value, (str, int, float, bool, bytes)):
        return value
    raise KeyError_(f"cannot derive a canonical key from {type(value).__name__}")


def content_hash(value: Any) -> str:
    """Stable hex digest of ``value``'s canonical key."""
    digest = hashlib.sha256(repr(canonical_key(value)).encode("utf-8"))
    return digest.hexdigest()[:24]
