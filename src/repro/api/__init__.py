"""Unified pipeline API: declarative specs in, cached artifacts out.

This package is the single front door to the reproduction's tool chain:

* :class:`RunSpec` — a frozen, declarative description of one end-to-end run
  (benchmark, input, budget, policy, machine config, MGT options) that
  normalizes into a stable content hash;
* :class:`Session` — the stage graph ``assemble -> profile -> select ->
  rewrite -> build_mgt -> trace -> time`` with typed artifacts, plus
  :meth:`Session.map` process-pool fan-out for multi-benchmark sweeps and
  the :meth:`Session.sweep` fast path that groups specs sharing upstream
  artifacts (one functional profile per benchmark per pool, shared interned
  decode metadata);
* :class:`ArtifactStore` — the in-memory + on-disk content-addressed cache
  (keyed by spec hash, stage and ``repro.__version__``) that lets repeated
  runs skip redundant simulation entirely;
* a command-line interface, reachable as ``python -m repro`` (see
  :mod:`repro.api.cli`).

The legacy entry points — :func:`repro.prepare_minigraph_run` and
:class:`repro.experiments.ExperimentRunner` — are thin compatibility shims
over this API.

``docs/api.md`` documents the full contract, including the cache
invalidation semantics (stage-scoped key material, field-derived canonical
keys, version-based invalidation) and a ``map()``/``sweep()`` cookbook.
"""

from .keys import canonical_key, content_hash
from .spec import STAGES, RunSpec, SpecError
from .store import ArtifactStore, CacheStats, StoreInfo, default_cache_dir
from .session import ProfileArtifact, RunArtifacts, Session, SessionStats

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "ProfileArtifact",
    "RunArtifacts",
    "RunSpec",
    "STAGES",
    "Session",
    "SessionStats",
    "SpecError",
    "StoreInfo",
    "canonical_key",
    "content_hash",
    "default_cache_dir",
]
