"""``python -m repro``: the command-line front end of :mod:`repro.api`.

Sub-commands:

* ``repro run BENCHMARK`` — one end-to-end mini-graph run;
* ``repro figure {5,6,7,8,extras}`` — regenerate a figure of the paper;
* ``repro grid`` — run a declarative experiment grid from the catalog
  (``--name fig6``), sharded (``--shard i/N``), resumable (``--resume``:
  cells whose terminal row artifact is already stored are served from it),
  with streaming JSONL/CSV row output (``--output``);
* ``repro bench`` — sweep a benchmark suite through :meth:`Session.sweep`,
  optionally recording simulator throughput (``--record`` writes a
  ``BENCH_*.json`` with simulated cycles/second plus trace-pipeline,
  front-end and grid-engine metrics; ``--compare`` embeds an earlier record
  as the *before* half of a before/after pair and derives speedup ratios);
* ``repro cache {info,clear,prune}`` — inspect, drop or GC the on-disk
  artifact cache (``prune`` evicts entries persisted by other
  ``__version__``\\ s, which the current build can never serve again);
* ``repro serve {start,stop,status}`` — the long-lived simulation daemon:
  a warm worker pool behind a local socket, accepting jobs from many
  clients and deduplicating their work through the shared store;
* ``repro submit`` — submit a named grid to a running daemon (optionally
  ``--follow``\\ ing its streamed rows);
* ``repro jobs`` — list or cancel the daemon's jobs.

Every command accepts ``--cache-dir`` (defaulting to ``$REPRO_CACHE_DIR`` or
``~/.cache/repro``) and ``--no-disk-cache``; ``--json`` switches the report
from rendered text to JSON built on :mod:`repro.experiments.reporting`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - Windows has no resource module
    resource = None  # type: ignore[assignment]

from ..experiments.reporting import ResultTable
from ..workloads.base import WorkloadError
from ..minigraph.mgt import MgtBuildOptions
from ..minigraph.policies import (
    DEFAULT_POLICY,
    INTEGER_POLICY,
    NON_SERIAL_NON_REPLAY_POLICY,
    SelectionPolicy,
)
from ..uarch.config import (
    MachineConfig,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from ..workloads import QUICK_BENCHMARKS, REGISTRY
from .session import Session
from .spec import RunSpec, SpecError
from .store import ArtifactStore, default_cache_dir

_POLICIES: Dict[str, Optional[SelectionPolicy]] = {
    "int-mem": DEFAULT_POLICY,
    "int": INTEGER_POLICY,
    "nonserial": NON_SERIAL_NON_REPLAY_POLICY,
    "baseline": None,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dataflow mini-graphs reproduction (Bracy, Prahlad & Roth, "
                    "MICRO-37 2004): unified pipeline driver.")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk artifact cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="keep artifacts in memory only")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of rendered text")
    parser.add_argument("--stats", action="store_true",
                        help="append session/cache statistics to the report")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="one end-to-end mini-graph run")
    run.add_argument("benchmark", help="registered benchmark name (e.g. gsm.toast)")
    run.add_argument("--input", default="reference", help="benchmark input set")
    run.add_argument("--budget", type=int, default=15_000,
                     help="dynamic-instruction budget")
    run.add_argument("--policy", choices=sorted(_POLICIES), default="int-mem",
                     help="selection policy family")
    run.add_argument("--max-size", type=int, default=None,
                     help="override the maximum mini-graph size")
    run.add_argument("--mgt-entries", type=int, default=None,
                     help="override the MGT capacity")
    run.add_argument("--machine", choices=("default", "baseline", "int", "int-mem"),
                     default="default", help="timing configuration")
    run.add_argument("--collapsing", action="store_true",
                     help="pair-wise collapsing ALU pipelines")
    run.add_argument("--compressed", action="store_true",
                     help="compressed (nop-free) code layout")

    figure = commands.add_parser("figure", help="regenerate a figure of the paper")
    figure.add_argument("number", choices=("5", "6", "7", "8", "extras"),
                        help="figure to regenerate")
    figure.add_argument("--benchmarks", nargs="+", default=None,
                        help="benchmark subset (default: a representative kernel "
                             "per suite, or the figure's own set)")
    figure.add_argument("--budget", type=int, default=8_000,
                        help="dynamic-instruction budget per benchmark")
    figure.add_argument("--full", action="store_true",
                        help="sweep every registered benchmark")

    grid = commands.add_parser(
        "grid", help="run a declarative experiment grid (sharded, resumable)")
    grid.add_argument("--name", default=None,
                      help="named grid from the catalog (see --list)")
    grid.add_argument("--list", action="store_true",
                      help="list the registered grids and exit")
    grid.add_argument("--benchmarks", nargs="+", default=None,
                      help="benchmark axis override (default: the grid's "
                           "own set, or a representative kernel per suite)")
    grid.add_argument("--budget", type=int, default=None,
                      help="dynamic-instruction budget per benchmark "
                           "(default: the grid's own)")
    grid.add_argument("--input", default="reference",
                      help="benchmark input set")
    grid.add_argument("--shard", default=None, metavar="I/N",
                      help="run only stage-shard I of N (0-based); shards "
                           "partition the plan, so their union equals the "
                           "unsharded grid")
    grid.add_argument("--resume", action="store_true",
                      help="serve cells whose terminal row artifact is "
                           "already in the store without re-executing them")
    grid.add_argument("--workers", type=int, default=None,
                      help="process-pool width (0/1 = serial)")
    grid.add_argument("--output", default=None, metavar="PATH",
                      help="stream result rows to PATH as they complete")
    grid.add_argument("--format", choices=("jsonl", "csv"), default=None,
                      help="row output format (default: from the --output "
                           "extension, else jsonl)")
    grid.add_argument("--no-table", action="store_true",
                      help="skip rendering the grid's result tables")
    grid.add_argument("--no-batch", action="store_true",
                      help="disable the batched multi-machine timing kernel "
                           "and pay the scalar per-cell timing loop (rows "
                           "are bit-identical either way)")
    grid.add_argument("--max-lanes", type=int, default=None, metavar="N",
                      help="lane cap per batched timing pass (default: the "
                           "kernel's DEFAULT_MAX_LANES); N >= 1")

    bench = commands.add_parser("bench", help="sweep a suite through Session.sweep")
    bench.add_argument("--suite", default=None,
                       help="suite to sweep (spec, media, comm, embedded); "
                            "default: all suites")
    bench.add_argument("--limit", type=int, default=None,
                       help="truncate the benchmark list")
    bench.add_argument("--budget", type=int, default=8_000,
                       help="dynamic-instruction budget per benchmark")
    bench.add_argument("--policy", choices=sorted(_POLICIES), default="int-mem",
                       help="selection policy family")
    bench.add_argument("--workers", type=int, default=None,
                       help="process-pool width (1 = serial)")
    bench.add_argument("--record", nargs="?", const="", default=None,
                       metavar="PATH",
                       help="write a BENCH_<suite>.json simulator-throughput "
                            "record (simulated cycles/second) to PATH "
                            "(default: ./BENCH_<suite>.json)")
    bench.add_argument("--compare", default=None, metavar="BENCH_JSON",
                       help="earlier BENCH_*.json to embed as the 'before' "
                            "half of a before/after throughput comparison")
    bench.add_argument("--max-lanes", type=int, default=None, metavar="N",
                       help="lane cap per batched timing pass in the grid "
                            "kernel measurements (default: the kernel's "
                            "DEFAULT_MAX_LANES); N >= 1")

    fuzz = commands.add_parser(
        "fuzz", help="differential fuzzing over seeded synthetic programs")
    fuzz.add_argument("--seeds", type=int, default=64,
                      help="number of consecutive seeds to run (default 64)")
    fuzz.add_argument("--base-seed", type=int, default=0,
                      help="first seed of the block (default 0)")
    fuzz.add_argument("--oracles", nargs="+", default=None,
                      metavar="ORACLE",
                      help="oracle subset (default: rewrite selection codec "
                           "timing geometry batch)")
    fuzz.add_argument("--budget", type=int, default=None,
                      help="dynamic-instruction budget per functional run")
    fuzz.add_argument("--input", default="reference",
                      help="input set to generate (reference or train)")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="process-pool width (1 = serial)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failing seeds without dial reduction")
    fuzz.add_argument("--corpus-dir", default=None, metavar="DIR",
                      help="persist a replayable repro JSON per failing "
                           "seed into DIR (the tests/corpus/ convention)")

    cache = commands.add_parser(
        "cache", help="inspect, clear or prune the artifact cache")
    cache.add_argument("action", choices=("info", "clear", "prune"),
                       help="prune evicts artifacts persisted by stale "
                            "__version__s (GC for long grid campaigns)")

    serve = commands.add_parser(
        "serve", help="long-lived simulation daemon with a warm worker pool")
    serve.add_argument("action", choices=("start", "stop", "status"))
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="daemon socket (default: $REPRO_SERVE_SOCKET or "
                            "<cache-dir>/serve.sock)")
    serve.add_argument("--workers", type=int, default=None,
                       help="warm worker count (default: min(4, cpus))")
    serve.add_argument("--queue-limit", type=int, default=None,
                       help="max concurrently admitted jobs before submits "
                            "are rejected queue-full (default: 32)")
    serve.add_argument("--backend", choices=("auto", "process", "thread"),
                       default="auto",
                       help="worker pool backend (auto prefers processes)")
    serve.add_argument("--detach", action="store_true",
                       help="start: fork into the background (writes "
                            "<socket>.pid)")
    serve.add_argument("--no-drain", action="store_true",
                       help="stop: cancel queued jobs instead of draining")

    submit = commands.add_parser(
        "submit", help="submit a catalog grid to a running serve daemon")
    submit.add_argument("--grid", required=True,
                        help="named grid from the catalog (see `repro grid "
                             "--list`); expanded daemon-side")
    submit.add_argument("--benchmarks", nargs="+", default=None,
                        help="benchmark axis override")
    submit.add_argument("--budget", type=int, default=None,
                        help="dynamic-instruction budget override")
    submit.add_argument("--input", default=None, help="benchmark input set")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (higher first)")
    submit.add_argument("--namespace", default="",
                        help="client namespace: isolates this client's row "
                             "artifacts from other tenants of the daemon")
    submit.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon socket")
    submit.add_argument("--no-resume", action="store_true",
                        help="recompute cells even when their row artifact "
                             "is already stored")
    submit.add_argument("--follow", action="store_true",
                        help="stream the job's rows to stdout as JSONL "
                             "until it completes")

    jobs = commands.add_parser(
        "jobs", help="list or cancel jobs on a running serve daemon")
    jobs.add_argument("--socket", default=None, metavar="PATH",
                      help="daemon socket")
    jobs.add_argument("--cancel", default=None, metavar="JOB_ID",
                      help="cancel one job instead of listing")
    return parser


def _cache_dir(args: argparse.Namespace) -> Optional[str]:
    if args.no_disk_cache:
        return None
    if args.cache_dir is not None:
        return args.cache_dir
    return str(default_cache_dir())


def _policy(name: str, max_size: Optional[int] = None,
            mgt_entries: Optional[int] = None) -> Optional[SelectionPolicy]:
    policy = _POLICIES[name]
    if policy is None:
        return None
    if max_size is not None:
        policy = policy.with_max_size(max_size)
    if mgt_entries is not None:
        policy = policy.with_mgt_entries(mgt_entries)
    return policy


def _machine(name: str, collapsing: bool) -> Optional[MachineConfig]:
    if name == "default":
        return None
    if name == "baseline":
        return baseline_config()
    if name == "int":
        return integer_minigraph_config(collapsing=collapsing)
    return integer_memory_minigraph_config(collapsing=collapsing)


def _json_cell(value: Any) -> Any:
    """NaN is not valid JSON; surface it as null."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _table_to_dict(table: ResultTable) -> Dict[str, Any]:
    return {"title": table.title, "columns": list(table.columns),
            "rows": {row: {column: _json_cell(value)
                           for column, value in cells.items()}
                     for row, cells in table.rows.items()},
            "suites": dict(table.row_suites), "notes": list(table.notes)}


def _emit(args: argparse.Namespace, session: Optional[Session],
          text: str, payload: Dict[str, Any]) -> None:
    if args.stats and session is not None:
        payload["session_stats"] = session.stats.as_dict()
        payload["cache_stats"] = session.cache_stats.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(text)
    if args.stats and session is not None:
        print(f"\nsession stats : {session.stats.as_dict()}")
        print(f"cache stats   : {session.cache_stats.as_dict()}")


# -- sub-commands -------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    session = Session(cache_dir=_cache_dir(args))
    spec = RunSpec(
        benchmark=args.benchmark,
        input_name=args.input,
        budget=args.budget,
        policy=_policy(args.policy, args.max_size, args.mgt_entries),
        machine=_machine(args.machine, args.collapsing),
        mgt_options=MgtBuildOptions(collapsing=args.collapsing),
        compressed_layout=args.compressed,
    )
    artifacts = session.run(spec)
    report = artifacts.report()
    lines = [f"benchmark     : {spec.label} ({args.input}, budget {args.budget})",
             f"spec hash     : {spec.spec_hash}"]
    if artifacts.selection is not None:
        lines.append(f"templates     : {artifacts.selection.template_count} "
                     f"(coverage {artifacts.coverage * 100:.1f}%)")
    lines.append(f"baseline      : {artifacts.baseline_timing.cycles} cycles, "
                 f"IPC {artifacts.baseline_timing.ipc:.2f} "
                 f"({spec.resolved_baseline_machine.name})")
    lines.append(f"this machine  : {artifacts.timing.cycles} cycles, "
                 f"IPC {artifacts.timing.ipc:.2f} ({spec.resolved_machine.name})")
    speedup = report["speedup"]
    lines.append("speedup       : " +
                 ("n/a (baseline retired nothing)" if speedup is None
                  else f"{(speedup - 1.0) * 100.0:+.1f}%"))
    _emit(args, session, "\n".join(lines), report)
    return 0


def _figure_benchmarks(args: argparse.Namespace) -> Optional[List[str]]:
    if args.benchmarks is not None:
        return list(args.benchmarks)
    if args.full:
        return None  # harness default: every registered benchmark
    return list(QUICK_BENCHMARKS)


def _cmd_figure(args: argparse.Namespace) -> int:
    # Imported here to keep CLI start-up cheap and avoid import cycles.
    from ..experiments import (
        ExperimentRunner,
        run_figure5,
        run_figure6,
        run_figure7,
        run_figure8,
        run_icache_effect,
        run_robustness,
    )
    session = Session(cache_dir=_cache_dir(args))
    runner = ExperimentRunner(budget=args.budget, session=session)
    names = _figure_benchmarks(args)
    number = args.number
    if number == "5":
        result = run_figure5(runner, benchmarks=names)
        tables = [result.integer.table, result.integer_memory.table,
                  result.domain.table]
        text = result.render()
    elif number == "6":
        result = run_figure6(runner, benchmarks=names)
        tables = [result.table]
        text = result.render()
    elif number == "7":
        result = run_figure7(runner, benchmarks=args.benchmarks)
        tables = [result.table]
        text = result.render()
    elif number == "8":
        result = run_figure8(runner, benchmarks=names)
        tables = [result.register_table, result.bandwidth_table]
        text = result.render()
    else:
        robustness = run_robustness(runner, benchmarks=names)
        icache = run_icache_effect(
            runner, benchmarks=[n for n in (names or runner.benchmarks("spec"))
                                if REGISTRY.get(n).suite == "spec"])
        tables = [icache.table]
        text = robustness.render() + "\n\n" + icache.render()
    payload: Dict[str, Any] = {"figure": number,
                               "tables": [_table_to_dict(table) for table in tables]}
    _emit(args, session, text, payload)
    return 0


def _parse_shard(text: str):
    """Parse ``I/N`` into a ``(index, count)`` pair."""
    from ..grid.spec import GridError
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        return int(index_text), int(count_text)
    except ValueError:
        raise GridError(f"--shard expects I/N (e.g. 0/2), got {text!r}") \
            from None


class _RowWriter:
    """Streams grid rows to a JSONL or CSV file as they complete."""

    def __init__(self, path: Optional[str], fmt: Optional[str],
                 axis_names: Sequence[str]) -> None:
        self._handle = None
        self._csv = None
        self._axis_names = list(axis_names)
        if path is None:
            return
        if fmt is None:
            fmt = "csv" if path.endswith(".csv") else "jsonl"
        self.format = fmt
        self._handle = open(path, "w", encoding="utf-8", newline="")
        if fmt == "csv":
            import csv
            self._csv = csv.writer(self._handle)
            self._csv.writerow(["index", *self._axis_names, *_ROW_FIELDS])
            # Flush the header immediately: a shard whose every planned
            # stage resolves to zero rows must still leave a parseable CSV,
            # and a tailed campaign shows its columns before the first row.
            self._handle.flush()

    def write(self, row) -> None:
        if self._handle is None:
            return
        data = row.as_dict()
        if self._csv is not None:
            point = data["point"]
            self._csv.writerow(
                [data["index"],
                 *[point.get(name) for name in self._axis_names],
                 *[data[field] for field in _ROW_FIELDS]])
        else:
            self._handle.write(json.dumps(data, sort_keys=True) + "\n")
        # Flush per row: a campaign killed mid-flight keeps every completed
        # cell, which is exactly what --resume restarts from.
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


#: Flat row fields streamed to CSV, in column order (JSONL carries them all).
_ROW_FIELDS = ("spec_hash", "benchmark", "input", "budget", "machine",
               "machine_hash", "baseline_machine", "coverage", "baseline_ipc",
               "ipc", "speedup", "cycles", "baseline_cycles", "templates",
               "resumed")


def _cmd_grid(args: argparse.Namespace) -> int:
    from ..grid import get_grid, grid_definitions, plan_grid

    if args.list:
        lines = ["registered grids:"]
        rows = []
        for definition in grid_definitions():
            rows.append({"name": definition.name,
                         "description": definition.description,
                         "default_budget": definition.default_budget})
            lines.append(f"  {definition.name:12s} {definition.description}")
        _emit(args, None, "\n".join(lines), {"grids": rows})
        return 0
    if args.name is None:
        print("repro: error: grid needs --name (or --list)", file=sys.stderr)
        return 2

    if args.max_lanes is not None and args.max_lanes < 1:
        print(f"repro: error: --max-lanes must be >= 1, got {args.max_lanes}",
              file=sys.stderr)
        return 2
    definition = get_grid(args.name)
    benchmarks = args.benchmarks if args.benchmarks is not None else \
        list(definition.default_benchmarks or QUICK_BENCHMARKS)
    budget = args.budget if args.budget is not None \
        else definition.default_budget
    grid = definition.build(benchmarks=benchmarks, budget=budget,
                            input_name=args.input)
    plan = plan_grid(grid)
    if args.shard is not None:
        plan = plan.take_shard(*_parse_shard(args.shard))

    session = Session(cache_dir=_cache_dir(args))
    writer = _RowWriter(args.output, args.format,
                        [axis.name for axis in grid.axes])
    rows = []
    start = time.perf_counter()
    try:
        for row in session.run_grid(plan, resume=args.resume,
                                    workers=args.workers,
                                    batch=not args.no_batch,
                                    max_lanes=args.max_lanes):
            rows.append(row)
            writer.write(row)
    finally:
        writer.close()
    wall_seconds = time.perf_counter() - start

    executed = sum(1 for row in rows if not row.resumed)
    resumed = len(rows) - executed
    plan_info = plan.describe()
    cache = session.cache_stats
    lines = [f"grid          : {grid.name} — {grid.title}",
             f"plan          : {plan_info['cells']} cells in "
             f"{plan_info['stages']} shared-artifact stages "
             f"({plan_info['frontend_compiles']} front-end compiles, "
             f"dedup {plan_info['dedup_ratio']:.2f}x)"
             + (f", shard {plan_info['shard']}" if plan_info['shard'] else ""),
             f"executed      : {executed} cells ({resumed} resumed) "
             f"in {wall_seconds:.2f}s",
             f"cache         : {cache.hits}/{cache.lookups} hits "
             f"({cache.hit_rate * 100:.0f}%)"]
    if args.output is not None:
        lines.append(f"rows          : {args.output} ({writer.format})")
    text = "\n".join(lines)

    tables = []
    if definition.report is not None and not args.no_table and rows:
        report_text, tables = definition.report(rows)
        text += "\n\n" + report_text

    payload: Dict[str, Any] = {
        "grid": grid.name,
        "plan": plan_info,
        "cells": len(rows),
        "executed": executed,
        "resumed": resumed,
        "wall_seconds": wall_seconds,
        "output": args.output,
        "rows": [row.as_dict() for row in rows],
        "tables": [_table_to_dict(table) for table in tables],
    }
    _emit(args, session, text, payload)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    session = Session(cache_dir=_cache_dir(args))
    names = REGISTRY.names(args.suite)
    if args.limit is not None:
        names = names[:args.limit]
    if not names:
        print(f"no benchmarks in suite {args.suite!r}", file=sys.stderr)
        return 1
    if args.compare is not None and args.record is None:
        print("repro: error: --compare requires --record (the comparison is "
              "written into the new BENCH_*.json)", file=sys.stderr)
        return 2
    if args.max_lanes is not None and args.max_lanes < 1:
        print(f"repro: error: --max-lanes must be >= 1, got {args.max_lanes}",
              file=sys.stderr)
        return 2
    before: Optional[Dict[str, Any]] = None
    if args.compare is not None:
        # Read the baseline record up front: a missing or malformed file must
        # fail before the sweep runs, not after the measurement is made.
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                before = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"repro: error: cannot read --compare file "
                  f"{args.compare!r}: {error}", file=sys.stderr)
            return 2
    policy = _policy(args.policy)
    specs = [RunSpec(benchmark=name, budget=args.budget, policy=policy)
             for name in names]
    start = time.perf_counter()
    results = session.sweep(specs, workers=args.workers)
    wall_seconds = time.perf_counter() - start
    table = ResultTable(title=f"bench sweep (budget {args.budget}, "
                              f"policy {args.policy})",
                        columns=["coverage", "base-ipc", "ipc", "speedup"])
    for artifacts in results:
        name = artifacts.spec.label
        suite = REGISTRY.get(name).suite
        table.add(name, "coverage", artifacts.coverage, suite=suite)
        table.add(name, "base-ipc", artifacts.baseline_timing.ipc, suite=suite)
        table.add(name, "ipc", artifacts.timing.ipc, suite=suite)
        table.add(name, "speedup", artifacts.speedup, suite=suite)
    simulated_cycles = sum(artifacts.timing.cycles + artifacts.baseline_timing.cycles
                           for artifacts in results)
    cycles_per_second = simulated_cycles / wall_seconds if wall_seconds > 0 else 0.0
    throughput = {"wall_seconds": wall_seconds,
                  "simulated_cycles": simulated_cycles,
                  "cycles_per_second": cycles_per_second}
    trace_metrics = _trace_metrics(results)
    frontend_metrics = _frontend_metrics(results, policy, session)
    grid_metrics = _grid_metrics(session, names, policy, args.budget,
                                 args.workers)
    grid_batched_metrics = _grid_batched_metrics(session, names, args.budget,
                                                 max_lanes=args.max_lanes)
    grid_crosstrace_metrics = _grid_crosstrace_metrics(
        max_lanes=args.max_lanes)
    serve_metrics = _serve_metrics(names, policy, args.budget)
    fuzz_metrics = _fuzz_metrics()
    truncation = ""
    if frontend_metrics["truncated_selections"]:
        truncation = (f" [TRUNCATED: {frontend_metrics['truncated_selections']} "
                      f"selections dropped >= "
                      f"{frontend_metrics['dropped_candidates']} candidates]")
    text = (table.render()
            + f"\n\nthroughput    : {cycles_per_second:,.0f} simulated cycles/s "
              f"({simulated_cycles:,} cycles in {wall_seconds:.2f}s)"
            + f"\ntrace codec   : {trace_metrics['encode_MBps']:.1f} MB/s encode, "
              f"{trace_metrics['decode_MBps']:.1f} MB/s decode, "
              f"{trace_metrics['artifact_bytes_per_entry']:.2f} B/entry "
              f"({trace_metrics['entries']:,} entries)"
            + f"\nfront-end     : {frontend_metrics['candidates_per_sec']:,.0f} "
              f"candidates/s, enumerate+select "
              f"{frontend_metrics['enumerate_select_seconds'] * 1000:.2f} ms/sweep "
              f"(cold {frontend_metrics['cold_seconds'] * 1000:.2f} ms), "
              f"block-memo hit rate "
              f"{frontend_metrics['block_memo_hit_rate'] * 100:.0f}%"
            + truncation
            + f"\ngrid          : {grid_metrics['specs_per_second']:,.0f} "
              f"specs/s planned, {grid_metrics['dedup_ratio']:.2f}x "
              f"shared-artifact dedup, resume hit rate "
              f"{grid_metrics['resume_hit_rate'] * 100:.0f}%"
            + f"\ngrid batched  : "
              f"{grid_batched_metrics['speedup_vs_scalar']:.2f}x vs scalar "
              f"({grid_batched_metrics['cells_per_second_batched']:,.1f} "
              f"cells/s batched vs "
              f"{grid_batched_metrics['cells_per_second_scalar']:,.1f} "
              f"scalar, {grid_batched_metrics['lanes_per_pass']:.1f} "
              f"lanes/pass vs "
              f"{grid_batched_metrics['lanes_per_pass_shared_trace_planner']:.1f} "
              f"shared-trace, rows "
              f"{'identical' if grid_batched_metrics['row_union_identical'] else 'DIVERGED'})"
            + f"\ngrid x-trace  : "
              f"{grid_crosstrace_metrics['speedup_vs_scalar']:.2f}x vs scalar "
              f"end-to-end on the mixed campaign "
              f"({grid_crosstrace_metrics['lanes_per_pass']:.1f} lanes/pass vs "
              f"{grid_crosstrace_metrics['lanes_per_pass_shared_trace_planner']:.1f} "
              f"shared-trace, "
              f"{grid_crosstrace_metrics['cross_trace_lanes']} cross-trace / "
              f"{grid_crosstrace_metrics['shared_trace_lanes']} shared lanes, "
              f"rows "
              f"{'identical' if grid_crosstrace_metrics['row_union_identical'] else 'DIVERGED'})"
            + f"\nserve         : cold first row "
              f"{serve_metrics['cold_first_row_seconds'] * 1000:.0f} ms, warm "
              f"p50 {serve_metrics['warm_first_row_p50_seconds'] * 1000:.1f} ms"
              f" / p99 {serve_metrics['warm_first_row_p99_seconds'] * 1000:.1f}"
              f" ms ({serve_metrics['warm_speedup']:.0f}x), "
              f"{serve_metrics['jobs_per_second_warm']:,.0f} jobs/s at "
              f"{serve_metrics['warm_resumed_fraction'] * 100:.0f}% store hits"
            + f"\nfuzz          : {fuzz_metrics['programs_per_second']:,.0f} "
              f"programs/s generated, "
              f"{fuzz_metrics['differential_runs_per_second']:,.0f} "
              f"differential runs/s over {fuzz_metrics['seeds']} seeds")
    payload = {"bench": _table_to_dict(table),
               "results": [artifacts.report() for artifacts in results],
               "throughput": throughput,
               "trace": trace_metrics,
               "frontend": frontend_metrics,
               "grid": grid_metrics,
               "grid_batched": grid_batched_metrics,
               "grid_crosstrace": grid_crosstrace_metrics,
               "serve": serve_metrics,
               "fuzz": fuzz_metrics}
    if args.record is not None:
        record_path = _write_bench_record(args, session, names, throughput,
                                          trace_metrics, frontend_metrics,
                                          grid_metrics, grid_batched_metrics,
                                          grid_crosstrace_metrics,
                                          serve_metrics, fuzz_metrics, before)
        payload["record_path"] = record_path
        text += f"\nrecorded      : {record_path}"
    _emit(args, session, text, payload)
    return 0


def _trace_metrics(results: List[Any]) -> Dict[str, Any]:
    """Trace-pipeline throughput over the sweep's baseline traces.

    Measures the binary trace codec (encode/decode over the raw column
    payload), the encode+profile path (serializing a trace artifact plus
    reconstructing its block profile from the index column), artifact bytes
    per entry (what one trace costs in the cache directory) and the process
    peak RSS.
    """
    from ..sim.functional import profile_from_trace
    from ..sim.trace import TRACE_ROW_BYTES, decode_trace, encode_trace

    entries = 0
    payload_bytes = 0
    artifact_bytes = 0
    encode_seconds = 0.0
    decode_seconds = 0.0
    profile_seconds = 0.0
    for artifacts in results:
        trace = artifacts.baseline_trace
        start = time.perf_counter()
        blob = encode_trace(trace)
        encode_seconds += time.perf_counter() - start
        start = time.perf_counter()
        decode_trace(blob)
        decode_seconds += time.perf_counter() - start
        start = time.perf_counter()
        profile_from_trace(artifacts.program, trace)
        profile_seconds += time.perf_counter() - start
        entries += len(trace)
        payload_bytes += len(trace) * TRACE_ROW_BYTES
        artifact_bytes += len(blob)
    megabytes = payload_bytes / 1e6
    peak_rss_kb: Optional[float] = None
    if resource is not None:
        # Include waited-for pool workers: with --workers N the simulation's
        # memory peak is in the children, not the parent.
        peak_rss_kb = max(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
        if sys.platform == "darwin":
            # ru_maxrss is bytes on macOS, kilobytes elsewhere.
            peak_rss_kb /= 1024
    return {
        "entries": entries,
        "column_payload_bytes": payload_bytes,
        "artifact_bytes": artifact_bytes,
        "artifact_bytes_per_entry":
            artifact_bytes / entries if entries else 0.0,
        "encode_MBps": megabytes / encode_seconds if encode_seconds else 0.0,
        "decode_MBps": megabytes / decode_seconds if decode_seconds else 0.0,
        "encode_entries_per_sec":
            entries / encode_seconds if encode_seconds else 0.0,
        "decode_entries_per_sec":
            entries / decode_seconds if decode_seconds else 0.0,
        "encode_profile_entries_per_sec":
            entries / (encode_seconds + profile_seconds)
            if encode_seconds + profile_seconds else 0.0,
        "peak_rss_kb": peak_rss_kb,
    }


#: Planning passes of the grid measurement (pure in-memory work; several
#: passes smooth out timer noise on the specs/s figure).
_GRID_PLAN_PASSES = 5


def _grid_metrics(session: Session, names: List[str],
                  policy: Optional[SelectionPolicy], budget: int,
                  workers: Optional[int]) -> Dict[str, Any]:
    """Grid-engine throughput over the sweep's benchmarks.

    Builds the benchmark × {minigraph, baseline} grid the sweep implies,
    measures planning speed (specs/s expanded+grouped), the shared-artifact
    dedup ratio the planner achieves, then executes the grid once (warm:
    every pipeline artifact exists from the sweep) and re-runs it with
    ``resume`` — the hit rate of that second pass is the resume guarantee
    long campaigns rely on, and must be 1.0.
    """
    from ..grid.planner import plan_grid
    from ..grid.spec import Axis, GridSpec

    axes = (Axis("benchmark", tuple(names)),
            Axis("config", ("minigraph", "baseline")))

    def build(point):
        if point["config"] == "minigraph":
            if policy is None:
                return None  # baseline-only bench: one cell per benchmark
            return RunSpec(benchmark=point["benchmark"], budget=budget,
                           policy=policy)
        return RunSpec(benchmark=point["benchmark"], budget=budget,
                       policy=None)

    grid = GridSpec(name="bench-grid", axes=axes, build=build,
                    title="bench sweep as a grid")
    plan = None
    plan_seconds: List[float] = []
    for _ in range(_GRID_PLAN_PASSES):
        start = time.perf_counter()
        plan = plan_grid(grid)
        plan_seconds.append(time.perf_counter() - start)
    mean_plan_seconds = sum(plan_seconds) / len(plan_seconds)
    cells = plan.cell_count

    start = time.perf_counter()
    first = list(session.run_grid(plan, workers=workers))
    execute_seconds = time.perf_counter() - start
    resumed_pass = list(session.run_grid(plan, resume=True, workers=workers))
    resumed = sum(1 for row in resumed_pass if row.resumed)
    return {
        "cells": cells,
        "stages": plan.stage_count,
        "frontend_compiles": plan.frontend_compiles,
        "dedup_ratio": plan.dedup_ratio,
        "plan_passes": _GRID_PLAN_PASSES,
        "plan_seconds_per_pass": mean_plan_seconds,
        "specs_per_second":
            cells / mean_plan_seconds if mean_plan_seconds else 0.0,
        "execute_seconds": execute_seconds,
        "executed_cells": sum(1 for row in first if not row.resumed),
        "resume_hit_rate": resumed / cells if cells else 0.0,
        "resumed_cells": resumed,
    }


#: Benchmarks of the batched-kernel measurement.  The Figure 8 grid's
#: variant axis supplies the machine lanes; two benchmarks keep the scalar
#: reference pass (one interpreter loop per lane) affordable.
_GRID_BATCH_BENCHMARKS = 2


def _shared_trace_passes(batches, cap: int) -> int:
    """Pass count the PR-8-style per-trace planner would need for the same
    lanes: one chunked run per decoded trace, never mixing traces."""
    sizes: Dict[Any, int] = {}
    for batch in batches:
        for group in batch.groups:
            sizes[group.trace_key] = sizes.get(group.trace_key, 0) \
                + len(group.lanes)
    return sum(-(-size // cap) for size in sizes.values())


def _grid_batched_metrics(session: Session, names: List[str], budget: int,
                          max_lanes: Optional[int] = None) -> Dict[str, Any]:
    """Batched multi-machine timing kernel vs the scalar per-cell path.

    Replays the timing work of the Figure 8 grid (the machine-space sweep
    the batched kernel exists for) over the first
    ``_GRID_BATCH_BENCHMARKS`` benchmarks: the planner's
    ``timing_batches`` bin-packs every cell's machine into cross-trace
    passes, each distinct trace is materialised once through the (warm)
    session, and the same lane set is then timed twice — one scalar
    ``simulate_program`` per lane, and one ``BatchedTimingSimulator`` pass
    per batch.  Per-lane outcomes (stats, or the admission error) are
    compared for bit-identity, so the recorded speedup is only meaningful
    when ``row_union_identical`` is true.
    """
    from ..grid.planner import plan_grid
    from ..experiments.fig8_amplification import figure8_grid
    from ..uarch.batch import (
        DEFAULT_MAX_LANES,
        BatchedTimingSimulator,
        TimingLane,
    )
    from ..uarch.config import ConfigError
    from ..uarch.pipeline import TimingError, simulate_program

    grid = figure8_grid(benchmarks=names[:_GRID_BATCH_BENCHMARKS],
                        budget=budget)
    batches = plan_grid(grid).timing_batches(max_lanes)
    inputs_by_trace: Dict[Any, Tuple[Any, Any, Any, bool]] = {}
    work = []                      # per batch: [(inputs, configs), ...]
    for batch in batches:
        group_work = []
        for group in batch.groups:
            inputs = inputs_by_trace.get(group.trace_key)
            if inputs is None:
                anchor = group.lanes[0][0]
                if group.minigraph:
                    inputs = (session.rewritten(anchor),
                              session.minigraph_trace(anchor),
                              session.mgt(anchor), anchor.compressed_layout)
                else:
                    inputs = (session.program(anchor),
                              session.baseline_trace(anchor), None, False)
                inputs_by_trace[group.trace_key] = inputs
            group_work.append((inputs,
                               [config for _, config in group.lanes]))
        work.append(group_work)
    lanes = sum(len(configs) for group_work in work
                for _, configs in group_work)

    def scalar_lane(program, trace, mgt, compressed, config):
        try:
            return simulate_program(program, trace, config, mgt=mgt,
                                    compressed_layout=compressed)
        except (ConfigError, TimingError) as error:
            return (type(error).__name__, str(error))

    start = time.perf_counter()
    scalar_outcomes = []
    for group_work in work:
        for (program, trace, mgt, compressed), configs in group_work:
            for config in configs:
                scalar_outcomes.append(
                    scalar_lane(program, trace, mgt, compressed, config))
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_outcomes = []
    for group_work in work:
        pass_lanes = [
            TimingLane(program, trace, config, mgt=mgt,
                       compressed_layout=compressed)
            for (program, trace, mgt, compressed), configs in group_work
            for config in configs]
        batch = BatchedTimingSimulator.from_lanes(pass_lanes)
        results = batch.run()
        for lane in range(len(pass_lanes)):
            error = batch.lane_errors.get(lane)
            batched_outcomes.append(
                results[lane] if error is None
                else (type(error).__name__, str(error)))
    batched_seconds = time.perf_counter() - start

    def canonical(outcome):
        return outcome if isinstance(outcome, tuple) \
            else dataclasses.asdict(outcome)

    identical = [canonical(item) for item in scalar_outcomes] \
        == [canonical(item) for item in batched_outcomes]
    cap = max_lanes if max_lanes is not None else DEFAULT_MAX_LANES
    shared_passes = _shared_trace_passes(batches, cap)
    peak_rss_kb: Optional[float] = None
    peak_rss_kb_per_lane: Optional[float] = None
    lanes_per_pass = lanes / len(batches) if batches else 0.0
    if resource is not None:
        peak_rss_kb = float(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        if sys.platform == "darwin":
            peak_rss_kb /= 1024
        if lanes_per_pass:
            peak_rss_kb_per_lane = peak_rss_kb / lanes_per_pass
    return {
        "grid": grid.name,
        "benchmarks": list(names[:_GRID_BATCH_BENCHMARKS]),
        "cells": lanes,
        "passes": len(batches),
        "cross_trace_passes":
            sum(1 for batch in batches if batch.cross_trace),
        "lanes_per_pass": lanes_per_pass,
        "lanes_per_pass_shared_trace_planner":
            lanes / shared_passes if shared_passes else 0.0,
        "max_lanes": cap,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "cells_per_second_scalar":
            lanes / scalar_seconds if scalar_seconds else 0.0,
        "cells_per_second_batched":
            lanes / batched_seconds if batched_seconds else 0.0,
        "speedup_vs_scalar":
            scalar_seconds / batched_seconds if batched_seconds else 0.0,
        "row_union_identical": identical,
        "peak_rss_kb": peak_rss_kb,
        "peak_rss_kb_per_lane": peak_rss_kb_per_lane,
    }


#: The mixed-workload campaign of the cross-trace measurement: one small
#: benchmark against one ~40k-entry workload at a budget that lets the long
#: trace run out, so lane groups of very different lengths share passes.
_CROSSTRACE_BENCHMARKS = ("bitcount", "listchase")
_CROSSTRACE_BUDGET = 45_000


def _grid_crosstrace_metrics(max_lanes: Optional[int] = None
                             ) -> Dict[str, Any]:
    """End-to-end mixed-workload campaign: cross-trace batched vs scalar.

    Runs a fig6+fig8-style grid (register-file variants × baseline/int-mem
    modes over one small and one ~40k-entry benchmark) twice through
    ``run_grid`` on fresh in-memory sessions — once with the cross-trace
    batched kernel, once with ``batch=False`` — and compares the full row
    unions for bit-identity.  Unlike ``grid_batched`` (which isolates the
    kernel), this measures the campaign end to end, so the recorded speedup
    is what ``repro grid`` users see; the occupancy pair
    (``lanes_per_pass`` vs ``lanes_per_pass_shared_trace_planner``) shows
    the packing win over the per-trace planner on the same lane set.
    """
    from ..experiments.fig8_amplification import figure8_grid
    from ..grid.planner import plan_grid
    from ..uarch.batch import DEFAULT_MAX_LANES

    grid = figure8_grid(benchmarks=list(_CROSSTRACE_BENCHMARKS),
                        budget=_CROSSTRACE_BUDGET,
                        register_sizes=(164, 144, 124, 104), variants=(),
                        modes=("baseline", "int-mem"))
    plan = plan_grid(grid)
    batches = plan.timing_batches(max_lanes)
    lanes = sum(batch.lane_count for batch in batches)
    cap = max_lanes if max_lanes is not None else DEFAULT_MAX_LANES
    shared_passes = _shared_trace_passes(batches, cap)

    start = time.perf_counter()
    batched_session = Session()
    batched_rows = [row.as_dict()
                    for row in batched_session.run_grid(
                        plan, workers=0, batch=True, max_lanes=max_lanes)]
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar_session = Session()
    scalar_rows = [row.as_dict()
                   for row in scalar_session.run_grid(
                       plan, workers=0, batch=False)]
    scalar_seconds = time.perf_counter() - start

    stats = batched_session.stats
    return {
        "grid": grid.name,
        "benchmarks": list(_CROSSTRACE_BENCHMARKS),
        "budget": _CROSSTRACE_BUDGET,
        "cells": plan.cell_count,
        "lanes": lanes,
        "passes": len(batches),
        "cross_trace_passes":
            sum(1 for batch in batches if batch.cross_trace),
        "lanes_per_pass": lanes / len(batches) if batches else 0.0,
        "lanes_per_pass_shared_trace_planner":
            lanes / shared_passes if shared_passes else 0.0,
        "cross_trace_lanes": stats.batched_timing_cross_trace_lanes,
        "shared_trace_lanes": stats.batched_timing_shared_trace_lanes,
        "max_lanes": cap,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup_vs_scalar":
            scalar_seconds / batched_seconds if batched_seconds else 0.0,
        "row_union_identical": batched_rows == scalar_rows,
    }


#: Warm-latency samples of the serve measurement (p99 needs a population).
_SERVE_WARM_SAMPLES = 20


def _serve_metrics(names: List[str], policy: Optional[SelectionPolicy],
                   budget: int) -> Dict[str, Any]:
    """``repro serve`` daemon throughput: cold vs warm submit→first-row.

    Boots a private daemon (own socket, own empty store) and submits the
    same cell set repeatedly.  The *cold* submission computes everything;
    every *warm* one must be answered entirely from the daemon's store —
    zero recompilation, ``resumed_fraction`` 1.0 — so the p50/p99 warm
    latencies and jobs/s measure pure serving overhead, and
    ``warm_speedup`` (cold / warm p50) is the paper-repro claim that a warm
    daemon beats a cold ``repro grid`` by a wide margin.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from ..grid.spec import GridCell
    from ..serve.client import ServeClient
    from ..serve.server import ServeServer

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
    server = ServeServer(tmp / "serve.sock", cache_dir=tmp / "cache",
                         workers=2)
    server.start()
    try:
        client = ServeClient(tmp / "serve.sock", retry_connect=10.0)
        specs = [RunSpec(benchmark=names[0], budget=budget, policy=policy)]
        if policy is not None:
            specs.append(RunSpec(benchmark=names[0], budget=budget,
                                 policy=None))
        cells = [GridCell(index=index, point=(("config", str(index)),),
                          spec=spec) for index, spec in enumerate(specs)]

        def submit_and_stream() -> Tuple[float, float, int]:
            start = time.perf_counter()
            response = client.submit_cells(cells, label="bench",
                                           resume=True)
            first_row = None
            resumed = 0
            for row in client.stream(response["job_id"]):
                if first_row is None:
                    first_row = time.perf_counter() - start
                resumed += int(row["resumed"])
            return (time.perf_counter() - start,
                    first_row if first_row is not None else 0.0, resumed)

        cold_total, cold_first_row, _ = submit_and_stream()
        warm_first_rows: List[float] = []
        warm_resumed = 0
        warm_start = time.perf_counter()
        for _ in range(_SERVE_WARM_SAMPLES):
            _, first_row, resumed = submit_and_stream()
            warm_first_rows.append(first_row)
            warm_resumed += resumed
        warm_seconds = time.perf_counter() - warm_start
        client.shutdown(drain=True)
        client.close()
    finally:
        server.stop()
        shutil.rmtree(tmp, ignore_errors=True)

    ranked = sorted(warm_first_rows)
    p50 = ranked[len(ranked) // 2]
    p99 = ranked[min(len(ranked) - 1, int(len(ranked) * 0.99))]
    return {
        "workers": server.workers,
        "backend": server.pool.backend if server.pool is not None else None,
        "cells": len(cells),
        "cold_first_row_seconds": cold_first_row,
        "cold_total_seconds": cold_total,
        "warm_jobs": _SERVE_WARM_SAMPLES,
        "warm_first_row_p50_seconds": p50,
        "warm_first_row_p99_seconds": p99,
        "warm_speedup": cold_first_row / p50 if p50 > 0 else 0.0,
        "jobs_per_second_warm":
            _SERVE_WARM_SAMPLES / warm_seconds if warm_seconds else 0.0,
        "warm_resumed_fraction":
            warm_resumed / (len(cells) * _SERVE_WARM_SAMPLES),
    }


#: Passes of the front-end measurement; pass 1 runs against whatever block
#: memo state the sweep left behind (cold in pool mode), later passes measure
#: the steady state that repeated sweeps (Figure 5, domain selection) see.
_FRONTEND_PASSES = 5


def _frontend_metrics(results: List[Any], policy: Optional[SelectionPolicy],
                      session: Session) -> Dict[str, Any]:
    """Compilation front-end throughput over the sweep's programs.

    Like :func:`_trace_metrics`, measured post-hoc over the artifacts the
    sweep produced: ``_FRONTEND_PASSES`` passes of enumerate+select over
    every (program, profile) pair.  ``enumerate_select_seconds`` is the mean
    seconds per pass (the steady-state front-end cost of one suite sweep);
    ``cold_seconds`` is the first pass.  Truncation counts come from the
    sweep's own select stages (via the session's ``frontend_*`` stats) plus
    this measurement, so silently capped enumerations are never invisible.
    """
    from ..minigraph.registry import FRONTEND_STATS
    from ..minigraph.selection import select_minigraphs

    selection_policy = policy if policy is not None else DEFAULT_POLICY
    before = FRONTEND_STATS.snapshot()
    pass_seconds: List[float] = []
    admissible = 0
    truncated_selections = 0
    for iteration in range(_FRONTEND_PASSES):
        start = time.perf_counter()
        for artifacts in results:
            selection = select_minigraphs(artifacts.program, artifacts.profile,
                                          policy=selection_policy)
            if iteration == 0:
                admissible += selection.candidate_count
                truncated_selections += int(selection.truncated)
        pass_seconds.append(time.perf_counter() - start)
    delta = FRONTEND_STATS.delta_since(before)
    mean_seconds = sum(pass_seconds) / len(pass_seconds) if pass_seconds else 0.0
    memo_lookups = delta.block_memo_hits + delta.block_memo_misses
    stats = session.stats
    return {
        "passes": _FRONTEND_PASSES,
        "pass_seconds": pass_seconds,
        "cold_seconds": pass_seconds[0] if pass_seconds else 0.0,
        "enumerate_select_seconds": mean_seconds,
        "enumeration_seconds": delta.enumeration_seconds / _FRONTEND_PASSES,
        "selection_seconds": delta.selection_seconds / _FRONTEND_PASSES,
        "admissible_candidates": admissible,
        "candidates_per_sec": admissible / mean_seconds if mean_seconds else 0.0,
        "block_memo_hit_rate":
            delta.block_memo_hits / memo_lookups if memo_lookups else 0.0,
        "truncated_selections": truncated_selections,
        "dropped_candidates": delta.dropped_candidates // _FRONTEND_PASSES,
        "sweep_enumeration_seconds": stats.frontend_enumeration_seconds,
        "sweep_selection_seconds": stats.frontend_selection_seconds,
        "sweep_truncated_blocks": stats.frontend_truncated_blocks,
        "sweep_dropped_candidates": stats.frontend_dropped_candidates,
    }


#: Seeds measured by the bench fuzz block (generation probe runs the full
#: block; the differential probe runs a prefix — the oracles dominate the
#: per-seed cost, and the bench only needs a stable rate, not coverage).
_FUZZ_BENCH_SEEDS = 24
_FUZZ_BENCH_DIFFERENTIAL_SEEDS = 8


def _fuzz_metrics() -> Dict[str, Any]:
    """Fuzzing throughput: program generation and differential-oracle rates.

    Two probes over a fixed seed block, so the figures are comparable
    across commits: pure generation (spec sampling + assembly into a
    :class:`Program`) and full differential runs (all six oracles).
    """
    from ..fuzz import SynthSpec, generate_program, run_fuzz

    start = time.perf_counter()
    for seed in range(_FUZZ_BENCH_SEEDS):
        generate_program(SynthSpec.sample(seed), "reference")
    generate_seconds = time.perf_counter() - start
    report = run_fuzz(_FUZZ_BENCH_DIFFERENTIAL_SEEDS, shrink=False)
    return {
        "seeds": _FUZZ_BENCH_SEEDS,
        "generate_seconds": generate_seconds,
        "programs_per_second":
            _FUZZ_BENCH_SEEDS / generate_seconds if generate_seconds else 0.0,
        "differential_seeds": report.seeds,
        "differential_runs": report.differential_runs,
        "differential_seconds": report.elapsed_seconds,
        "differential_runs_per_second": report.runs_per_second,
        "failures": len(report.failures),
    }


def _write_bench_record(args: argparse.Namespace, session: Session,
                        names: List[str], throughput: Dict[str, Any],
                        trace_metrics: Dict[str, Any],
                        frontend_metrics: Dict[str, Any],
                        grid_metrics: Dict[str, Any],
                        grid_batched_metrics: Dict[str, Any],
                        grid_crosstrace_metrics: Dict[str, Any],
                        serve_metrics: Dict[str, Any],
                        fuzz_metrics: Dict[str, Any],
                        before: Optional[Dict[str, Any]]) -> str:
    """Write the ``BENCH_*.json`` simulator-throughput record.

    The record captures everything needed to compare simulator speed across
    commits; with ``--compare OLD.json`` the previous measurement (already
    parsed by the caller) is embedded under ``before`` so one file carries
    the before/after pair.
    """
    record: Dict[str, Any] = {
        "suite": args.suite or "all",
        "budget": args.budget,
        "policy": args.policy,
        "workers": args.workers,
        "benchmarks": list(names),
        "version": session.version,
        "recorded_at": time.time(),
        **throughput,
        "trace": trace_metrics,
        "frontend": frontend_metrics,
        "grid": grid_metrics,
        "grid_batched": grid_batched_metrics,
        "grid_crosstrace": grid_crosstrace_metrics,
        "serve": serve_metrics,
        "fuzz": fuzz_metrics,
        # Cache context: with a warm artifact cache no simulation runs and
        # cycles_per_second measures cache-load speed, not the simulator.
        "session_stats": session.stats.as_dict(),
        "cache_stats": session.cache_stats.as_dict(),
    }
    if session.stats.simulations == 0:
        print("repro: warning: bench served entirely from the artifact cache; "
              "the recorded cycles_per_second measures cache loading, not the "
              "simulator (rerun with --no-disk-cache for a clean measurement)",
              file=sys.stderr)
    if before is not None:
        record["before"] = {key: before.get(key) for key in
                            ("wall_seconds", "simulated_cycles",
                             "cycles_per_second", "version", "recorded_at",
                             "trace", "frontend", "grid")}
        previous = before.get("cycles_per_second") or 0.0
        if previous > 0:
            record["speedup_vs_before"] = throughput["cycles_per_second"] / previous
        previous_trace = before.get("trace") or {}
        trace_speedups: Dict[str, float] = {}
        for key in ("encode_entries_per_sec", "decode_entries_per_sec",
                    "encode_profile_entries_per_sec"):
            old = previous_trace.get(key) or 0.0
            if old > 0:
                trace_speedups[key] = trace_metrics[key] / old
        old_bytes = previous_trace.get("artifact_bytes_per_entry") or 0.0
        if old_bytes > 0 and trace_metrics["artifact_bytes_per_entry"] > 0:
            trace_speedups["artifact_bytes_per_entry_ratio"] = \
                trace_metrics["artifact_bytes_per_entry"] / old_bytes
        if trace_speedups:
            record["trace_speedup_vs_before"] = trace_speedups
        previous_frontend = before.get("frontend") or {}
        frontend_speedups: Dict[str, float] = {}
        old_seconds = previous_frontend.get("enumerate_select_seconds") or 0.0
        if old_seconds > 0 and frontend_metrics["enumerate_select_seconds"] > 0:
            frontend_speedups["enumerate_select_speedup"] = \
                old_seconds / frontend_metrics["enumerate_select_seconds"]
        old_rate = previous_frontend.get("candidates_per_sec") or 0.0
        if old_rate > 0:
            frontend_speedups["candidates_per_sec_ratio"] = \
                frontend_metrics["candidates_per_sec"] / old_rate
        old_cold = previous_frontend.get("cold_seconds") or 0.0
        if old_cold > 0 and frontend_metrics["cold_seconds"] > 0:
            frontend_speedups["cold_speedup"] = \
                old_cold / frontend_metrics["cold_seconds"]
        if frontend_speedups:
            record["frontend_speedup_vs_before"] = frontend_speedups
    path = args.record or f"BENCH_{args.suite or 'all'}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from ..fuzz import ORACLE_NAMES, run_fuzz

    if args.seeds <= 0:
        print("repro: error: --seeds must be positive", file=sys.stderr)
        return 2
    if args.oracles is not None:
        unknown = [name for name in args.oracles if name not in ORACLE_NAMES]
        if unknown:
            print(f"repro: error: unknown oracles {', '.join(unknown)}; "
                  f"available: {', '.join(ORACLE_NAMES)}", file=sys.stderr)
            return 2
    report = run_fuzz(args.seeds, base_seed=args.base_seed,
                      oracles=args.oracles, budget=args.budget,
                      input_name=args.input, workers=args.workers or 1,
                      shrink=not args.no_shrink, corpus_dir=args.corpus_dir)
    lines = [f"fuzz          : {report.seeds} seeds from {report.base_seed}, "
             f"oracles {', '.join(report.oracles)}",
             f"differential  : {report.differential_runs} runs in "
             f"{report.elapsed_seconds:.1f}s "
             f"({report.runs_per_second:,.0f} runs/s)"]
    if report.ok:
        lines.append("result        : all oracles passed")
    else:
        lines.append(f"result        : {len(report.failures)} failing "
                     f"seed(s)")
        for failure in report.failures:
            lines.append(f"  seed {failure.seed}: [{failure.oracle}] "
                         f"{failure.detail}")
            if failure.shrunk:
                lines.append(f"    shrunk to {failure.shrunk}")
            if failure.repro_path:
                lines.append(f"    repro written to {failure.repro_path}")
    _emit(args, None, "\n".join(lines), {"fuzz": report.payload()})
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from .. import __version__
    cache_dir = _cache_dir(args)
    store = ArtifactStore(cache_dir, version=__version__)
    if args.action == "info":
        info = store.info()
        payload = {"cache_dir": info.cache_dir,
                   "version": info.version,
                   "disk_entries": info.disk_entries,
                   "disk_bytes": info.disk_bytes,
                   "stale_entries": info.stale_entries,
                   "stale_bytes": info.stale_bytes}
        _emit(args, None, info.render(), payload)
        return 0
    if args.action == "prune":
        removed, freed = store.prune()
        _emit(args, None,
              f"pruned {removed} stale-version artifacts ({freed} bytes)",
              {"pruned": removed, "freed_bytes": freed,
               "version": __version__, "cache_dir": cache_dir})
        return 0
    removed = store.clear()
    _emit(args, None, f"removed {removed} cached artifacts",
          {"removed": removed, "cache_dir": cache_dir})
    return 0


# -- serve daemon front end ----------------------------------------------------------


def _serve_socket(args: argparse.Namespace):
    from ..serve import protocol
    from pathlib import Path
    if getattr(args, "socket", None):
        return Path(args.socket)
    return protocol.default_socket_path()


def _serve_connect(args: argparse.Namespace, *, namespace: str = ""):
    """A connected client, or ``None`` (after printing) if no daemon."""
    from ..serve.client import ServeClient, ServeError
    socket_path = _serve_socket(args)
    try:
        return ServeClient(socket_path, namespace=namespace)
    except ServeError as error:
        print(f"repro: error: no serve daemon at {socket_path} ({error})",
              file=sys.stderr)
        return None


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    from ..serve.server import DEFAULT_QUEUE_LIMIT, ServeServer

    socket_path = _serve_socket(args)
    pidfile = socket_path.with_name(socket_path.name + ".pid")

    if args.action == "status":
        client = _serve_connect(args)
        if client is None:
            return 1
        status = client.status()
        client.close()
        queue = status["queue"]
        text = "\n".join([
            f"daemon        : pid {status['pid']}, protocol "
            f"{status['protocol']}, version {status['version']}",
            f"socket        : {status['socket']}",
            f"cache dir     : {status['cache_dir'] or '(memory only)'}",
            f"workers       : {status['workers']} ({status['backend']}), "
            f"pids {status['worker_pids']}",
            f"queue         : {queue['active']}/{queue['limit']} active"
            + (" (draining)" if queue["draining"] else ""),
            f"jobs          : {status['jobs']}",
            f"uptime        : {status['uptime_seconds']:.1f}s"])
        _emit(args, None, text, {"running": True, **status})
        return 0

    if args.action == "stop":
        client = _serve_connect(args)
        if client is None:
            return 1
        response = client.shutdown(drain=not args.no_drain)
        client.close()
        for _ in range(600):          # wait for the socket to disappear
            if not socket_path.exists():
                break
            time.sleep(0.05)
        pidfile.unlink(missing_ok=True)
        _emit(args, None, f"daemon stopping ({response['state']})",
              {"stopped": True, "state": response["state"]})
        return 0

    # start
    if args.detach:
        pid = os.fork()
        if pid > 0:
            for _ in range(600):      # wait for the daemon socket to appear
                if socket_path.exists():
                    print(f"serve daemon started (pid {pid}, "
                          f"socket {socket_path})")
                    return 0
                time.sleep(0.05)
            print("repro: error: daemon did not come up", file=sys.stderr)
            return 1
        os.setsid()
        devnull = os.open(os.devnull, os.O_RDWR)
        for fd in (0, 1, 2):
            os.dup2(devnull, fd)
        os.close(devnull)

    server = ServeServer(
        socket_path, cache_dir=_cache_dir(args), workers=args.workers,
        queue_limit=args.queue_limit or DEFAULT_QUEUE_LIMIT,
        backend=args.backend)

    def _drain(signum, frame) -> None:
        # SIGTERM/SIGINT: reject new submits, finish in-flight jobs, exit.
        server.request_shutdown(drain=True)

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    server.start()
    pidfile.write_text(f"{os.getpid()}\n", encoding="utf-8")
    if not args.detach:
        print(f"serve daemon listening on {socket_path} "
              f"({server.pool.backend} x{server.workers}); "
              f"SIGTERM drains and exits", flush=True)
    try:
        server.serve_forever()
    finally:
        pidfile.unlink(missing_ok=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _serve_connect(args, namespace=args.namespace)
    if client is None:
        return 1
    try:
        response = client.submit_named_grid(
            args.grid, benchmarks=args.benchmarks, budget=args.budget,
            input_name=args.input, priority=args.priority,
            resume=not args.no_resume)
        job_id = response["job_id"]
        if not args.follow:
            _emit(args, None,
                  f"submitted {job_id}: {response['cells']} cells "
                  f"({response['resumed']} resume-served) in "
                  f"{response['stages']} stages, state {response['state']}",
                  dict(response))
            return 0
        for row in client.stream(job_id):
            print(json.dumps(row, sort_keys=True), flush=True)
        job = client.poll(job_id)
        print(f"{job_id}: {job['state']}, {job['rows']} rows, "
              f"cache hit rate {job['cache_hit_rate'] * 100:.0f}%",
              file=sys.stderr)
        return 0
    finally:
        client.close()


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = _serve_connect(args)
    if client is None:
        return 1
    try:
        if args.cancel is not None:
            job = client.cancel(args.cancel)
            _emit(args, None, f"{job['id']}: {job['state']}", dict(job))
            return 0
        jobs = client.jobs()
        if not jobs:
            _emit(args, None, "no jobs", {"jobs": []})
            return 0
        lines = [f"{'id':10s} {'state':12s} {'prio':>4s} {'cells':>6s} "
                 f"{'rows':>6s} {'hit%':>5s}  label"]
        for job in jobs:
            lines.append(
                f"{job['id']:10s} {job['state']:12s} {job['priority']:4d} "
                f"{job['cells']:6d} {job['rows']:6d} "
                f"{job['cache_hit_rate'] * 100:5.0f}  {job['label']}")
        _emit(args, None, "\n".join(lines), {"jobs": jobs})
        return 0
    finally:
        client.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from ..grid.spec import GridError
    from ..serve.client import ServeError
    from ..uarch.config import ConfigError
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "grid":
            return _cmd_grid(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        return _cmd_cache(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; not an error.
        # The interpreter still flushes sys.stdout at exit, which would
        # re-raise into an "Exception ignored" traceback and exit code 120 —
        # point the standard streams at devnull before that can happen.
        try:
            sys.stdout.flush()
        except (BrokenPipeError, OSError, ValueError):
            pass
        devnull = os.open(os.devnull, os.O_WRONLY)
        try:
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        finally:
            os.close(devnull)
        return 0
    except ServeError as error:
        print(f"repro: error [{error.code}]: {error}", file=sys.stderr)
        return 3
    except (WorkloadError, SpecError, GridError, ConfigError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
