"""Declarative run specifications.

A :class:`RunSpec` names everything one end-to-end mini-graph run depends on:
the benchmark (or an ad-hoc :class:`~repro.program.program.Program`), the
input set, the dynamic-instruction budget, the selection policy, the MGT
build options, the machine configurations and the code-layout mode.  A spec
is a frozen value object: it normalizes into a stable content hash
(:attr:`RunSpec.spec_hash`) and into per-stage cache-key material
(:meth:`RunSpec.stage_material`), which is what makes artifact caching
content-addressed rather than identity-based.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..minigraph.mgt import MgtBuildOptions
from ..minigraph.policies import DEFAULT_POLICY, SelectionPolicy
from ..program.program import Program
from ..uarch.config import (
    MachineConfig,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from .keys import canonical_key, content_hash

#: Stage names, in pipeline order.  ``assemble`` produces the program,
#: ``profile`` the baseline functional run, ``select`` the mini-graph
#: selection, ``rewrite`` the handle-rewritten binary, ``build_mgt`` the
#: MGHT/MGST tables, ``trace`` the rewritten functional run and ``time`` a
#: cycle-level simulation.
STAGES: Tuple[str, ...] = (
    "assemble", "profile", "select", "rewrite", "build_mgt", "trace", "time",
)


class SpecError(ValueError):
    """Raised for malformed run specifications."""


@dataclass(frozen=True, eq=False)
class RunSpec:
    """Complete declarative description of one mini-graph pipeline run.

    Equality and hashing are content-based: two specs are equal exactly when
    they resolve to the same normalized identity (including the content hash
    of an ad-hoc program), so specs are safe to use as dictionary keys.

    Attributes:
        benchmark: registered benchmark name (``repro.workloads``); may be
            ``None`` when an ad-hoc ``program`` is supplied.
        input_name: benchmark input set ("reference", "train", ...).
        budget: dynamic-instruction budget for the functional runs.
        policy: selection policy; ``None`` means a baseline-only run (no
            selection, rewriting or MGT).
        machine: timing configuration for the (mini-graph) machine; ``None``
            picks the paper's default for the policy.
        baseline_machine: reference configuration for speedups; ``None``
            means the paper's 6-wide baseline.
        mgt_options: MGHT/MGST build options; ``None`` means defaults.
        compressed_layout: model the compressed (nop-free) code layout.
        program: ad-hoc program overriding ``benchmark``; content-hashed so
            caching still works.
    """

    benchmark: Optional[str] = None
    input_name: str = "reference"
    budget: int = 15_000
    policy: Optional[SelectionPolicy] = DEFAULT_POLICY
    machine: Optional[MachineConfig] = None
    baseline_machine: Optional[MachineConfig] = None
    mgt_options: Optional[MgtBuildOptions] = None
    compressed_layout: bool = False
    program: Optional[Program] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.benchmark is None and self.program is None:
            raise SpecError("a RunSpec needs a benchmark name or a program")
        if self.benchmark is not None and self.program is not None:
            # Allowing both would cache the ad-hoc program's artifacts under
            # the registered benchmark's keys, poisoning the shared store.
            raise SpecError("a RunSpec takes a benchmark name or a program, not both")
        if self.budget <= 0:
            raise SpecError(f"budget must be positive, got {self.budget}")

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def for_program(cls, program: Program, **kwargs: Any) -> "RunSpec":
        """Spec for an ad-hoc (unregistered) program."""
        return cls(program=program, **kwargs)

    def with_policy(self, policy: Optional[SelectionPolicy]) -> "RunSpec":
        return replace(self, policy=policy)

    def with_machine(self, machine: Optional[MachineConfig]) -> "RunSpec":
        return replace(self, machine=machine)

    def with_baseline_machine(self, machine: Optional[MachineConfig]) -> "RunSpec":
        return replace(self, baseline_machine=machine)

    def with_budget(self, budget: int) -> "RunSpec":
        return replace(self, budget=budget)

    def with_input(self, input_name: str) -> "RunSpec":
        return replace(self, input_name=input_name)

    def with_mgt_options(self, options: Optional[MgtBuildOptions]) -> "RunSpec":
        return replace(self, mgt_options=options)

    def with_compressed_layout(self, compressed: bool = True) -> "RunSpec":
        return replace(self, compressed_layout=compressed)

    def baseline_only(self) -> "RunSpec":
        """Variant with no mini-graphs at all."""
        return replace(self, policy=None)

    # -- resolution ----------------------------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable name of the run's program."""
        if self.benchmark is not None:
            return self.benchmark
        return self.program.name  # type: ignore[union-attr]

    @property
    def source_id(self) -> str:
        """Content-addressed identity of the program source."""
        if self.benchmark is not None:
            return self.benchmark
        # Hashing walks the whole program; memoize (the spec is frozen, so
        # the digest can never change).
        cached = self.__dict__.get("_source_id")
        if cached is None:
            cached = "adhoc-" + content_hash(self.program)
            object.__setattr__(self, "_source_id", cached)
        return cached

    @property
    def resolved_mgt_options(self) -> MgtBuildOptions:
        return self.mgt_options if self.mgt_options is not None else MgtBuildOptions()

    @property
    def resolved_machine(self) -> MachineConfig:
        """The machine this spec runs on (paper default for its policy)."""
        if self.machine is not None:
            return self.machine
        if self.policy is None:
            return baseline_config()
        collapsing = self.resolved_mgt_options.collapsing
        if self.policy.allow_memory:
            return integer_memory_minigraph_config(collapsing=collapsing)
        return integer_minigraph_config(collapsing=collapsing)

    @property
    def resolved_baseline_machine(self) -> MachineConfig:
        return self.baseline_machine if self.baseline_machine is not None \
            else baseline_config()

    # -- keying --------------------------------------------------------------------

    def stage_material(self, stage: str) -> Tuple[Any, ...]:
        """Cache-key material for ``stage``: exactly the spec fields that
        stage's output depends on, so unrelated spec changes still share
        artifacts (e.g. every policy reuses one profile)."""
        source = (self.source_id, self.input_name)
        if stage == "assemble":
            return source
        if stage == "profile":
            return source + (self.budget,)
        if stage in ("select", "rewrite"):
            return source + (self.budget, canonical_key(self.policy))
        if stage == "build_mgt":
            return source + (self.budget, canonical_key(self.policy),
                             canonical_key(self.resolved_mgt_options))
        if stage in ("trace", "time"):
            return source + (self.budget, canonical_key(self.policy),
                             canonical_key(self.resolved_mgt_options))
        if stage == "time_baseline":
            # Baseline timing simulates the *original* program and trace; it
            # depends on neither the policy nor the MGT options, so every
            # policy variant shares one artifact.
            return source + (self.budget,)
        raise SpecError(f"unknown stage {stage!r}; expected one of {STAGES}")

    def _identity(self) -> Tuple[Any, ...]:
        """The fully-normalized spec as a hashable tuple.

        Machines enter through their canonical :class:`MachineSpec` keys
        (name-free, derived fields normalized), so two specs differing only
        in a machine's display name are the same run.  Memoized: the spec is
        frozen, so the identity can never change.
        """
        cached = self.__dict__.get("_identity_key")
        if cached is None:
            cached = (
                self.source_id, self.input_name, self.budget,
                canonical_key(self.policy),
                self.resolved_machine.resolve().key,
                self.resolved_baseline_machine.resolve().key,
                canonical_key(self.resolved_mgt_options),
                self.compressed_layout,
            )
            object.__setattr__(self, "_identity_key", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    @property
    def spec_hash(self) -> str:
        """Stable content hash of the fully-normalized spec."""
        return content_hash(self._identity())

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary used by reports and the CLI."""
        return {
            "benchmark": self.label,
            "input": self.input_name,
            "budget": self.budget,
            "policy": None if self.policy is None else {
                "max_size": self.policy.max_size,
                "allow_memory": self.policy.allow_memory,
                "allow_branches": self.policy.allow_branches,
                "allow_externally_serial": self.policy.allow_externally_serial,
                "allow_internally_parallel": self.policy.allow_internally_parallel,
                "allow_interior_loads": self.policy.allow_interior_loads,
                "max_templates": self.policy.max_templates,
            },
            "machine": self.resolved_machine.name,
            "baseline_machine": self.resolved_baseline_machine.name,
            "collapsing": self.resolved_mgt_options.collapsing,
            "compressed_layout": self.compressed_layout,
            "spec_hash": self.spec_hash,
        }
