"""Binary rewriter: replace selected mini-graph instances with handles.

The rewriter implements the paper's binary-rewriting tool.  For each selected
static mini-graph instance it:

* replaces the *anchor* instruction with a ``mg`` handle carrying the
  interface registers and the MGID, and
* removes the other member instructions.

Two layout modes are supported, matching Section 6.2 of the paper:

* ``pad_with_nops=True`` (default): removed members become nops so the static
  layout, PCs and branch targets are unchanged.  This isolates mini-graph
  amplification from instruction-cache compression effects, as the paper does
  for all of its figures.
* ``pad_with_nops=False``: removed members are deleted and the program is
  re-laid out (branch targets are re-resolved from labels).  This exposes the
  compression effect used in the instruction-cache experiment.

The rewriter is deliberately independent of the selection machinery: it
consumes :class:`RewritePlan` items that name layout indices, so it can also
be used to plant hand-written handles (e.g. for DISE-aware executables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction, make_handle, make_nop
from .program import Program, ProgramError


class RewriteError(ValueError):
    """Raised when a rewrite plan is inconsistent with the program."""


@dataclass(frozen=True)
class RewriteSite:
    """One static mini-graph instance to collapse.

    Attributes:
        anchor_index: layout index where the handle is placed.
        member_indices: layout indices of all member instructions, including
            the anchor, in program order.
        mgid: MGT index encoded in the handle.
        input_regs: external input registers (at most two), in interface
            order E0, E1.
        output_reg: external output register or None.
    """

    anchor_index: int
    member_indices: Tuple[int, ...]
    mgid: int
    input_regs: Tuple[int, ...]
    output_reg: Optional[int]

    def __post_init__(self) -> None:
        if self.anchor_index not in self.member_indices:
            raise RewriteError("anchor must be one of the member instructions")
        if len(self.input_regs) > 2:
            raise RewriteError("mini-graph interface allows at most two inputs")
        if len(set(self.member_indices)) != len(self.member_indices):
            raise RewriteError("duplicate member indices in rewrite site")

    def handle(self) -> Instruction:
        """Build the handle instruction for this site."""
        rs1 = self.input_regs[0] if len(self.input_regs) >= 1 else None
        rs2 = self.input_regs[1] if len(self.input_regs) >= 2 else None
        return make_handle(rs1, rs2, self.output_reg, self.mgid)


@dataclass
class RewriteResult:
    """Output of :func:`rewrite_program`.

    Attributes:
        program: the rewritten program.
        handle_pcs: PC of each planted handle -> MGID.
        removed_instructions: number of member instructions removed (i.e.
            turned into nops or deleted), not counting the anchors.
        index_map: original layout index -> new layout index (only for
            instructions that survive; compression mode drops members).
    """

    program: Program
    handle_pcs: Dict[int, int] = field(default_factory=dict)
    removed_instructions: int = 0
    index_map: Dict[int, int] = field(default_factory=dict)


def _validate_sites(program: Program, sites: Sequence[RewriteSite]) -> None:
    used: Dict[int, int] = {}
    for site_number, site in enumerate(sites):
        for index in site.member_indices:
            if not 0 <= index < len(program.instructions):
                raise RewriteError(f"member index {index} out of range")
            if program.instructions[index].is_nop:
                raise RewriteError(f"member index {index} is a nop")
            if program.instructions[index].is_handle:
                raise RewriteError(f"member index {index} is already a handle")
            if index in used:
                raise RewriteError(
                    f"instruction {index} appears in two rewrite sites "
                    f"({used[index]} and {site_number}); a static instruction may "
                    f"belong to at most one mini-graph")
            used[index] = site_number


def rewrite_program(program: Program, sites: Sequence[RewriteSite], *,
                    pad_with_nops: bool = True,
                    name_suffix: str = ".mg") -> RewriteResult:
    """Collapse every site in ``sites`` and return the rewritten program.

    Args:
        program: the original program.
        sites: static instances to collapse; instructions may appear in at
            most one site.
        pad_with_nops: keep the original layout by replacing removed members
            with nops (paper default); otherwise compress the layout.
        name_suffix: appended to the program name of the rewritten image.
    """
    _validate_sites(program, sites)

    replacement: Dict[int, Instruction] = {}
    removed: set[int] = set()
    for site in sites:
        replacement[site.anchor_index] = site.handle()
        for index in site.member_indices:
            if index != site.anchor_index:
                removed.add(index)

    if pad_with_nops:
        return _rewrite_padded(program, replacement, removed, name_suffix)
    return _rewrite_compressed(program, replacement, removed, name_suffix)


def _rewrite_padded(program: Program, replacement: Dict[int, Instruction],
                    removed: set[int], name_suffix: str) -> RewriteResult:
    new_instructions: List[Instruction] = []
    for index, insn in enumerate(program.instructions):
        if index in replacement:
            new_instructions.append(replacement[index])
        elif index in removed:
            new_instructions.append(make_nop())
        else:
            new_instructions.append(insn)
    rewritten = program.with_instructions(
        new_instructions,
        name=program.name + name_suffix,
        metadata={**program.metadata, "rewritten": True, "compressed": False},
    )
    result = RewriteResult(program=rewritten,
                           removed_instructions=len(removed),
                           index_map={i: i for i in range(len(new_instructions))})
    for index, handle in replacement.items():
        result.handle_pcs[rewritten.pc_of(index)] = handle.mgid
    return result


def _rewrite_compressed(program: Program, replacement: Dict[int, Instruction],
                        removed: set[int], name_suffix: str) -> RewriteResult:
    # Build the surviving instruction list and an old->new index map, then
    # re-resolve branch targets via labels on the new layout.
    index_map: Dict[int, int] = {}
    survivors: List[Tuple[int, Instruction]] = []
    for index, insn in enumerate(program.instructions):
        if index in removed:
            continue
        new_index = len(survivors)
        index_map[index] = new_index
        survivors.append((index, replacement.get(index, insn)))

    # Remap labels.  A label that pointed at a removed member is moved to the
    # next surviving instruction (this only happens when a block leader was
    # absorbed, which the legality checker forbids for branch targets, but we
    # handle it defensively).
    new_labels: Dict[str, int] = {}
    for label, pc in program.labels.items():
        old_index = program.index_of(pc)
        while old_index not in index_map and old_index < len(program.instructions) - 1:
            old_index += 1
        new_index = index_map.get(old_index, len(survivors) - 1)
        new_labels[label] = program.text_base + new_index * 4

    # Strip stale numeric targets; Program.__post_init__ re-resolves them from
    # the remapped label table.
    new_instructions = []
    for _, insn in survivors:
        if insn.is_direct_control and insn.target is not None:
            new_instructions.append(insn.with_target(insn.target, None))
        else:
            new_instructions.append(insn)

    rewritten = program.with_instructions(
        new_instructions,
        name=program.name + name_suffix,
        labels=new_labels,
        metadata={**program.metadata, "rewritten": True, "compressed": True},
    )
    result = RewriteResult(program=rewritten,
                           removed_instructions=len(removed),
                           index_map=index_map)
    for index, handle in replacement.items():
        result.handle_pcs[rewritten.pc_of(index_map[index])] = handle.mgid
    return result
