"""A weak, id-keyed cache for values derived from a :class:`Program`.

Several subsystems precompile per-program state — the functional simulator's
execution plans, the timing model's decode tables — and want to share it
across every simulation of the same program without ever extending the
program's lifetime.  Programs are unhashable (and must stay picklable, so
the cache cannot live on the instance), which rules out a plain
``WeakKeyDictionary``; instead entries are keyed by ``id(program)`` with a
weakref guard:

* a hit requires the stored weakref to still point at the *same* object,
  which closes the id-reuse race after a program is collected;
* a finalizer evicts the entry when the program dies, and binds everything
  it needs as default arguments so it stays safe during interpreter
  shutdown, when module globals may already be cleared;
* cached values must not hold a strong reference back to the program, or
  the finalizer can never fire and the entry is pinned forever.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Generic, Tuple, TypeVar

from .program import Program

T = TypeVar("T")


def _evict(entries: Dict[int, Tuple["weakref.ref[Program]", object]],
           key: int, ref: "weakref.ref[Program]") -> None:
    current = entries.get(key)
    if current is not None and current[0] is ref:
        del entries[key]


class PerProgramCache(Generic[T]):
    """``program -> build(program)``, held only as long as the program lives."""

    def __init__(self, build: Callable[[Program], T]) -> None:
        self._build = build
        self._entries: Dict[int, Tuple["weakref.ref[Program]", T]] = {}

    def get(self, program: Program) -> T:
        key = id(program)
        current = self._entries.get(key)
        if current is not None and current[0]() is program:
            return current[1]
        value = self._build(program)
        ref = weakref.ref(
            program,
            lambda r, k=key, entries=self._entries, evict=_evict:
                evict(entries, k, r))
        self._entries[key] = (ref, value)
        return value

    def __len__(self) -> int:
        return len(self._entries)
