"""Control-flow graph construction on top of basic blocks.

The CFG is used by the mini-graph selection tooling for sanity checks (e.g.
asserting that rewriting preserves block boundaries) and by the workload
generators for reporting structural statistics.  It is a thin layer over
``networkx.DiGraph`` with blocks as nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..isa.opcodes import OpClass
from .basic_block import BasicBlock, BlockIndex
from .program import Program


@dataclass(frozen=True)
class CfgEdge:
    """A CFG edge between two blocks with its kind."""

    src: int
    dst: int
    kind: str  # "fallthrough", "taken", "call", "jump"


class ControlFlowGraph:
    """Control-flow graph of a program at basic-block granularity."""

    def __init__(self, program: Program) -> None:
        self._program = program
        self._index = BlockIndex(program)
        self._graph = nx.DiGraph()
        self._build()

    @property
    def program(self) -> Program:
        return self._program

    @property
    def block_index(self) -> BlockIndex:
        return self._index

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (nodes are block ids)."""
        return self._graph

    def _build(self) -> None:
        blocks = self._index.blocks
        for block in blocks:
            self._graph.add_node(block.block_id, block=block)
        for block in blocks:
            terminator = block.terminator
            next_block_id = block.block_id + 1 if block.block_id + 1 < len(blocks) else None
            if terminator.is_control:
                spec_class = terminator.spec.op_class
                if spec_class is OpClass.BRANCH:
                    self._add_target_edge(block, terminator, "taken")
                    if next_block_id is not None:
                        self._add_edge(block.block_id, next_block_id, "fallthrough")
                elif spec_class is OpClass.JUMP:
                    self._add_target_edge(block, terminator, "jump")
                elif spec_class is OpClass.CALL:
                    self._add_target_edge(block, terminator, "call")
                    if next_block_id is not None:
                        self._add_edge(block.block_id, next_block_id, "fallthrough")
                elif spec_class is OpClass.INDIRECT:
                    # Indirect targets are unknown statically; approximated by
                    # edges to every label target (return edges are resolved
                    # dynamically by the simulators, not by the CFG).
                    pass
                # HALT: no successors.
            elif next_block_id is not None:
                self._add_edge(block.block_id, next_block_id, "fallthrough")

    def _add_target_edge(self, block: BasicBlock, terminator, kind: str) -> None:
        if terminator.imm is None or not self._program.contains_pc(terminator.imm):
            return
        target_block = self._index.block_of_pc(terminator.imm)
        self._add_edge(block.block_id, target_block.block_id, kind)

    def _add_edge(self, src: int, dst: int, kind: str) -> None:
        self._graph.add_edge(src, dst, kind=kind)

    # -- queries -------------------------------------------------------------

    def successors(self, block_id: int) -> List[int]:
        """Successor block ids of ``block_id``."""
        return sorted(self._graph.successors(block_id))

    def predecessors(self, block_id: int) -> List[int]:
        """Predecessor block ids of ``block_id``."""
        return sorted(self._graph.predecessors(block_id))

    def edges(self) -> List[CfgEdge]:
        """All edges with their kinds."""
        return [CfgEdge(src, dst, data["kind"])
                for src, dst, data in self._graph.edges(data=True)]

    def entry_block(self) -> BasicBlock:
        """Block containing the program entry point."""
        return self._index.block_of_pc(self._program.entry_pc)

    def reachable_blocks(self) -> List[int]:
        """Block ids reachable from the entry block (via direct edges)."""
        entry = self.entry_block().block_id
        return sorted(nx.descendants(self._graph, entry) | {entry})

    def loop_headers(self) -> List[int]:
        """Block ids that are targets of a back edge (simple loop detection)."""
        headers = set()
        for src, dst in self._graph.edges():
            if dst <= src:
                headers.add(dst)
        return sorted(headers)

    def block_statistics(self) -> Dict[str, float]:
        """Structural statistics used in reports and tests."""
        blocks = self._index.blocks
        sizes = [block.useful_size for block in blocks]
        branchy = sum(1 for block in blocks
                      if block.ends_in_control and block.terminator.is_branch)
        return {
            "num_blocks": float(len(blocks)),
            "num_edges": float(self._graph.number_of_edges()),
            "mean_block_size": sum(sizes) / len(sizes) if sizes else 0.0,
            "max_block_size": float(max(sizes)) if sizes else 0.0,
            "conditional_block_fraction": branchy / len(blocks) if blocks else 0.0,
            "num_loop_headers": float(len(self.loop_headers())),
        }


def build_cfg(program: Program) -> ControlFlowGraph:
    """Convenience constructor for :class:`ControlFlowGraph`."""
    return ControlFlowGraph(program)
