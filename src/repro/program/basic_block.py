"""Basic block identification for MGA programs.

Mini-graphs are constrained to reside within a single basic block (the
paper's atomicity requirement), so block identification is the first step of
extraction.  A block is a maximal straight-line sequence of instructions with
a single entry (its first instruction) and a single exit (its last).

Leaders are: the program entry, every direct control-transfer target, and
every instruction following a control transfer.  Nops are kept inside blocks
(the rewriter's nop-padding mode relies on this) but are never mini-graph
members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..isa.instruction import Instruction
from .program import Program


@dataclass
class BasicBlock:
    """One basic block of a program.

    Attributes:
        block_id: dense index of the block in layout order.
        start_index: layout index of the first instruction.
        end_index: layout index one past the last instruction.
        start_pc: PC of the first instruction.
        instructions: the block's instructions, in order.
    """

    block_id: int
    start_index: int
    end_index: int
    start_pc: int
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of instructions in the block (including nops)."""
        return len(self.instructions)

    @property
    def useful_size(self) -> int:
        """Number of non-nop instructions in the block."""
        return sum(1 for insn in self.instructions if not insn.is_nop)

    @property
    def last_index(self) -> int:
        """Layout index of the last instruction."""
        return self.end_index - 1

    @property
    def terminator(self) -> Instruction:
        """The last instruction of the block."""
        return self.instructions[-1]

    @property
    def ends_in_control(self) -> bool:
        """True if the block ends with a control transfer."""
        return self.terminator.is_control

    def indices(self) -> range:
        """Layout indices covered by the block."""
        return range(self.start_index, self.end_index)

    def local_index(self, layout_index: int) -> int:
        """Convert a program layout index into a block-local index."""
        if not self.start_index <= layout_index < self.end_index:
            raise IndexError(f"index {layout_index} outside block {self.block_id}")
        return layout_index - self.start_index

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


def find_leaders(program: Program) -> List[int]:
    """Return the sorted list of leader layout indices of ``program``."""
    leaders = {0}
    entry_index = program.index_of(program.entry_pc)
    leaders.add(entry_index)
    for index, insn in enumerate(program.instructions):
        if insn.is_control:
            if index + 1 < len(program.instructions):
                leaders.add(index + 1)
            if insn.is_direct_control and insn.imm is not None:
                if program.contains_pc(insn.imm):
                    leaders.add(program.index_of(insn.imm))
    return sorted(leaders)


def split_basic_blocks(program: Program) -> List[BasicBlock]:
    """Split ``program`` into basic blocks in layout order."""
    leaders = find_leaders(program)
    blocks: List[BasicBlock] = []
    for block_id, start in enumerate(leaders):
        end = leaders[block_id + 1] if block_id + 1 < len(leaders) else len(program.instructions)
        blocks.append(
            BasicBlock(
                block_id=block_id,
                start_index=start,
                end_index=end,
                start_pc=program.pc_of(start),
                instructions=list(program.instructions[start:end]),
            )
        )
    return blocks


class BlockIndex:
    """Fast lookup from PC / layout index to basic block."""

    def __init__(self, program: Program) -> None:
        self._program = program
        self._blocks = split_basic_blocks(program)
        self._by_index: Dict[int, BasicBlock] = {}
        for block in self._blocks:
            for index in block.indices():
                self._by_index[index] = block

    @property
    def blocks(self) -> List[BasicBlock]:
        """All basic blocks, in layout order."""
        return self._blocks

    def block_of_index(self, layout_index: int) -> BasicBlock:
        """Return the block containing layout index ``layout_index``."""
        return self._by_index[layout_index]

    def block_of_pc(self, pc: int) -> BasicBlock:
        """Return the block containing ``pc``."""
        return self.block_of_index(self._program.index_of(pc))

    def block_by_id(self, block_id: int) -> BasicBlock:
        """Return the block with dense id ``block_id``."""
        return self._blocks[block_id]

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks)


def average_block_size(blocks: Sequence[BasicBlock]) -> float:
    """Average non-nop block size; 0.0 for an empty sequence."""
    if not blocks:
        return 0.0
    return sum(block.useful_size for block in blocks) / len(blocks)
