"""Static program model: programs, basic blocks, CFGs, profiles, rewriting."""

from .program import Program, ProgramError
from .basic_block import (
    BasicBlock,
    BlockIndex,
    average_block_size,
    find_leaders,
    split_basic_blocks,
)
from .cfg import CfgEdge, ControlFlowGraph, build_cfg
from .liveness import LivenessInfo, analyze_liveness, analyze_program_liveness
from .profile import BlockProfile, coverage_weight, profile_from_block_counts
from .rewriter import RewriteError, RewriteResult, RewriteSite, rewrite_program

__all__ = [
    "Program",
    "ProgramError",
    "BasicBlock",
    "BlockIndex",
    "average_block_size",
    "find_leaders",
    "split_basic_blocks",
    "CfgEdge",
    "ControlFlowGraph",
    "build_cfg",
    "LivenessInfo",
    "analyze_liveness",
    "analyze_program_liveness",
    "BlockProfile",
    "coverage_weight",
    "profile_from_block_counts",
    "RewriteError",
    "RewriteResult",
    "RewriteSite",
    "rewrite_program",
]
