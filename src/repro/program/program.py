"""Static program image for the MGA ISA.

A :class:`Program` is an ordered list of instructions with assigned PCs, a
label table, an initial data segment and an entry point.  It is the unit that
the functional simulator executes, that the profiler annotates, that the
mini-graph extractor analyses and that the binary rewriter transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..isa.assembler import AssembledUnit, assemble
from ..isa.instruction import INSTRUCTION_BYTES, Instruction, format_instruction


class ProgramError(ValueError):
    """Raised for malformed programs (bad entry points, dangling targets...)."""


@dataclass
class Program:
    """An executable program image.

    Attributes:
        name: human-readable program name (benchmark name).
        instructions: the text segment in layout order.
        text_base: PC of the first instruction.
        labels: code label -> PC.
        data: initial data segment, address -> 64-bit integer value.
        data_labels: data label -> base address.
        entry_label: label of the entry point (defaults to the first
            instruction).
        metadata: free-form annotations (suite name, kernel parameters, ...).
    """

    name: str
    instructions: List[Instruction]
    text_base: int = 0x1000
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)
    data_labels: Dict[str, int] = field(default_factory=dict)
    entry_label: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._resolve_targets()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_assembly(cls, name: str, source: str, *,
                      entry_label: Optional[str] = None,
                      metadata: Optional[Dict[str, object]] = None) -> "Program":
        """Assemble ``source`` and wrap it in a Program."""
        unit = assemble(source)
        return cls.from_unit(name, unit, entry_label=entry_label, metadata=metadata)

    @classmethod
    def from_unit(cls, name: str, unit: AssembledUnit, *,
                  entry_label: Optional[str] = None,
                  metadata: Optional[Dict[str, object]] = None) -> "Program":
        """Wrap an :class:`AssembledUnit` in a Program."""
        labels = {label: unit.text_base + index * INSTRUCTION_BYTES
                  for label, index in unit.labels.items()}
        return cls(
            name=name,
            instructions=list(unit.instructions),
            text_base=unit.text_base,
            labels=labels,
            data=dict(unit.data),
            data_labels=dict(unit.data_labels),
            entry_label=entry_label,
            metadata=dict(metadata or {}),
        )

    def _resolve_targets(self) -> None:
        """Fill in the ``imm`` field of direct control transfers from labels."""
        if not self.instructions:
            raise ProgramError(f"program {self.name!r} has no instructions")
        resolved: List[Instruction] = []
        for index, insn in enumerate(self.instructions):
            if insn.is_direct_control and insn.target is not None:
                if insn.target not in self.labels:
                    raise ProgramError(
                        f"{self.name}: undefined target {insn.target!r} at index {index}")
                resolved.append(insn.with_target(insn.target, self.labels[insn.target]))
            else:
                resolved.append(insn)
        self.instructions = resolved
        if self.entry_label is not None and self.entry_label not in self.labels:
            raise ProgramError(f"{self.name}: undefined entry label {self.entry_label!r}")

    # -- addressing ----------------------------------------------------------

    @property
    def entry_pc(self) -> int:
        """PC where execution starts."""
        if self.entry_label is not None:
            return self.labels[self.entry_label]
        return self.text_base

    @property
    def end_pc(self) -> int:
        """PC one past the last instruction."""
        return self.text_base + len(self.instructions) * INSTRUCTION_BYTES

    def pc_of(self, index: int) -> int:
        """PC of the instruction at layout index ``index``."""
        return self.text_base + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        """Layout index of the instruction at ``pc``.

        Raises:
            ProgramError: if ``pc`` is outside the text segment or unaligned.
        """
        offset = pc - self.text_base
        if offset < 0 or offset % INSTRUCTION_BYTES:
            raise ProgramError(f"{self.name}: bad PC {pc:#x}")
        index = offset // INSTRUCTION_BYTES
        if index >= len(self.instructions):
            raise ProgramError(f"{self.name}: PC {pc:#x} past end of text")
        return index

    def contains_pc(self, pc: int) -> bool:
        """True if ``pc`` addresses an instruction of this program."""
        offset = pc - self.text_base
        return (offset >= 0 and offset % INSTRUCTION_BYTES == 0
                and offset // INSTRUCTION_BYTES < len(self.instructions))

    def at(self, pc: int) -> Instruction:
        """Return the instruction at ``pc``."""
        return self.instructions[self.index_of(pc)]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def iter_with_pc(self) -> Iterator[tuple[int, Instruction]]:
        """Yield ``(pc, instruction)`` pairs in layout order."""
        for index, insn in enumerate(self.instructions):
            yield self.pc_of(index), insn

    # -- queries -------------------------------------------------------------

    def label_at(self, pc: int) -> Optional[str]:
        """Return a label attached to ``pc`` if one exists."""
        for label, label_pc in self.labels.items():
            if label_pc == pc:
                return label
        return None

    def static_counts(self) -> Dict[str, int]:
        """Count static instructions by opcode (nops included)."""
        counts: Dict[str, int] = {}
        for insn in self.instructions:
            counts[insn.op] = counts.get(insn.op, 0) + 1
        return counts

    def handle_count(self) -> int:
        """Number of static mini-graph handles in the program."""
        return sum(1 for insn in self.instructions if insn.is_handle)

    # -- transformation ------------------------------------------------------

    def with_instructions(self, instructions: List[Instruction], *,
                          name: Optional[str] = None,
                          labels: Optional[Dict[str, int]] = None,
                          metadata: Optional[Dict[str, object]] = None) -> "Program":
        """Return a copy with a replaced text segment (used by the rewriter)."""
        return Program(
            name=name or self.name,
            instructions=list(instructions),
            text_base=self.text_base,
            labels=dict(labels if labels is not None else self.labels),
            data=dict(self.data),
            data_labels=dict(self.data_labels),
            entry_label=self.entry_label,
            metadata=dict(metadata if metadata is not None else self.metadata),
        )

    # -- formatting ----------------------------------------------------------

    def disassemble(self) -> str:
        """Render the program as annotated assembly text."""
        pc_to_label = {pc: label for label, pc in self.labels.items()}
        lines = []
        for pc, insn in self.iter_with_pc():
            if pc in pc_to_label:
                lines.append(f"{pc_to_label[pc]}:")
            lines.append(f"  {pc:#08x}: {format_instruction(insn)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (f"Program(name={self.name!r}, instructions={len(self.instructions)}, "
                f"entry={self.entry_pc:#x})")
