"""Global register liveness analysis.

Mini-graph extraction must distinguish *interface* values (which need a
physical register) from *interior* values (transient, living only in the
bypass network).  A member instruction's result is interior only if nothing
outside the mini-graph ever reads it, which requires knowing which registers
are live at the end of each basic block — a classic backward dataflow
problem solved here over the program CFG.

The analysis is conservative in the usual ways:

* blocks that end in calls, indirect jumps or halts are assumed to have every
  register live-out (the callee or unknown successor may read anything);
* the hardwired zero registers are never live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..isa.opcodes import OpClass
from ..isa.registers import NUM_ARCH_REGS, is_zero_reg
from .basic_block import BasicBlock
from .cfg import ControlFlowGraph
from .program import Program

#: Register set used when control leaves the analysed program (conservative).
ALL_REGISTERS: FrozenSet[int] = frozenset(
    reg for reg in range(NUM_ARCH_REGS) if not is_zero_reg(reg)
)


@dataclass
class LivenessInfo:
    """Result of liveness analysis for one program.

    Attributes:
        live_in: block id -> registers live at block entry.
        live_out: block id -> registers live at block exit.
    """

    live_in: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    live_out: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    def live_after(self, block: BasicBlock, local_index: int) -> Set[int]:
        """Registers live immediately *after* the instruction at ``local_index``.

        Computed by walking backward from the block exit; cost is linear in
        the block length, which is fine for the block sizes we deal with.
        """
        live = set(self.live_out.get(block.block_id, frozenset()))
        for position in range(len(block.instructions) - 1, local_index, -1):
            insn = block.instructions[position]
            dest = insn.destination_register()
            if dest is not None:
                live.discard(dest)
            live.update(insn.source_registers())
        return live


def _block_gen_kill(block: BasicBlock) -> tuple[Set[int], Set[int]]:
    """Return (gen, kill): registers read before written / written in block."""
    gen: Set[int] = set()
    kill: Set[int] = set()
    for insn in block.instructions:
        for src in insn.source_registers():
            if src not in kill:
                gen.add(src)
        dest = insn.destination_register()
        if dest is not None:
            kill.add(dest)
    return gen, kill


def _is_escaping_block(block: BasicBlock) -> bool:
    """True if the block's successors are not fully known statically."""
    terminator = block.terminator
    return terminator.spec.op_class in (OpClass.CALL, OpClass.INDIRECT)


def _is_terminating_block(block: BasicBlock) -> bool:
    """True if execution stops at the end of the block (nothing reads registers)."""
    return block.terminator.spec.op_class is OpClass.HALT


def analyze_liveness(cfg: ControlFlowGraph) -> LivenessInfo:
    """Run iterative backward liveness analysis over ``cfg``."""
    blocks = cfg.block_index.blocks
    gen_kill = {block.block_id: _block_gen_kill(block) for block in blocks}
    live_in: Dict[int, Set[int]] = {block.block_id: set() for block in blocks}
    live_out: Dict[int, Set[int]] = {block.block_id: set() for block in blocks}

    changed = True
    while changed:
        changed = False
        # Reverse layout order converges quickly for mostly-forward CFGs.
        for block in reversed(blocks):
            block_id = block.block_id
            if _is_terminating_block(block):
                out_set: Set[int] = set()
            elif _is_escaping_block(block):
                out_set = set(ALL_REGISTERS)
            else:
                out_set = set()
                for successor in cfg.successors(block_id):
                    out_set |= live_in[successor]
                # A block with no successors at all (e.g. trailing padding)
                # is treated conservatively.
                if not cfg.successors(block_id):
                    out_set = set(ALL_REGISTERS)
            gen, kill = gen_kill[block_id]
            in_set = gen | (out_set - kill)
            if out_set != live_out[block_id] or in_set != live_in[block_id]:
                live_out[block_id] = out_set
                live_in[block_id] = in_set
                changed = True

    return LivenessInfo(
        live_in={bid: frozenset(regs) for bid, regs in live_in.items()},
        live_out={bid: frozenset(regs) for bid, regs in live_out.items()},
    )


def analyze_program_liveness(program: Program) -> LivenessInfo:
    """Convenience wrapper building the CFG and running liveness on it."""
    return analyze_liveness(ControlFlowGraph(program))
