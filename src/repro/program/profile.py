"""Basic-block frequency profiles.

The paper's mini-graph selection algorithm ranks candidates by estimated
coverage ``(n - 1) * f`` where ``f`` is the execution frequency of the
enclosing basic block, derived from a basic-block frequency profile.  This
module defines that profile and the helpers to produce one from a functional
simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from .basic_block import BasicBlock, BlockIndex
from .program import Program


@dataclass
class BlockProfile:
    """Execution-frequency profile of a program at basic-block granularity.

    Attributes:
        program_name: name of the profiled program.
        counts: block id -> number of times the block was entered.
        dynamic_instructions: total committed (non-nop) instructions observed.
        input_name: which input set produced this profile (for the
            robustness study).
    """

    program_name: str
    counts: Dict[int, int] = field(default_factory=dict)
    dynamic_instructions: int = 0
    input_name: str = "reference"

    def frequency(self, block_id: int) -> int:
        """Execution count of block ``block_id`` (0 if never executed)."""
        return self.counts.get(block_id, 0)

    def record_block(self, block_id: int, useful_size: int, times: int = 1) -> None:
        """Record ``times`` executions of a block with ``useful_size`` instructions."""
        self.counts[block_id] = self.counts.get(block_id, 0) + times
        self.dynamic_instructions += useful_size * times

    def executed_blocks(self) -> list[int]:
        """Block ids with a non-zero count."""
        return sorted(block_id for block_id, count in self.counts.items() if count > 0)

    def total_block_entries(self) -> int:
        """Total number of block entries recorded."""
        return sum(self.counts.values())

    def hottest_blocks(self, limit: int = 10) -> list[tuple[int, int]]:
        """The ``limit`` most frequently executed blocks as (id, count) pairs."""
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    def merge(self, other: "BlockProfile") -> "BlockProfile":
        """Return a new profile combining this one with ``other``.

        Profiles may only be merged for the same program; merging profiles
        from multiple inputs is the paper's suggested fix for input-sensitive
        selection.
        """
        if other.program_name != self.program_name:
            raise ValueError(
                f"cannot merge profiles of {self.program_name!r} and {other.program_name!r}")
        merged = BlockProfile(
            program_name=self.program_name,
            counts=dict(self.counts),
            dynamic_instructions=self.dynamic_instructions + other.dynamic_instructions,
            input_name=f"{self.input_name}+{other.input_name}",
        )
        for block_id, count in other.counts.items():
            merged.counts[block_id] = merged.counts.get(block_id, 0) + count
        return merged

    def scaled(self, factor: float) -> "BlockProfile":
        """Return a copy with all counts scaled by ``factor`` (rounded)."""
        return BlockProfile(
            program_name=self.program_name,
            counts={block_id: int(round(count * factor))
                    for block_id, count in self.counts.items()},
            dynamic_instructions=int(round(self.dynamic_instructions * factor)),
            input_name=f"{self.input_name}*{factor:g}",
        )


def profile_from_block_counts(program: Program, block_counts: Mapping[int, int],
                              input_name: str = "reference") -> BlockProfile:
    """Build a :class:`BlockProfile` from raw per-block entry counts."""
    index = BlockIndex(program)
    profile = BlockProfile(program_name=program.name, input_name=input_name)
    for block_id, count in block_counts.items():
        block = index.block_by_id(block_id)
        profile.record_block(block_id, block.useful_size, count)
    return profile


def coverage_weight(block: BasicBlock, profile: BlockProfile, graph_size: int) -> int:
    """The paper's benefit function: ``(n - 1) * f`` for one candidate."""
    if graph_size < 2:
        return 0
    return (graph_size - 1) * profile.frequency(block.block_id)
