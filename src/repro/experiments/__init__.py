"""Experiment harnesses: one module per figure of the paper's evaluation."""

from .runner import BaselineArtifacts, ExperimentRunner, MiniGraphArtifacts
from .reporting import (
    ResultTable,
    arithmetic_mean,
    comparison_line,
    format_percent,
    geometric_mean,
)
from .fig5_coverage import (
    CoverageExperimentResult,
    Figure5Result,
    run_coverage_panel,
    run_domain_panel,
    run_figure5,
)
from .fig6_performance import FIGURE6_CONFIGS, Figure6Result, run_figure6
from .fig7_serialization import (
    FIGURE7_BENCHMARKS,
    BestPolicyResult,
    Figure7Result,
    run_best_policy,
    run_figure7,
)
from .fig8_amplification import (
    FIGURE8_BANDWIDTH_VARIANTS,
    FIGURE8_MODES,
    FIGURE8_REGISTER_SIZES,
    Figure8Result,
    run_bandwidth_panel,
    run_figure8,
    run_register_panel,
)
from .extras import (
    ICacheEffectResult,
    RobustnessResult,
    run_icache_effect,
    run_robustness,
)

__all__ = [
    "BaselineArtifacts",
    "ExperimentRunner",
    "MiniGraphArtifacts",
    "ResultTable",
    "arithmetic_mean",
    "comparison_line",
    "format_percent",
    "geometric_mean",
    "CoverageExperimentResult",
    "Figure5Result",
    "run_coverage_panel",
    "run_domain_panel",
    "run_figure5",
    "FIGURE6_CONFIGS",
    "Figure6Result",
    "run_figure6",
    "FIGURE7_BENCHMARKS",
    "BestPolicyResult",
    "Figure7Result",
    "run_best_policy",
    "run_figure7",
    "FIGURE8_BANDWIDTH_VARIANTS",
    "FIGURE8_MODES",
    "FIGURE8_REGISTER_SIZES",
    "Figure8Result",
    "run_bandwidth_panel",
    "run_figure8",
    "run_register_panel",
    "ICacheEffectResult",
    "RobustnessResult",
    "run_icache_effect",
    "run_robustness",
]
