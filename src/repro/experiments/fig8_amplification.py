"""Experiments E7 and E8: resource amplification as simplification (Figure 8).

The top panel shrinks the physical register file (164 -> 144 -> 124 -> 104
registers) and shows that mini-graphs compensate for much of the loss.  The
bottom panel reduces pipeline bandwidth (4-wide, 4-wide with 6 execution
units) and pipelines the scheduler (2-cycle wake-up/select), again measuring
how much of the loss mini-graphs recover.  All values are reported relative
to the full 6-wide baseline with 164 registers and a single-cycle scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY, SelectionPolicy
from ..uarch.config import (
    MachineConfig,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from ..workloads import REGISTRY
from .reporting import ResultTable
from .runner import ExperimentRunner

#: Register-file sizes swept by the top panel.
FIGURE8_REGISTER_SIZES = (164, 144, 124, 104)

#: Bandwidth/scheduler variants of the bottom panel.
FIGURE8_BANDWIDTH_VARIANTS = ("6-wide", "4-wide", "4-wide+6-exec", "2-cycle-sched")

#: Machine flavours compared in every Figure 8 group.
FIGURE8_MODES = ("baseline", "int", "int-mem")


def _mode_machines(base: MachineConfig) -> Dict[str, Tuple[Optional[SelectionPolicy], MachineConfig]]:
    """Map each Figure 8 mode to (policy, machine) derived from ``base``."""
    integer_machine = base.with_minigraph_alu_pipelines(2)
    memory_machine = integer_machine.with_sliding_window()
    return {
        "baseline": (None, base),
        "int": (INTEGER_POLICY, integer_machine),
        "int-mem": (DEFAULT_POLICY, memory_machine),
    }


@dataclass
class Figure8Result:
    """Both panels of Figure 8."""

    register_table: ResultTable
    bandwidth_table: ResultTable

    def render(self) -> str:
        return self.register_table.render() + "\n\n" + self.bandwidth_table.render()


def _relative_performance(runner: ExperimentRunner, benchmark: str,
                          policy: Optional[SelectionPolicy], machine: MachineConfig,
                          reference: MachineConfig) -> float:
    reference_stats = runner.run_baseline(benchmark, reference)
    if policy is None:
        stats = runner.run_baseline(benchmark, machine)
    else:
        stats = runner.run_minigraph(benchmark, policy, machine)
    if reference_stats.ipc == 0.0:
        return 1.0
    return stats.ipc / reference_stats.ipc


def run_register_panel(runner: ExperimentRunner, *,
                       benchmarks: Optional[Sequence[str]] = None,
                       register_sizes: Sequence[int] = FIGURE8_REGISTER_SIZES,
                       modes: Sequence[str] = FIGURE8_MODES) -> ResultTable:
    """Figure 8 top: shrinking the physical register file."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    reference = baseline_config()
    table = ResultTable(
        title="Figure 8 (top): performance vs physical register file size "
              "(relative to the 164-register baseline)",
        columns=[])
    for name in names:
        suite = REGISTRY.get(name).suite
        for registers in register_sizes:
            base = baseline_config().with_physical_registers(registers)
            machines = _mode_machines(base)
            for mode in modes:
                policy, machine = machines[mode]
                column = f"{mode}@{registers}"
                table.add(name, column,
                          _relative_performance(runner, name, policy, machine, reference),
                          suite=suite)
    table.notes.append("164 registers = 64 architected + 100 in-flight (the baseline)")
    return table


def run_bandwidth_panel(runner: ExperimentRunner, *,
                        benchmarks: Optional[Sequence[str]] = None,
                        variants: Sequence[str] = FIGURE8_BANDWIDTH_VARIANTS,
                        modes: Sequence[str] = FIGURE8_MODES) -> ResultTable:
    """Figure 8 bottom: narrower pipelines and a pipelined scheduler."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    reference = baseline_config()
    variant_bases: Dict[str, MachineConfig] = {
        "6-wide": baseline_config(),
        "4-wide": baseline_config().with_width(4, execute_width=4, load_ports=1),
        "4-wide+6-exec": baseline_config().with_width(4, execute_width=6, load_ports=2),
        "2-cycle-sched": baseline_config().with_scheduler_latency(2),
    }
    table = ResultTable(
        title="Figure 8 (bottom): reduced bandwidth and pipelined scheduler "
              "(relative to the 6-wide, 1-cycle-scheduler baseline)",
        columns=[])
    for name in names:
        suite = REGISTRY.get(name).suite
        for variant in variants:
            base = variant_bases[variant]
            machines = _mode_machines(base)
            for mode in modes:
                policy, machine = machines[mode]
                column = f"{mode}@{variant}"
                table.add(name, column,
                          _relative_performance(runner, name, policy, machine, reference),
                          suite=suite)
    table.notes.append("the 4-wide machine fetches/renames/retires 4 per cycle; "
                       "4-wide+6-exec keeps six execution units and two load ports")
    return table


def run_figure8(runner: ExperimentRunner, *,
                benchmarks: Optional[Sequence[str]] = None,
                register_sizes: Sequence[int] = FIGURE8_REGISTER_SIZES,
                variants: Sequence[str] = FIGURE8_BANDWIDTH_VARIANTS) -> Figure8Result:
    """Run both Figure 8 panels."""
    return Figure8Result(
        register_table=run_register_panel(runner, benchmarks=benchmarks,
                                          register_sizes=register_sizes),
        bandwidth_table=run_bandwidth_panel(runner, benchmarks=benchmarks,
                                            variants=variants),
    )
