"""Experiments E7 and E8: resource amplification as simplification (Figure 8).

The top panel shrinks the physical register file (164 -> 144 -> 124 -> 104
registers) and shows that mini-graphs compensate for much of the loss.  The
bottom panel reduces pipeline bandwidth (4-wide, 4-wide with 6 execution
units) and pipelines the scheduler (2-cycle wake-up/select), again measuring
how much of the loss mini-graphs recover.  All values are reported relative
to the full 6-wide baseline with 164 registers and a single-cycle scheduler.

Both panels are one declarative grid (benchmark × variant × mode, see
:func:`figure8_grid`) registered in the grid catalog as ``fig8`` — register
variants are labelled ``prf164`` … ``prf104``, bandwidth variants keep their
names — so the whole figure is reproducible as ``repro grid --name fig8``;
:func:`run_figure8` runs the same grid serially and splits the rows back
into the two panel tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..grid.catalog import GridDefinition, register_grid
from ..grid.engine import GridRow
from ..grid.spec import Axis, GridSpec
from ..api.spec import RunSpec
from ..minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY, SelectionPolicy
from ..uarch.catalog import MACHINE_CATALOG, machine_config
from ..uarch.config import MachineConfig, baseline_config
from ..workloads import REGISTRY
from .reporting import ResultTable
from .runner import ExperimentRunner

#: Register-file sizes swept by the top panel.
FIGURE8_REGISTER_SIZES = (164, 144, 124, 104)

#: Bandwidth/scheduler variants of the bottom panel.
FIGURE8_BANDWIDTH_VARIANTS = ("6-wide", "4-wide", "4-wide+6-exec", "2-cycle-sched")

#: Machine flavours compared in every Figure 8 group.
FIGURE8_MODES = ("baseline", "int", "int-mem")


def _mode_machines(base: MachineConfig) -> Dict[str, Tuple[Optional[SelectionPolicy], MachineConfig]]:
    """Map each Figure 8 mode to (policy, machine) derived from ``base``."""
    integer_machine = base.with_minigraph_alu_pipelines(2)
    memory_machine = integer_machine.with_sliding_window()
    return {
        "baseline": (None, base),
        "int": (INTEGER_POLICY, integer_machine),
        "int-mem": (DEFAULT_POLICY, memory_machine),
    }


def _variant_base(variant: str) -> MachineConfig:
    """The reduced-resource base machine of one Figure 8 variant label.

    Labels resolve through the machine catalog (one source of truth for the
    Section 6 parameters); ``prf<N>`` sizes outside the catalog's swept set
    are derived from the baseline directly so custom register sweeps work.
    """
    if variant.startswith("prf") and variant not in MACHINE_CATALOG:
        return baseline_config().with_physical_registers(int(variant[3:]))
    return machine_config(variant)


@dataclass
class Figure8Result:
    """Both panels of Figure 8."""

    register_table: ResultTable
    bandwidth_table: ResultTable

    def render(self) -> str:
        return self.register_table.render() + "\n\n" + self.bandwidth_table.render()


def figure8_grid(*, benchmarks: Sequence[str], budget: int,
                 input_name: str = "reference",
                 register_sizes: Sequence[int] = FIGURE8_REGISTER_SIZES,
                 variants: Sequence[str] = FIGURE8_BANDWIDTH_VARIANTS,
                 modes: Sequence[str] = FIGURE8_MODES) -> GridSpec:
    """Both Figure 8 panels as one grid: benchmark × variant × mode.

    ``register_sizes`` become ``prf<N>`` variant labels ahead of the
    bandwidth variants; every cell is measured against the shared full
    6-wide reference machine.  Passing an empty ``register_sizes`` or
    ``variants`` restricts the grid to one panel.
    """
    variant_labels = tuple(f"prf{size}" for size in register_sizes) \
        + tuple(variants)
    axes = (Axis("benchmark", tuple(benchmarks)),
            Axis("variant", variant_labels),
            Axis("mode", tuple(modes)))

    def build(point) -> RunSpec:
        policy, machine = _mode_machines(
            _variant_base(point["variant"]))[point["mode"]]
        return RunSpec(
            benchmark=point["benchmark"],
            input_name=input_name,
            budget=budget,
            policy=policy,
            machine=machine,
            baseline_machine=baseline_config(),
        )

    return GridSpec(name="fig8", axes=axes, build=build,
                    title="Figure 8: reduced-resource machines vs the full baseline")


def _relative(row: GridRow) -> float:
    """Relative performance with the panel's historical zero-baseline
    convention (1.0, not NaN, when the reference retired nothing)."""
    if row.baseline_ipc == 0.0:
        return 1.0
    return row.ipc / row.baseline_ipc


def register_table_from_rows(rows: Iterable[GridRow]) -> ResultTable:
    """Fold register-panel rows (``prf*`` variants) into the top table."""
    table = ResultTable(
        title="Figure 8 (top): performance vs physical register file size "
              "(relative to the 164-register baseline)",
        columns=[])
    for row in rows:
        registers = row.labels["variant"][3:]
        table.add(row.benchmark, f"{row.labels['mode']}@{registers}",
                  _relative(row), suite=REGISTRY.get(row.benchmark).suite)
    table.notes.append("164 registers = 64 architected + 100 in-flight (the baseline)")
    return table


def bandwidth_table_from_rows(rows: Iterable[GridRow]) -> ResultTable:
    """Fold bandwidth-panel rows into the bottom table."""
    table = ResultTable(
        title="Figure 8 (bottom): reduced bandwidth and pipelined scheduler "
              "(relative to the 6-wide, 1-cycle-scheduler baseline)",
        columns=[])
    for row in rows:
        table.add(row.benchmark, f"{row.labels['mode']}@{row.labels['variant']}",
                  _relative(row), suite=REGISTRY.get(row.benchmark).suite)
    table.notes.append("the 4-wide machine fetches/renames/retires 4 per cycle; "
                       "4-wide+6-exec keeps six execution units and two load ports")
    return table


def run_register_panel(runner: ExperimentRunner, *,
                       benchmarks: Optional[Sequence[str]] = None,
                       register_sizes: Sequence[int] = FIGURE8_REGISTER_SIZES,
                       modes: Sequence[str] = FIGURE8_MODES) -> ResultTable:
    """Figure 8 top: shrinking the physical register file."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    grid = figure8_grid(benchmarks=names, budget=runner.budget,
                        input_name=runner.input_name,
                        register_sizes=register_sizes, variants=(),
                        modes=modes)
    return register_table_from_rows(runner.session.run_grid(grid, workers=0))


def run_bandwidth_panel(runner: ExperimentRunner, *,
                        benchmarks: Optional[Sequence[str]] = None,
                        variants: Sequence[str] = FIGURE8_BANDWIDTH_VARIANTS,
                        modes: Sequence[str] = FIGURE8_MODES) -> ResultTable:
    """Figure 8 bottom: narrower pipelines and a pipelined scheduler."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    grid = figure8_grid(benchmarks=names, budget=runner.budget,
                        input_name=runner.input_name,
                        register_sizes=(), variants=variants, modes=modes)
    return bandwidth_table_from_rows(runner.session.run_grid(grid, workers=0))


def run_figure8(runner: ExperimentRunner, *,
                benchmarks: Optional[Sequence[str]] = None,
                register_sizes: Sequence[int] = FIGURE8_REGISTER_SIZES,
                variants: Sequence[str] = FIGURE8_BANDWIDTH_VARIANTS) -> Figure8Result:
    """Run both Figure 8 panels."""
    return Figure8Result(
        register_table=run_register_panel(runner, benchmarks=benchmarks,
                                          register_sizes=register_sizes),
        bandwidth_table=run_bandwidth_panel(runner, benchmarks=benchmarks,
                                            variants=variants),
    )


def figure8_result(rows: Iterable[GridRow]) -> Figure8Result:
    """Split combined-grid rows back into the two panel tables."""
    materialized = list(rows)
    register_rows = [row for row in materialized
                     if row.labels["variant"].startswith("prf")]
    bandwidth_rows = [row for row in materialized
                      if not row.labels["variant"].startswith("prf")]
    return Figure8Result(
        register_table=register_table_from_rows(register_rows),
        bandwidth_table=bandwidth_table_from_rows(bandwidth_rows))


def _figure8_report(rows: List[GridRow]):
    result = figure8_result(rows)
    return result.render(), [result.register_table, result.bandwidth_table]


register_grid(GridDefinition(
    name="fig8",
    description="Figure 8: benchmark × resource variant × mode vs full baseline",
    factory=figure8_grid,
    report=_figure8_report,
))
