"""Experiment E5: mini-graph performance relative to the baseline (Figure 6).

Four mini-graph machine configurations are compared against the 6-wide
baseline for every benchmark:

* ``int``           — integer mini-graphs executing on 4-stage ALU pipelines;
* ``int+collapse``  — the same with pair-wise collapsing ALU pipelines;
* ``int-mem``           — integer-memory mini-graphs with a sliding-window scheduler;
* ``int-mem+collapse``  — the same with pair-wise collapsing ALU pipelines.

Baseline IPCs are recorded alongside, as the figure prints them under each
benchmark.

The figure is a declarative grid (benchmark × config, see
:func:`figure6_grid`) registered in the grid catalog as ``fig6``, so it is
reproducible as ``repro grid --name fig6`` — sharded, resumable, streaming —
and :func:`run_figure6` is a thin harness that runs the same grid serially
and folds the rows into the figure's table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..grid.catalog import GridDefinition, register_grid
from ..grid.engine import GridRow
from ..grid.spec import Axis, GridSpec
from ..api.spec import RunSpec
from ..minigraph.mgt import MgtBuildOptions
from ..minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY
from ..uarch.config import (
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from ..workloads import REGISTRY
from .reporting import ResultTable
from .runner import ExperimentRunner

#: Column labels, in the order the paper's figure stacks them.
FIGURE6_CONFIGS = ("int", "int+collapse", "int-mem", "int-mem+collapse")


@dataclass
class Figure6Result:
    """Relative-performance table plus the baseline IPCs."""

    table: ResultTable
    baseline_ipc: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [self.table.render()]
        lines.append("")
        lines.append("baseline IPCs:")
        for name in sorted(self.baseline_ipc):
            lines.append(f"  {name:20s} {self.baseline_ipc[name]:5.2f}")
        return "\n".join(lines)


def figure6_grid(*, benchmarks: Sequence[str], budget: int,
                 input_name: str = "reference",
                 configs: Sequence[str] = FIGURE6_CONFIGS) -> GridSpec:
    """The Figure 6 sweep as a declarative grid: benchmark × config.

    Each config name resolves to its (policy, machine) pair — the machine
    catalog's Figure 6 entries — and every cell measures that machine
    against the shared 6-wide baseline.
    """
    axes = (Axis("benchmark", tuple(benchmarks)),
            Axis("config", tuple(configs)))

    def build(point) -> RunSpec:
        config_name = point["config"]
        collapsing = config_name.endswith("+collapse")
        if config_name.startswith("int-mem"):
            policy = DEFAULT_POLICY
            machine = integer_memory_minigraph_config(collapsing=collapsing)
        else:
            policy = INTEGER_POLICY
            machine = integer_minigraph_config(collapsing=collapsing)
        return RunSpec(
            benchmark=point["benchmark"],
            input_name=input_name,
            budget=budget,
            policy=policy,
            machine=machine,
            baseline_machine=baseline_config(),
            mgt_options=MgtBuildOptions(collapsing=collapsing),
        )

    return GridSpec(name="fig6", axes=axes, build=build,
                    title="Figure 6: mini-graph machines vs the 6-wide baseline")


def figure6_result(rows: Iterable[GridRow]) -> Figure6Result:
    """Fold streamed grid rows into the Figure 6 table (cell order in)."""
    table = ResultTable(
        title="Figure 6: performance relative to the 6-wide baseline",
        columns=[])
    result = Figure6Result(table=table)
    for row in rows:
        name = row.benchmark
        result.baseline_ipc.setdefault(name, row.baseline_ipc)
        table.add(name, row.labels["config"], row.speedup,
                  suite=REGISTRY.get(name).suite)
    table.notes.append("values are IPC relative to the baseline (1.0 = no change)")
    return result


def run_figure6(runner: ExperimentRunner, *,
                benchmarks: Optional[Sequence[str]] = None,
                configs: Sequence[str] = FIGURE6_CONFIGS) -> Figure6Result:
    """Run the Figure 6 performance comparison (serially, via the grid)."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    grid = figure6_grid(benchmarks=names, budget=runner.budget,
                        input_name=runner.input_name, configs=configs)
    rows = runner.session.run_grid(grid, workers=0)
    return figure6_result(rows)


def _figure6_report(rows: List[GridRow]):
    result = figure6_result(rows)
    return result.render(), [result.table]


register_grid(GridDefinition(
    name="fig6",
    description="Figure 6: benchmark × mini-graph machine config vs baseline",
    factory=figure6_grid,
    report=_figure6_report,
))
