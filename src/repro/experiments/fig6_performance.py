"""Experiment E5: mini-graph performance relative to the baseline (Figure 6).

Four mini-graph machine configurations are compared against the 6-wide
baseline for every benchmark:

* ``int``           — integer mini-graphs executing on 4-stage ALU pipelines;
* ``int+collapse``  — the same with pair-wise collapsing ALU pipelines;
* ``int-mem``           — integer-memory mini-graphs with a sliding-window scheduler;
* ``int-mem+collapse``  — the same with pair-wise collapsing ALU pipelines.

Baseline IPCs are recorded alongside, as the figure prints them under each
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY
from ..uarch.config import (
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from ..workloads import REGISTRY
from .reporting import ResultTable
from .runner import ExperimentRunner

#: Column labels, in the order the paper's figure stacks them.
FIGURE6_CONFIGS = ("int", "int+collapse", "int-mem", "int-mem+collapse")


@dataclass
class Figure6Result:
    """Relative-performance table plus the baseline IPCs."""

    table: ResultTable
    baseline_ipc: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [self.table.render()]
        lines.append("")
        lines.append("baseline IPCs:")
        for name in sorted(self.baseline_ipc):
            lines.append(f"  {name:20s} {self.baseline_ipc[name]:5.2f}")
        return "\n".join(lines)


def run_figure6(runner: ExperimentRunner, *,
                benchmarks: Optional[Sequence[str]] = None,
                configs: Sequence[str] = FIGURE6_CONFIGS) -> Figure6Result:
    """Run the Figure 6 performance comparison."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    base = baseline_config()
    table = ResultTable(
        title="Figure 6: performance relative to the 6-wide baseline",
        columns=list(configs))
    result = Figure6Result(table=table)

    for name in names:
        suite = REGISTRY.get(name).suite
        baseline_stats = runner.run_baseline(name, base)
        result.baseline_ipc[name] = baseline_stats.ipc
        for config_name in configs:
            collapsing = config_name.endswith("+collapse")
            if config_name.startswith("int-mem"):
                policy = DEFAULT_POLICY
                machine = integer_memory_minigraph_config(collapsing=collapsing)
            else:
                policy = INTEGER_POLICY
                machine = integer_minigraph_config(collapsing=collapsing)
            speedup = runner.speedup(name, policy, machine, baseline_config=base,
                                     collapsing=collapsing)
            table.add(name, config_name, speedup, suite=suite)
    table.notes.append("values are IPC relative to the baseline (1.0 = no change)")
    return result
