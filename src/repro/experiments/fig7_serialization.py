"""Experiments E6 and E10: serialization effects (Figure 7) and best-policy gains.

Figure 7 isolates the cost of the two serialization effects and of
load-induced replays by re-running mini-graph selection with progressively
more restrictive policies:

* integer mini-graphs: unrestricted, minus externally serial graphs, minus
  internally serial (i.e. internally parallel) graphs, minus both;
* integer-memory mini-graphs: unrestricted, minus both serialization forms,
  and additionally minus replay-vulnerable (interior-load) graphs.

The best-policy experiment (Section 6.2's closing paragraph) picks, per
benchmark, whichever policy gives the highest speedup and reports the
resulting per-suite averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY, SelectionPolicy
from ..uarch.config import (
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from ..workloads import REGISTRY
from .reporting import ResultTable, geometric_mean
from .runner import ExperimentRunner

#: The benchmarks Figure 7 highlights (our closest stand-ins).
FIGURE7_BENCHMARKS = ("gsm.untoast", "mpeg2.decode", "reed.encode", "mcf", "sha",
                      "adpcm.encode")

#: (column label, base policy name, policy transform) for each Figure 7 bar.
_INTEGER_VARIANTS: Sequence[Tuple[str, SelectionPolicy]] = (
    ("int", INTEGER_POLICY),
    ("int-noext", INTEGER_POLICY.without_external_serialization()),
    ("int-noint", INTEGER_POLICY.without_internal_serialization()),
    ("int-noserial", INTEGER_POLICY.without_external_serialization()
                                   .without_internal_serialization()),
)

_MEMORY_VARIANTS: Sequence[Tuple[str, SelectionPolicy]] = (
    ("int-mem", DEFAULT_POLICY),
    ("int-mem-noserial", DEFAULT_POLICY.without_external_serialization()
                                        .without_internal_serialization()),
    ("int-mem-noserial-noreplay", DEFAULT_POLICY.without_external_serialization()
                                                 .without_internal_serialization()
                                                 .without_replay_vulnerable()),
)


@dataclass
class Figure7Result:
    """Relative performance for every policy variant."""

    table: ResultTable

    def render(self) -> str:
        return self.table.render()


def run_figure7(runner: ExperimentRunner, *,
                benchmarks: Optional[Sequence[str]] = None) -> Figure7Result:
    """Run the Figure 7 serialization study."""
    names = list(benchmarks) if benchmarks is not None else list(FIGURE7_BENCHMARKS)
    base = baseline_config()
    table = ResultTable(
        title="Figure 7: serialization and replay effects (relative performance)",
        columns=[label for label, _ in _INTEGER_VARIANTS]
        + [label for label, _ in _MEMORY_VARIANTS])

    for name in names:
        suite = REGISTRY.get(name).suite
        for label, policy in _INTEGER_VARIANTS:
            machine = integer_minigraph_config()
            table.add(name, label,
                      runner.speedup(name, policy, machine, baseline_config=base),
                      suite=suite)
        for label, policy in _MEMORY_VARIANTS:
            machine = integer_memory_minigraph_config()
            table.add(name, label,
                      runner.speedup(name, policy, machine, baseline_config=base),
                      suite=suite)
    table.notes.append("restrictive policies trade coverage for fewer serialization/replay losses")
    return Figure7Result(table=table)


@dataclass
class BestPolicyResult:
    """Per-benchmark best policy and the resulting per-suite average gains."""

    best_policy: Dict[str, str]
    best_speedup: Dict[str, float]
    suite_gmean: Dict[str, float]

    def render(self) -> str:
        lines = ["Best selection policy per benchmark (Section 6.2)"]
        for name in sorted(self.best_policy):
            lines.append(f"  {name:20s} {self.best_policy[name]:28s} "
                         f"{(self.best_speedup[name] - 1.0) * 100.0:+.1f}%")
        lines.append("per-suite gmean with the best policy per benchmark:")
        for suite, value in self.suite_gmean.items():
            lines.append(f"  {suite:10s} {(value - 1.0) * 100.0:+.1f}%")
        return "\n".join(lines)


def run_best_policy(runner: ExperimentRunner, *,
                    benchmarks: Optional[Sequence[str]] = None) -> BestPolicyResult:
    """Pick the best serialization/replay policy per benchmark (E10)."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    base = baseline_config()
    best_policy: Dict[str, str] = {}
    best_speedup: Dict[str, float] = {}
    per_suite: Dict[str, List[float]] = {}

    for name in names:
        suite = REGISTRY.get(name).suite
        candidates: List[Tuple[str, float]] = []
        for label, policy in _INTEGER_VARIANTS:
            machine = integer_minigraph_config()
            candidates.append((label, runner.speedup(name, policy, machine,
                                                     baseline_config=base)))
        for label, policy in _MEMORY_VARIANTS:
            machine = integer_memory_minigraph_config()
            candidates.append((label, runner.speedup(name, policy, machine,
                                                     baseline_config=base)))
        label, value = max(candidates, key=lambda item: item[1])
        best_policy[name] = label
        best_speedup[name] = value
        per_suite.setdefault(suite, []).append(value)

    return BestPolicyResult(
        best_policy=best_policy,
        best_speedup=best_speedup,
        suite_gmean={suite: geometric_mean(values) for suite, values in per_suite.items()},
    )
