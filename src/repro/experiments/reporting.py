"""Result tables, means and text rendering shared by the experiment harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..workloads import SUITE_NAMES, SUITE_TITLES


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper reports gmeans of relative performance)."""
    filtered = [value for value in values if value > 0.0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(value) for value in filtered) / len(filtered))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass
class ResultTable:
    """A rectangular result table: rows are benchmarks, columns are configurations."""

    title: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    row_suites: Dict[str, str] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add(self, row: str, column: str, value: float, *, suite: Optional[str] = None) -> None:
        """Record one cell; unknown columns are appended in encounter order."""
        if column not in self.columns:
            self.columns.append(column)
        self.rows.setdefault(row, {})[column] = value
        if suite is not None:
            self.row_suites[row] = suite

    def value(self, row: str, column: str) -> float:
        return self.rows[row][column]

    def column_values(self, column: str, *, suite: Optional[str] = None) -> List[float]:
        values = []
        for row, cells in self.rows.items():
            if suite is not None and self.row_suites.get(row) != suite:
                continue
            if column in cells:
                values.append(cells[column])
        return values

    def suite_means(self, column: str, *, geometric: bool = True) -> Dict[str, float]:
        """Per-suite mean of one column (gmean by default, as the paper does)."""
        means: Dict[str, float] = {}
        for suite in SUITE_NAMES:
            values = self.column_values(column, suite=suite)
            if not values:
                continue
            means[suite] = geometric_mean(values) if geometric else arithmetic_mean(values)
        return means

    def overall_mean(self, column: str, *, geometric: bool = True) -> float:
        values = self.column_values(column)
        return geometric_mean(values) if geometric else arithmetic_mean(values)

    # -- rendering ----------------------------------------------------------------

    def render(self, *, float_format: str = "{:7.3f}", include_suite_means: bool = True) -> str:
        """Render the table as aligned text (one row per benchmark, then means)."""
        name_width = max([len(row) for row in self.rows] + [len("benchmark")] + [12])
        header = "benchmark".ljust(name_width) + "  " + "  ".join(
            column.rjust(max(len(column), 7)) for column in self.columns)
        lines = [self.title, "=" * len(self.title), header, "-" * len(header)]
        ordered_rows = sorted(self.rows, key=lambda row: (self.row_suites.get(row, ""), row))
        current_suite = None
        for row in ordered_rows:
            suite = self.row_suites.get(row)
            if include_suite_means and suite != current_suite and suite is not None:
                lines.append(f"[{SUITE_TITLES.get(suite, suite)}]")
                current_suite = suite
            cells = []
            for column in self.columns:
                value = self.rows[row].get(column)
                width = max(len(column), 7)
                cells.append((float_format.format(value) if value is not None else "-").rjust(width))
            lines.append(row.ljust(name_width) + "  " + "  ".join(cells))
        if include_suite_means:
            lines.append("-" * len(header))
            for suite in SUITE_NAMES:
                means = {column: self.suite_means(column).get(suite) for column in self.columns}
                if all(value is None for value in means.values()):
                    continue
                cells = []
                for column in self.columns:
                    value = means[column]
                    width = max(len(column), 7)
                    cells.append((float_format.format(value) if value is not None else "-").rjust(width))
                label = f"gmean {SUITE_TITLES.get(suite, suite)}"
                lines.append(label.ljust(name_width) + "  " + "  ".join(cells))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_percent(value: float) -> str:
    """Format a relative-performance value as a percentage gain/loss."""
    return f"{(value - 1.0) * 100.0:+.1f}%"


def comparison_line(label: str, paper_value: str, measured: float) -> str:
    """One line of the EXPERIMENTS.md paper-vs-measured record."""
    return f"{label}: paper {paper_value}, measured {format_percent(measured)}"
