"""Experiments E4 and E9: profile robustness and the instruction-cache effect.

*Robustness* (Section 6.1): mini-graphs are selected using a profile gathered
on a different input set ("train") and their coverage is measured against the
reference profile; the paper reports an average relative coverage loss of
about 15%.

*Instruction-cache effect* (Section 6.2): by default interior instructions
are replaced with nops so the static layout is unchanged; removing them
compresses the code and amplifies instruction-cache capacity, which mostly
benefits the larger-footprint SPEC programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..api.spec import RunSpec
from ..minigraph.coverage import RobustnessReport, robustness_report
from ..minigraph.policies import DEFAULT_POLICY, SelectionPolicy
from ..uarch.config import baseline_config, integer_memory_minigraph_config
from ..workloads import REGISTRY
from .reporting import ResultTable, arithmetic_mean
from .runner import ExperimentRunner


@dataclass
class RobustnessResult:
    """Per-benchmark coverage robustness across input sets."""

    reports: Dict[str, RobustnessReport] = field(default_factory=dict)

    @property
    def mean_relative_loss(self) -> float:
        losses = [report.relative_loss for report in self.reports.values()]
        return arithmetic_mean(losses)

    def render(self) -> str:
        lines = ["Profile robustness across input sets (Section 6.1)"]
        for name, report in sorted(self.reports.items()):
            lines.append(f"  {name:20s} reference={report.reference_coverage:.3f} "
                         f"cross-input={report.cross_input_coverage:.3f} "
                         f"loss={report.relative_loss * 100.0:+.1f}%")
        lines.append(f"mean relative coverage loss: {self.mean_relative_loss * 100.0:.1f}%")
        return "\n".join(lines)


def run_robustness(runner: ExperimentRunner, *,
                   benchmarks: Optional[Sequence[str]] = None,
                   policy: SelectionPolicy = DEFAULT_POLICY) -> RobustnessResult:
    """Select on the train input, measure on the reference input."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    result = RobustnessResult()
    for name in names:
        reference = runner.baseline(name)
        train_spec = RunSpec(benchmark=name, input_name="train",
                             budget=runner.budget, policy=policy)
        train_profile = runner.session.profile(train_spec)
        # Both programs share the same static shape (only the data segment and
        # trip counts differ), so block ids line up and the train profile can
        # be used directly against the reference program.
        result.reports[name] = robustness_report(
            reference.program, reference.profile, train_profile, policy=policy)
    return result


@dataclass
class ICacheEffectResult:
    """Speedups with the padded (nop) layout vs the compressed layout."""

    table: ResultTable

    def render(self) -> str:
        return self.table.render()


def run_icache_effect(runner: ExperimentRunner, *,
                      benchmarks: Optional[Sequence[str]] = None) -> ICacheEffectResult:
    """E9: measure the additional benefit of compressing out interior nops."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks("spec")
    base = baseline_config()
    machine = integer_memory_minigraph_config()
    table = ResultTable(
        title="Instruction-cache effect: nop-padded vs compressed layout "
              "(relative to baseline)",
        columns=["padded", "compressed"])
    for name in names:
        suite = REGISTRY.get(name).suite
        padded = runner.speedup(name, DEFAULT_POLICY, machine, baseline_config=base)
        compressed = runner.speedup(name, DEFAULT_POLICY, machine, baseline_config=base,
                                    compressed_layout=True)
        table.add(name, "padded", padded, suite=suite)
        table.add(name, "compressed", compressed, suite=suite)
    table.notes.append("compression only changes instruction-cache addressing; "
                       "the executed work is identical")
    return ICacheEffectResult(table=table)
