"""Shared experiment runner — a compatibility shim over :mod:`repro.api`.

Every figure of the evaluation needs the same building blocks per benchmark:
the assembled program, its basic-block profile, a baseline trace, and — for
each mini-graph policy — the selection, the MGT, the rewritten program and
its trace.  All of that now lives behind :class:`repro.api.Session`, whose
content-addressed :class:`~repro.api.store.ArtifactStore` replaces the
hand-maintained memo dictionaries this module used to keep (and whose cache
keys are derived from :func:`dataclasses.fields`, so growing
:class:`~repro.minigraph.policies.SelectionPolicy` can no longer silently
alias cache entries).  The :class:`ExperimentRunner` interface is unchanged;
harnesses keep calling it, the session underneath does the caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..api.keys import canonical_key
from ..api.session import Session
from ..api.spec import RunSpec
from ..minigraph.mgt import MgtBuildOptions, MiniGraphTable
from ..minigraph.policies import SelectionPolicy
from ..minigraph.selection import SelectionResult
from ..program.profile import BlockProfile
from ..program.program import Program
from ..sim.trace import Trace
from ..uarch.config import MachineConfig
from ..uarch.stats import PipelineStats
from ..workloads import REGISTRY


@dataclass
class BaselineArtifacts:
    """Cached per-benchmark baseline products."""

    program: Program
    profile: BlockProfile
    trace: Trace


@dataclass
class MiniGraphArtifacts:
    """Cached per-benchmark, per-policy mini-graph products."""

    selection: SelectionResult
    mgt: MiniGraphTable
    program: Program
    trace: Trace


def _policy_key(policy: SelectionPolicy) -> Tuple:
    """Canonical cache key for a policy, derived from its dataclass fields."""
    return canonical_key(policy)


class ExperimentRunner:
    """Builds and caches everything the experiment harnesses need.

    A thin view over :class:`repro.api.Session`: pass ``session`` to share
    artifacts (and a disk cache) with other runners or with the CLI.
    """

    def __init__(self, *, budget: int = 15_000, input_name: str = "reference",
                 session: Optional[Session] = None) -> None:
        self._budget = budget
        self._input_name = input_name
        self._session = session if session is not None else Session()
        self._baseline_views: Dict[str, BaselineArtifacts] = {}
        self._minigraph_views: Dict[Tuple, MiniGraphArtifacts] = {}

    @property
    def budget(self) -> int:
        return self._budget

    @property
    def input_name(self) -> str:
        return self._input_name

    @property
    def session(self) -> Session:
        """The underlying pipeline session (shared artifact store)."""
        return self._session

    # -- spec construction ----------------------------------------------------------

    def _spec(self, benchmark: str, policy: Optional[SelectionPolicy] = None, *,
              collapsing: bool = False, compressed_layout: bool = False) -> RunSpec:
        return RunSpec(
            benchmark=benchmark,
            input_name=self._input_name,
            budget=self._budget,
            policy=policy,
            mgt_options=MgtBuildOptions(collapsing=collapsing),
            compressed_layout=compressed_layout,
        )

    # -- artifact construction ------------------------------------------------------

    def baseline(self, benchmark: str) -> BaselineArtifacts:
        """Assemble, profile and trace ``benchmark`` without mini-graphs."""
        if benchmark not in self._baseline_views:
            spec = self._spec(benchmark)
            self._baseline_views[benchmark] = BaselineArtifacts(
                program=self._session.program(spec),
                profile=self._session.profile(spec),
                trace=self._session.baseline_trace(spec))
        return self._baseline_views[benchmark]

    def minigraph(self, benchmark: str, policy: SelectionPolicy, *,
                  collapsing: bool = False) -> MiniGraphArtifacts:
        """Select, rewrite and trace ``benchmark`` under ``policy``.

        ``collapsing`` selects pair-wise collapsing ALU pipelines, which only
        changes how the MGT lays out its execution banks (the selection and
        the rewritten binary are identical).
        """
        key = (benchmark, _policy_key(policy), collapsing)
        if key not in self._minigraph_views:
            spec = self._spec(benchmark, policy, collapsing=collapsing)
            self._minigraph_views[key] = MiniGraphArtifacts(
                selection=self._session.selection(spec),
                mgt=self._session.mgt(spec),
                program=self._session.rewritten(spec),
                trace=self._session.minigraph_trace(spec))
        return self._minigraph_views[key]

    # -- timing runs ------------------------------------------------------------------

    def run_baseline(self, benchmark: str, config: MachineConfig) -> PipelineStats:
        """Timing-simulate the unmodified benchmark on ``config``."""
        return self._session.baseline_timing(self._spec(benchmark), config)

    def run_minigraph(self, benchmark: str, policy: SelectionPolicy,
                      config: MachineConfig, *, collapsing: bool = False,
                      compressed_layout: bool = False) -> PipelineStats:
        """Timing-simulate the rewritten benchmark on a mini-graph machine."""
        spec = self._spec(benchmark, policy, collapsing=collapsing,
                          compressed_layout=compressed_layout)
        return self._session.minigraph_timing(spec, config)

    def speedup(self, benchmark: str, policy: SelectionPolicy,
                config: MachineConfig, *, baseline_config: MachineConfig,
                collapsing: bool = False,
                compressed_layout: bool = False) -> float:
        """Relative performance of the mini-graph machine over the baseline.

        Returns ``nan`` (rather than a misleading 1.0) when the baseline
        retired no instructions.
        """
        baseline = self.run_baseline(benchmark, baseline_config)
        minigraph = self.run_minigraph(benchmark, policy, config,
                                       collapsing=collapsing,
                                       compressed_layout=compressed_layout)
        if baseline.ipc == 0.0:
            return float("nan")
        return minigraph.ipc / baseline.ipc

    # -- benchmark enumeration -----------------------------------------------------------

    @staticmethod
    def benchmarks(suite: Optional[str] = None, *, limit: Optional[int] = None) -> List[str]:
        """Benchmark names, optionally restricted to a suite and truncated."""
        names = REGISTRY.names(suite)
        return names[:limit] if limit is not None else names
