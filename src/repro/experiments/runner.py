"""Shared experiment runner with artifact caching.

Every figure of the evaluation needs the same building blocks per benchmark:
the assembled program, its basic-block profile, a baseline trace, and — for
each mini-graph policy — the selection, the MGT, the rewritten program and
its trace.  Building them is the expensive part, so the runner caches them
and every experiment harness reuses one runner instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..minigraph.mgt import MgtBuildOptions, MiniGraphTable
from ..minigraph.policies import SelectionPolicy
from ..minigraph.selection import SelectionResult, select_minigraphs
from ..program.profile import BlockProfile
from ..program.program import Program
from ..program.rewriter import rewrite_program
from ..sim.functional import run_program
from ..sim.trace import Trace
from ..uarch.config import MachineConfig
from ..uarch.pipeline import simulate_program
from ..uarch.stats import PipelineStats
from ..workloads import REGISTRY, load_benchmark


@dataclass
class BaselineArtifacts:
    """Cached per-benchmark baseline products."""

    program: Program
    profile: BlockProfile
    trace: Trace


@dataclass
class MiniGraphArtifacts:
    """Cached per-benchmark, per-policy mini-graph products."""

    selection: SelectionResult
    mgt: MiniGraphTable
    program: Program
    trace: Trace


def _policy_key(policy: SelectionPolicy) -> Tuple:
    return (policy.max_size, policy.allow_memory, policy.allow_branches,
            policy.allow_externally_serial, policy.allow_internally_parallel,
            policy.allow_interior_loads, policy.max_templates)


class ExperimentRunner:
    """Builds and caches everything the experiment harnesses need."""

    def __init__(self, *, budget: int = 15_000, input_name: str = "reference") -> None:
        self._budget = budget
        self._input_name = input_name
        self._baseline: Dict[str, BaselineArtifacts] = {}
        self._minigraph: Dict[Tuple, MiniGraphArtifacts] = {}
        self._timing: Dict[Tuple, PipelineStats] = {}

    @property
    def budget(self) -> int:
        return self._budget

    @property
    def input_name(self) -> str:
        return self._input_name

    # -- artifact construction ------------------------------------------------------

    def baseline(self, benchmark: str) -> BaselineArtifacts:
        """Assemble, profile and trace ``benchmark`` without mini-graphs."""
        if benchmark not in self._baseline:
            program = load_benchmark(benchmark, self._input_name)
            result = run_program(program, max_instructions=self._budget)
            self._baseline[benchmark] = BaselineArtifacts(
                program=program, profile=result.profile, trace=result.trace)
        return self._baseline[benchmark]

    def minigraph(self, benchmark: str, policy: SelectionPolicy, *,
                  collapsing: bool = False) -> MiniGraphArtifacts:
        """Select, rewrite and trace ``benchmark`` under ``policy``.

        ``collapsing`` selects pair-wise collapsing ALU pipelines, which only
        changes how the MGT lays out its execution banks (the selection and
        the rewritten binary are identical).
        """
        key = (benchmark, _policy_key(policy), collapsing)
        if key not in self._minigraph:
            baseline = self.baseline(benchmark)
            selection = select_minigraphs(baseline.program, baseline.profile, policy=policy)
            options = MgtBuildOptions(collapsing=collapsing)
            mgt = MiniGraphTable.from_selection(selection, options)
            rewritten = rewrite_program(baseline.program, selection.rewrite_sites())
            result = run_program(rewritten.program, mgt=mgt,
                                 max_instructions=self._budget)
            self._minigraph[key] = MiniGraphArtifacts(
                selection=selection, mgt=mgt, program=rewritten.program,
                trace=result.trace)
        return self._minigraph[key]

    # -- timing runs ------------------------------------------------------------------

    def run_baseline(self, benchmark: str, config: MachineConfig) -> PipelineStats:
        """Timing-simulate the unmodified benchmark on ``config``."""
        key = ("baseline", benchmark, config.name)
        if key not in self._timing:
            artifacts = self.baseline(benchmark)
            self._timing[key] = simulate_program(artifacts.program, artifacts.trace, config)
        return self._timing[key]

    def run_minigraph(self, benchmark: str, policy: SelectionPolicy,
                      config: MachineConfig, *, collapsing: bool = False,
                      compressed_layout: bool = False) -> PipelineStats:
        """Timing-simulate the rewritten benchmark on a mini-graph machine."""
        key = ("minigraph", benchmark, _policy_key(policy), config.name,
               collapsing, compressed_layout)
        if key not in self._timing:
            artifacts = self.minigraph(benchmark, policy, collapsing=collapsing)
            self._timing[key] = simulate_program(
                artifacts.program, artifacts.trace, config, mgt=artifacts.mgt,
                compressed_layout=compressed_layout)
        return self._timing[key]

    def speedup(self, benchmark: str, policy: SelectionPolicy,
                config: MachineConfig, *, baseline_config: MachineConfig,
                collapsing: bool = False,
                compressed_layout: bool = False) -> float:
        """Relative performance of the mini-graph machine over the baseline."""
        baseline = self.run_baseline(benchmark, baseline_config)
        minigraph = self.run_minigraph(benchmark, policy, config,
                                       collapsing=collapsing,
                                       compressed_layout=compressed_layout)
        if baseline.ipc == 0.0:
            return 1.0
        return minigraph.ipc / baseline.ipc

    # -- benchmark enumeration -----------------------------------------------------------

    @staticmethod
    def benchmarks(suite: Optional[str] = None, *, limit: Optional[int] = None) -> List[str]:
        """Benchmark names, optionally restricted to a suite and truncated."""
        names = REGISTRY.names(suite)
        return names[:limit] if limit is not None else names
