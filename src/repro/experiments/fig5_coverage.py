"""Experiment E1-E3: mini-graph coverage (Figure 5).

The figure has three panels: application-specific integer mini-graphs,
application-specific integer-memory mini-graphs, and domain-specific
integer-memory mini-graphs, each swept over MGT capacity (32, 128, 512, 2K
entries) and maximum mini-graph size (2, 3, 4, 8 instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..minigraph.coverage import FIGURE5_GRAPH_SIZES, FIGURE5_MGT_SIZES, sweep_coverage
from ..minigraph.policies import DEFAULT_POLICY, INTEGER_POLICY, SelectionPolicy
from ..minigraph.selection import select_domain_minigraphs
from ..workloads import REGISTRY, SUITE_NAMES
from .reporting import ResultTable, arithmetic_mean
from .runner import ExperimentRunner


@dataclass
class CoverageExperimentResult:
    """Coverage tables for one Figure 5 panel."""

    panel: str
    table: ResultTable
    by_size_breakdown: Dict[str, Dict[int, float]] = field(default_factory=dict)


def _suite_of(benchmark: str) -> str:
    return REGISTRY.get(benchmark).suite


def run_coverage_panel(runner: ExperimentRunner, *, integer_only: bool,
                       benchmarks: Optional[Sequence[str]] = None,
                       mgt_sizes: Sequence[int] = FIGURE5_MGT_SIZES,
                       graph_sizes: Sequence[int] = FIGURE5_GRAPH_SIZES
                       ) -> CoverageExperimentResult:
    """Application-specific coverage sweep (Figure 5 top or middle panel)."""
    panel = "integer" if integer_only else "integer-memory"
    base_policy = INTEGER_POLICY if integer_only else DEFAULT_POLICY
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    table = ResultTable(
        title=f"Figure 5 ({panel}): coverage vs MGT entries / max graph size",
        columns=[])
    breakdown: Dict[str, Dict[int, float]] = {}
    truncated: List[str] = []
    for name in names:
        artifacts = runner.baseline(name)
        sweep = sweep_coverage(artifacts.program, artifacts.profile,
                               base_policy=base_policy,
                               mgt_sizes=mgt_sizes, graph_sizes=graph_sizes)
        for cell in sweep.cells:
            column = f"{cell.mgt_entries}e/{cell.max_graph_size}i"
            table.add(name, column, cell.coverage, suite=_suite_of(name))
        reference = sweep.cell(max(mgt_sizes), 4 if 4 in graph_sizes else max(graph_sizes))
        breakdown[name] = reference.coverage_by_size
        if sweep.truncated:
            truncated.append(name)
    table.notes.append(
        "columns are <MGT entries>e/<max mini-graph size>i; values are the fraction "
        "of dynamic instructions removed from the pipeline")
    if truncated:
        table.notes.append(
            "enumeration truncated (coverage under-reported) for: "
            + ", ".join(truncated))
    return CoverageExperimentResult(panel=panel, table=table, by_size_breakdown=breakdown)


def run_domain_panel(runner: ExperimentRunner, *,
                     benchmarks: Optional[Sequence[str]] = None,
                     mgt_sizes: Sequence[int] = (512, 2048),
                     max_graph_size: int = 4) -> CoverageExperimentResult:
    """Domain-specific coverage (Figure 5 bottom): one MGT per suite."""
    names = list(benchmarks) if benchmarks is not None else runner.benchmarks()
    table = ResultTable(
        title="Figure 5 (domain-specific integer-memory): coverage with a per-suite MGT",
        columns=[])
    for suite in SUITE_NAMES:
        suite_names = [name for name in names if _suite_of(name) == suite]
        if not suite_names:
            continue
        programs = {}
        for name in suite_names:
            artifacts = runner.baseline(name)
            programs[name] = (artifacts.program, artifacts.profile)
        for entries in mgt_sizes:
            policy = DEFAULT_POLICY.with_mgt_entries(entries).with_max_size(max_graph_size)
            domain = select_domain_minigraphs(programs, suite_name=suite, policy=policy)
            truncated = sorted(name for name, result in domain.per_program.items()
                               if result.truncated)
            if truncated:
                table.notes.append(
                    f"{suite}/domain-{entries}e: enumeration truncated for "
                    + ", ".join(truncated))
            for name, result in domain.per_program.items():
                table.add(name, f"domain-{entries}e", result.coverage, suite=suite)
    table.notes.append("the MGT is shared by every benchmark in the suite")
    return CoverageExperimentResult(panel="domain", table=table)


@dataclass
class Figure5Result:
    """All three panels plus the headline per-suite averages."""

    integer: CoverageExperimentResult
    integer_memory: CoverageExperimentResult
    domain: CoverageExperimentResult

    def suite_average(self, panel: str, column: str) -> Dict[str, float]:
        table = {"integer": self.integer, "integer-memory": self.integer_memory,
                 "domain": self.domain}[panel].table
        return {suite: arithmetic_mean(table.column_values(column, suite=suite))
                for suite in SUITE_NAMES
                if table.column_values(column, suite=suite)}

    def render(self) -> str:
        return "\n\n".join(table.render(float_format="{:7.3f}") for table in
                           (self.integer.table, self.integer_memory.table, self.domain.table))


def run_figure5(runner: ExperimentRunner, *,
                benchmarks: Optional[Sequence[str]] = None,
                mgt_sizes: Sequence[int] = FIGURE5_MGT_SIZES,
                graph_sizes: Sequence[int] = FIGURE5_GRAPH_SIZES) -> Figure5Result:
    """Run all three Figure 5 panels."""
    return Figure5Result(
        integer=run_coverage_panel(runner, integer_only=True, benchmarks=benchmarks,
                                   mgt_sizes=mgt_sizes, graph_sizes=graph_sizes),
        integer_memory=run_coverage_panel(runner, integer_only=False, benchmarks=benchmarks,
                                          mgt_sizes=mgt_sizes, graph_sizes=graph_sizes),
        domain=run_domain_panel(runner, benchmarks=benchmarks),
    )
