"""The experiment-grid engine: declarative machine-space sweeps at scale.

The paper's whole evaluation is a configuration-space sweep — Figure 6
varies the mini-graph hardware, Figure 8 shrinks machine resources, both
across every workload.  This package turns that cross-product into a
first-class subsystem:

* :mod:`repro.grid.spec` — :class:`Axis` / :class:`GridSpec`: declare axes
  (machine × policy × workload × budget) with include/exclude predicates;
  expansion to :class:`~repro.api.spec.RunSpec`\\ s is lazy and
  deterministic.
* :mod:`repro.grid.planner` — :func:`plan_grid` groups cells into
  shared-artifact stages (one functional profile per program, one front-end
  compile per (program, policy), N timing runs each) and shards by stage.
* :mod:`repro.grid.engine` — :func:`run_grid` executes a plan across the
  process pool, streaming one :class:`GridRow` per cell; terminal row
  artifacts are content-addressed, which makes runs resumable (``--resume``)
  and shard unions exact.
* :mod:`repro.grid.catalog` — named grids (``fig6``, ``fig8``, ``mini``)
  behind ``repro grid --name``.

See ``docs/architecture.md`` ("Grid engine") for the full design.
"""

from .spec import Axis, GridCell, GridError, GridSpec
from .planner import CompileGroup, GridPlan, PlanStage, plan_cells, plan_grid
from .engine import GridRow, cell_key, run_grid
from .catalog import (
    GRID_CATALOG,
    GridDefinition,
    get_grid,
    grid_definitions,
    grid_names,
    register_grid,
)

__all__ = [
    "Axis",
    "GridCell",
    "GridError",
    "GridSpec",
    "CompileGroup",
    "GridPlan",
    "PlanStage",
    "plan_cells",
    "plan_grid",
    "GridRow",
    "cell_key",
    "run_grid",
    "GRID_CATALOG",
    "GridDefinition",
    "get_grid",
    "grid_definitions",
    "grid_names",
    "register_grid",
]
