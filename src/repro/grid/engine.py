"""Grid execution: sharded, resumable, streaming runs over a plan.

:func:`run_grid` drives a :class:`~repro.grid.planner.GridPlan` through a
:class:`~repro.api.session.Session` and *streams* one :class:`GridRow` per
cell — results are yielded as each shared-artifact stage completes, in the
plan's deterministic order, so a thousand-cell campaign can be tailed as
JSONL instead of held in memory.

Each cell's terminal result (the row payload: IPCs, cycles, coverage,
speedup, template count) is itself a content-addressed artifact, stored
under a key derived from the run spec's identity and ``repro.__version__``.
That is what makes grids **resumable**: with ``resume=True`` every cell
whose row artifact is already in the store is served from it (``row.resumed``
is ``True``) and never shipped to the pool, so re-running an interrupted —
or sharded — campaign only executes the missing cells, and the union of
shard runs plus one resumed pass equals the unsharded result exactly.

Stages fan out across a process pool (one worker session per stage, sharing
the disk cache) with the same serial fallback and accounting merge-back as
:meth:`Session.map`/:meth:`Session.sweep`.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..api.keys import content_hash
from ..api.session import RunArtifacts, Session, SessionStats
from ..api.spec import RunSpec
from ..api.store import MISS, CacheStats
from .planner import GridPlan, PlanStage, plan_grid
from .spec import GridCell, GridSpec


@dataclass
class GridRow:
    """One streamed grid result: the cell's point plus its terminal metrics."""

    index: int
    labels: Dict[str, Any]
    spec_hash: str
    benchmark: str
    input: str
    budget: int
    machine: str
    machine_hash: str
    baseline_machine: str
    coverage: float
    baseline_ipc: float
    ipc: float
    speedup: float            # nan when the baseline retired nothing
    cycles: int
    baseline_cycles: int
    templates: Optional[int]
    resumed: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly row (NaN is not valid JSON; surfaced as null)."""
        def cell(value: Any) -> Any:
            if isinstance(value, float) and math.isnan(value):
                return None
            return value
        return {
            "index": self.index,
            "point": dict(self.labels),
            "spec_hash": self.spec_hash,
            "benchmark": self.benchmark,
            "input": self.input,
            "budget": self.budget,
            "machine": self.machine,
            "machine_hash": self.machine_hash,
            "baseline_machine": self.baseline_machine,
            "coverage": cell(self.coverage),
            "baseline_ipc": cell(self.baseline_ipc),
            "ipc": cell(self.ipc),
            "speedup": cell(self.speedup),
            "cycles": self.cycles,
            "baseline_cycles": self.baseline_cycles,
            "templates": self.templates,
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GridRow":
        """Inverse of :meth:`as_dict` (the serve protocol's row transport).

        JSON has no NaN, so ``as_dict`` surfaced NaN metrics as ``null``;
        they come back as NaN here, keeping round-tripped rows equal to the
        originals field for field.
        """
        def metric(name: str) -> float:
            value = data[name]
            return float("nan") if value is None else value
        return cls(index=data["index"], labels=dict(data["point"]),
                   spec_hash=data["spec_hash"], benchmark=data["benchmark"],
                   input=data["input"], budget=data["budget"],
                   machine=data["machine"], machine_hash=data["machine_hash"],
                   baseline_machine=data["baseline_machine"],
                   coverage=metric("coverage"),
                   baseline_ipc=metric("baseline_ipc"), ipc=metric("ipc"),
                   speedup=metric("speedup"), cycles=data["cycles"],
                   baseline_cycles=data["baseline_cycles"],
                   templates=data["templates"],
                   resumed=data.get("resumed", False))


def cell_key(spec: RunSpec, version: str,
             namespace: Optional[str] = None) -> str:
    """Store key of one cell's terminal row artifact.

    Grid-independent by design — only the run spec's identity and the
    package version participate — so two grids whose cells resolve to the
    same run share one row artifact, and ``resume`` works across grid
    declarations.  A ``repro serve`` client that declares a *namespace*
    gets namespaced row artifacts (isolation between tenants sharing one
    daemon store); the empty/default namespace keeps the shared key, so
    daemon rows and ``repro grid --resume`` runs serve each other.
    """
    if namespace:
        return f"gridcell-{content_hash((version, spec.spec_hash, namespace))}"
    return f"gridcell-{content_hash((version, spec.spec_hash))}"


def _cell_payload(artifacts: RunArtifacts) -> Dict[str, Any]:
    """The cached part of a row: metrics only, from one run's artifacts.

    Deliberately excludes anything derivable from the spec — in particular
    display *names*: two cells with identical run identity but different
    machine labels (e.g. Figure 8's ``prf164`` against the plain baseline)
    share one row artifact, so a stored name would leak one cell's label
    into the other's resumed row.  :func:`_row` re-derives those fields
    from the cell's own spec, keeping resumed rows bit-identical to fresh
    ones.
    """
    selection = artifacts.selection
    return {
        "coverage": artifacts.coverage,
        "baseline_ipc": artifacts.baseline_timing.ipc,
        "ipc": artifacts.timing.ipc,
        "speedup": artifacts.speedup,
        "cycles": artifacts.timing.cycles,
        "baseline_cycles": artifacts.baseline_timing.cycles,
        "templates": None if selection is None else selection.template_count,
    }


def _row(cell: GridCell, payload: Dict[str, Any], *, resumed: bool) -> GridRow:
    spec = cell.spec
    machine = spec.resolved_machine
    return GridRow(index=cell.index, labels=cell.labels, resumed=resumed,
                   spec_hash=spec.spec_hash,
                   benchmark=spec.label,
                   input=spec.input_name,
                   budget=spec.budget,
                   machine=machine.name,
                   machine_hash=machine.resolve().machine_hash,
                   baseline_machine=spec.resolved_baseline_machine.name,
                   **payload)


#: One pool job: the stage's cells (index, point, spec — GridSpec builders
#: never cross the process boundary), the shared cache directory, the
#: version, whether the batched timing pre-pass runs first, and its
#: ``max_lanes`` override (None = kernel default).
_StageJob = Tuple[List[Tuple[int, Tuple[Tuple[str, Any], ...], RunSpec]],
                  Optional[str], str, bool, Optional[int]]


def _run_stage_job(job: _StageJob) -> Tuple[List[Tuple[int, Dict[str, Any]]],
                                            SessionStats, CacheStats]:
    """Process-pool worker: run one shared-artifact stage in one session."""
    cells, cache_dir, version, batch, max_lanes = job
    session = Session(cache_dir=cache_dir, version=version)
    if batch:
        # Batched timing pre-pass: the stage's lanes — its baseline trace's
        # machines plus each policy's mini-graph trace's — pack into
        # cross-trace BatchedTimingSimulator passes, so the per-cell run()
        # calls below hit the timing stage cache.
        session.prime_timing([spec for _, _, spec in cells],
                             max_lanes=max_lanes)
    rows: List[Tuple[int, Dict[str, Any]]] = []
    for index, point, spec in cells:
        payload = _cell_payload(session.run(spec))
        session.store.put(cell_key(spec, version), payload)
        rows.append((index, payload))
    return rows, session.stats, session.cache_stats


def run_grid(session: Session, grid: Union[GridSpec, GridPlan], *,
             shard: Optional[Tuple[int, int]] = None,
             resume: bool = False,
             workers: Optional[int] = None,
             batch: bool = True,
             max_lanes: Optional[int] = None) -> Iterator[GridRow]:
    """Execute a grid (or a prepared plan), streaming rows in plan order.

    Args:
        session: the driving session; its store serves resume probes and
            receives every computed row artifact, and its statistics absorb
            the workers' accounting.
        grid: a :class:`GridSpec` (planned here) or an existing plan.
        shard: ``(index, count)`` — run only that stage-partition shard.
        resume: serve cells whose row artifact is already stored without
            executing them (``row.resumed`` marks them).
        workers: process-pool width (0/1 = serial in the parent session,
            where the plan's grouping keeps shared artifacts hot in the
            memory cache).
        batch: drive the plan's timing runs through the batched
            multi-machine kernel (:meth:`Session.prime_timing`) before the
            per-cell loops — serially, the whole plan's cache-miss lanes
            bin-pack into cross-trace passes up front; with a pool, each
            stage-worker packs its own stage's trace groups.  Rows stay
            bit-identical to the scalar path (``batch=False``).
        max_lanes: lane cap per batched pass (None = the kernel default,
            :data:`repro.uarch.batch.DEFAULT_MAX_LANES`).
    """
    plan = grid if isinstance(grid, GridPlan) else plan_grid(grid)
    if shard is not None:
        plan = plan.take_shard(*shard)
    version = session.version
    store = session.store

    # Probe phase: with resume, serve every already-stored cell row up front
    # and only ship the remainder to the executors.
    pending: List[_PendingStage] = []
    for stage in plan.stages:
        served: List[GridRow] = []
        remaining: List[GridCell] = []
        for cell in stage.cells:
            payload = store.get(cell_key(cell.spec, version)) if resume else MISS
            if payload is not MISS:
                served.append(_row(cell, payload, resumed=True))
            else:
                remaining.append(cell)
        pending.append(_PendingStage(stage, remaining, served))

    for stage_rows in _execute(session, pending, workers, batch, max_lanes):
        for row in sorted(stage_rows, key=lambda row: row.index):
            yield row


@dataclass
class _PendingStage:
    """One plan stage split into resumed rows and cells still to run."""

    stage: PlanStage
    cells: List[GridCell]      # still to execute
    served: List[GridRow]      # already resumed from the store


def _execute(session: Session, pending: List[_PendingStage],
             workers: Optional[int], batch: bool,
             max_lanes: Optional[int]) -> Iterator[List[GridRow]]:
    """Yield each stage's complete row list (resumed + computed), in order."""
    jobs = [entry.cells for entry in pending if entry.cells]
    resolved = session._resolve_workers(workers, len(jobs))
    if resolved > 1 and len(jobs) > 1:
        outcomes = _pool_outcomes(session, jobs, resolved, batch, max_lanes)
        if outcomes is not None:
            yield from _merge_pool_outcomes(session, pending, outcomes)
            return
    # Serial (or pool-unavailable fallback): compute in the parent session,
    # in execution order, so shared artifacts stay hot in the memory cache.
    # The batched pre-pass runs over the *whole* plan's pending cells up
    # front: one session sees every stage's lanes, so the bin-pack fills
    # passes across stage boundaries — small stages' leftover lanes ride in
    # large stages' passes instead of under-filling their own.
    version = session.version
    if batch and jobs:
        session.prime_timing([cell.spec for cells in jobs for cell in cells],
                             max_lanes=max_lanes)
    for entry in pending:
        rows = list(entry.served)
        for cell in entry.cells:
            payload = _cell_payload(session.run(cell.spec))
            session.store.put(cell_key(cell.spec, version), payload)
            rows.append(_row(cell, payload, resumed=False))
        yield rows


def _pool_outcomes(session: Session, jobs: List[List[GridCell]],
                   workers: int, batch: bool, max_lanes: Optional[int]):
    """An ordered, streaming iterator of stage-job results — or ``None``
    when process pools are unavailable in the environment."""
    cache_dir = session.store.cache_dir
    cache_dir_name = None if cache_dir is None else str(cache_dir)
    payloads: List[_StageJob] = [
        ([(cell.index, cell.point, cell.spec) for cell in cells],
         cache_dir_name, session.version, batch, max_lanes)
        for cells in jobs]
    pool = None
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(payloads)))
        # Executor.map submits every job eagerly; pool-spawn failures in
        # restricted environments surface here, not mid-stream.
        results = pool.map(_run_stage_job, payloads)
    except (OSError, PermissionError):
        if pool is not None:
            pool.shutdown(wait=False)
        return None

    def stream():
        try:
            yield from results
        finally:
            pool.shutdown(wait=True)
    return stream()


def _merge_pool_outcomes(session: Session, pending: List[_PendingStage],
                         outcomes) -> Iterator[List[GridRow]]:
    version = session.version
    for entry in pending:
        rows = list(entry.served)
        if entry.cells:
            worker_rows, worker_stats, worker_cache = next(outcomes)
            session.stats.merge(worker_stats)
            session._merge_cache_stats(worker_cache)
            by_index = {cell.index: cell for cell in entry.cells}
            for index, payload in worker_rows:
                cell = by_index[index]
                # Mirror the row artifact into the parent store so a later
                # resumed pass hits even without a shared disk cache.
                session.store.put(cell_key(cell.spec, version), payload)
                rows.append(_row(cell, payload, resumed=False))
        yield rows
