"""Named grids: the catalog behind ``repro grid --name``.

A :class:`GridDefinition` bundles a grid factory (benchmarks/budget/input in,
:class:`~repro.grid.spec.GridSpec` out) with an optional report hook that
derives the figure's result tables from the streamed rows.  The paper's
figure grids (``fig6``, ``fig8`` and its panels) register themselves from
:mod:`repro.experiments` — imported lazily on first lookup so the grid
package stays import-light — and ``mini``, the 2-axis smoke grid used by CI
and quick sanity checks, is registered here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..api.spec import RunSpec
from .engine import GridRow
from .spec import Axis, GridError, GridSpec

#: Report hook: streamed rows in, (rendered text, result tables) out.
#: Tables are ``repro.experiments.reporting.ResultTable`` instances; typed
#: loosely here to keep this module free of an experiments import.
GridReport = Callable[[List[GridRow]], Tuple[str, List[object]]]


@dataclass(frozen=True)
class GridDefinition:
    """One named grid in the catalog."""

    name: str
    description: str
    factory: Callable[..., GridSpec]   # (benchmarks=, budget=, input_name=)
    report: Optional[GridReport] = None
    default_budget: int = 8_000
    default_benchmarks: Optional[Tuple[str, ...]] = None

    def build(self, *, benchmarks: Sequence[str], budget: int,
              input_name: str = "reference") -> GridSpec:
        return self.factory(benchmarks=tuple(benchmarks), budget=budget,
                            input_name=input_name)


GRID_CATALOG: Dict[str, GridDefinition] = {}


def register_grid(definition: GridDefinition) -> GridDefinition:
    """Register a named grid; duplicate names are an error."""
    if definition.name in GRID_CATALOG:
        raise GridError(f"grid {definition.name!r} is already registered")
    GRID_CATALOG[definition.name] = definition
    return definition


def _ensure_builtin() -> None:
    """Load the modules that register the built-in figure grids."""
    from ..experiments import fig6_performance, fig8_amplification  # noqa: F401


def grid_names() -> List[str]:
    _ensure_builtin()
    return list(GRID_CATALOG)


def grid_definitions() -> List[GridDefinition]:
    _ensure_builtin()
    return list(GRID_CATALOG.values())


def get_grid(name: str) -> GridDefinition:
    _ensure_builtin()
    try:
        return GRID_CATALOG[name]
    except KeyError:
        known = ", ".join(GRID_CATALOG)
        raise GridError(f"unknown grid {name!r}; catalog has: {known}") \
            from None


# -- the mini smoke grid ------------------------------------------------------------


def _mini_grid(*, benchmarks: Sequence[str], budget: int,
               input_name: str = "reference") -> GridSpec:
    """A deliberately tiny 2-axis grid: benchmark × {int-mem, baseline}.

    Small enough for CI to run a shard in seconds, yet it exercises the
    whole engine: planning groups the policy cells with their baseline,
    sharding splits by benchmark, and a resumed second pass must be 100%
    row-artifact hits.
    """
    from ..minigraph.policies import DEFAULT_POLICY

    axes = (Axis("benchmark", tuple(benchmarks)),
            Axis("policy", ("int-mem", "baseline")))

    def build(point):
        policy = DEFAULT_POLICY if point["policy"] == "int-mem" else None
        return RunSpec(benchmark=point["benchmark"], input_name=input_name,
                       budget=budget, policy=policy)

    return GridSpec(name="mini", axes=axes, build=build,
                    title="mini smoke grid: benchmark × {int-mem, baseline}")


def _mini_report(rows: List[GridRow]) -> Tuple[str, List[object]]:
    from ..experiments.reporting import ResultTable
    from ..workloads import REGISTRY

    table = ResultTable(title="mini grid: IPC by policy",
                        columns=["int-mem", "baseline", "speedup"])
    for row in rows:
        suite = REGISTRY.get(row.benchmark).suite
        column = row.labels["policy"]
        table.add(row.benchmark, column, row.ipc, suite=suite)
        if column == "int-mem":
            table.add(row.benchmark, "speedup", row.speedup, suite=suite)
    return table.render(), [table]


register_grid(GridDefinition(
    name="mini",
    description="2-axis smoke grid (benchmark × policy) for CI and quick checks",
    factory=_mini_grid,
    report=_mini_report,
    default_budget=3_000,
    default_benchmarks=("bitcount", "crc"),
))
