"""Dependency-aware grid planning: cells → shared-artifact stages → shards.

Expanding a grid yields one :class:`~repro.grid.spec.GridCell` per (machine ×
policy × workload × budget) point, but executing each cell independently
would re-derive the expensive shared prefix of the pipeline — one functional
profile per (program, input, budget) and one front-end compile
(select/rewrite/trace) per (program, policy) — once per cell.  The planner
generalizes :meth:`repro.api.session.Session.sweep`'s grouping into an
explicit, inspectable plan:

* a :class:`PlanStage` per distinct profile identity ``(source, input,
  budget)`` — the unit shipped to one process-pool worker, where the shared
  stages run once and the interned decode metadata is reused by every
  timing run;
* a :class:`CompileGroup` per distinct selection policy inside a stage —
  cells of one group run consecutively so the front-end artifacts they share
  stay hot;
* deterministic ordering throughout (stages by first cell, groups by first
  cell, cells by expansion index), which is what makes sharding
  (:meth:`GridPlan.shard`) a partition: shard *i* of *N* takes every
  *N*-th stage, and the union of all shards is exactly the unsharded plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..api.keys import canonical_key
from ..api.spec import RunSpec
from .spec import GridCell, GridError, GridSpec


@dataclass
class CompileGroup:
    """Cells sharing one front-end compile: same program *and* policy."""

    policy_key: Any                  # canonical policy key; None = baseline
    cells: List[GridCell] = field(default_factory=list)


@dataclass
class PlanStage:
    """Cells sharing one profile identity ``(source, input, budget)``.

    One stage is one process-pool job: every cell in it reuses the stage's
    functional profile, and cells are ordered compile-group-major so each
    policy's select/rewrite/trace artifacts are computed once and reused
    while still hot.
    """

    key: Tuple[str, str, int]
    groups: List[CompileGroup] = field(default_factory=list)

    @property
    def cells(self) -> List[GridCell]:
        """Stage cells in execution order (compile-group-major)."""
        return [cell for group in self.groups for cell in group.cells]

    @property
    def cell_count(self) -> int:
        return sum(len(group.cells) for group in self.groups)

    @property
    def frontend_compiles(self) -> int:
        """Distinct front-end compiles (non-baseline policies) in the stage."""
        return sum(1 for group in self.groups if group.policy_key is not None)


@dataclass
class GridPlan:
    """A grid expanded and grouped into shared-artifact stages.

    ``grid`` is ``None`` for plans built from bare cells
    (:func:`plan_cells`) — e.g. the serve daemon planning a client's
    pre-expanded cell list.
    """

    grid: Optional[GridSpec]
    stages: List[PlanStage]
    shard: Optional[Tuple[int, int]] = None   # (index, count) when sharded

    @property
    def cell_count(self) -> int:
        return sum(stage.cell_count for stage in self.stages)

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def frontend_compiles(self) -> int:
        return sum(stage.frontend_compiles for stage in self.stages)

    @property
    def dedup_ratio(self) -> float:
        """Timing runs per shared-artifact stage (1.0 = nothing shared)."""
        if not self.stages:
            return 1.0
        return self.cell_count / len(self.stages)

    def cells(self) -> List[GridCell]:
        """Every planned cell, stage-major in execution order."""
        return [cell for stage in self.stages for cell in stage.cells]

    def timing_batches(self, max_lanes: Optional[int] = None
                       ) -> List["TimingBatch"]:
        """The machine-batched timing passes this plan's cells will ride.

        Batches are packed across the whole plan — lanes from *different*
        stages' decoded traces share passes whenever a stage's lane groups
        leave cells free (see :func:`timing_batches`'s greedy bin-pack) —
        mirroring what :meth:`Session.prime_timing` executes on the serial
        path, where one session sees every stage's lanes.  (A process-pool
        run primes per stage-worker, so its passes pack only that stage's
        trace groups.)
        """
        return timing_batches(self.cells(), max_lanes)

    def take_shard(self, index: int, count: int) -> "GridPlan":
        """Shard ``index`` of ``count``: every ``count``-th stage.

        Sharding by *stage* (not by cell) keeps each shard's shared-artifact
        grouping intact — no shard ever recomputes another shard's front-end
        compile — and the shards partition the plan: their union is exactly
        the unsharded cell set.
        """
        if count <= 0:
            raise GridError(f"shard count must be positive, got {count}")
        if not 0 <= index < count:
            raise GridError(f"shard index {index} out of range for "
                            f"{count} shards (expected 0..{count - 1})")
        return GridPlan(grid=self.grid, stages=self.stages[index::count],
                        shard=(index, count))

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly plan summary."""
        return {
            "grid": None if self.grid is None else self.grid.name,
            "cells": self.cell_count,
            "stages": self.stage_count,
            "frontend_compiles": self.frontend_compiles,
            "dedup_ratio": self.dedup_ratio,
            "shard": None if self.shard is None
                     else f"{self.shard[0]}/{self.shard[1]}",
        }


@dataclass
class LaneGroup:
    """Machine lanes sharing one decoded trace inside a batched pass.

    ``trace_key`` identifies the shared trace artifact (profile identity
    for baseline lanes, trace identity + layout for mini-graph lanes);
    ``lanes`` holds one ``(spec, machine)`` pair per distinct machine;
    ``est_length`` is the planner's trace-length estimate (the owning
    spec's budget caps committed entries), which drives the longest-first
    bin-pack.
    """

    trace_key: Tuple[Any, ...]
    minigraph: bool
    est_length: int
    lanes: List[Tuple[RunSpec, Any]]   # (owning spec, machine config)


@dataclass
class TimingBatch:
    """One batched timing pass: ≤ ``max_lanes`` machine lanes, possibly
    spanning several decoded traces.

    A batch holds one :class:`LaneGroup` per distinct trace it drives —
    the cross-trace kernel (:meth:`repro.uarch.batch.BatchedTimingSimulator.
    from_lanes`) runs them as one pass, retiring short-trace lanes early.
    This is the planner's view of what :meth:`repro.api.session.Session.
    prime_timing` executes — inspectable before anything runs, and already
    partitioned to ``max_lanes`` so the per-pass memory bound is visible in
    the plan.
    """

    groups: List[LaneGroup]

    @property
    def lanes(self) -> List[Tuple[RunSpec, Any]]:
        """Every lane of the pass, group-major in execution order."""
        return [lane for group in self.groups for lane in group.lanes]

    @property
    def lane_count(self) -> int:
        return sum(len(group.lanes) for group in self.groups)

    @property
    def trace_count(self) -> int:
        return len(self.groups)

    @property
    def cross_trace(self) -> bool:
        """Whether the pass interleaves lanes over different traces."""
        return len(self.groups) > 1

    @property
    def minigraph(self) -> bool:
        return any(group.minigraph for group in self.groups)


def pack_lane_groups(shapes: List[Tuple[int, int]], max_lanes: int
                     ) -> List[List[Tuple[int, int, int]]]:
    """Greedy longest-first best-fit bin-pack of lane groups into passes.

    ``shapes`` is one ``(lane_count, est_length)`` per lane group in
    first-seen order; the result is one list per pass (bin) of
    ``(group_index, start, stop)`` lane slices, at most ``max_lanes`` lanes
    per pass.  Groups are packed longest-trace-first (ties broken by input
    order): each group first fills whole passes of ``max_lanes`` lanes, and
    its remainder is placed *whole* into the open pass with the least
    sufficient free space (earliest on ties) — never split, so sibling
    lanes over one trace stay in one pass and keep the kernel's
    behavior-key dedup — or opens a new pass.  Deterministic throughout;
    passes are returned in creation order.
    """
    order = sorted(range(len(shapes)),
                   key=lambda index: (-shapes[index][1], index))
    bins: List[List[Tuple[int, int, int]]] = []
    free: List[int] = []
    for index in order:
        count = shapes[index][0]
        start = 0
        while count - start >= max_lanes:
            bins.append([(index, start, start + max_lanes)])
            free.append(0)
            start += max_lanes
        remainder = count - start
        if not remainder:
            continue
        best = -1
        for position, slots in enumerate(free):
            if slots >= remainder and (best < 0 or slots < free[best]):
                best = position
        if best < 0:
            bins.append([(index, start, count)])
            free.append(max_lanes - remainder)
        else:
            bins[best].append((index, start, count))
            free[best] -= remainder
    return bins


def timing_batches(cells_or_specs: Iterable[Any],
                   max_lanes: Optional[int] = None) -> List[TimingBatch]:
    """Group the timing runs of cells (or bare specs) into batched passes.

    Mirrors the runtime grouping of :meth:`Session.prime_timing`: baseline
    timing lanes group by profile identity ``(source, input, budget)``,
    mini-graph lanes by trace identity + compressed layout, and duplicate
    (trace, machine) lanes collapse.  The lane groups are then bin-packed
    (:func:`pack_lane_groups`) into cross-trace passes of at most
    ``max_lanes`` machines (default
    :data:`repro.uarch.batch.DEFAULT_MAX_LANES`, bounding per-pass memory):
    a pass left under-filled by one trace's machines takes on the leftover
    lanes of other traces — longest estimated trace first, so small
    benchmarks ride along with large ones instead of serializing behind
    them.  Deterministic: groups form in first-lane order with lanes in
    input order, and the pack is a pure function of the group shapes.
    """
    from ..uarch.batch import DEFAULT_MAX_LANES
    if max_lanes is None:
        max_lanes = DEFAULT_MAX_LANES
    if max_lanes < 1:
        raise GridError(f"max_lanes must be positive, got {max_lanes}")
    groups: Dict[Tuple[Any, ...], Dict[Any, Tuple[RunSpec, Any]]] = {}
    for item in cells_or_specs:
        spec = item.spec if isinstance(item, GridCell) else item
        base_key = ("baseline",) + spec.stage_material("time_baseline")
        lanes = groups.setdefault(base_key, {})
        configs = [spec.resolved_baseline_machine]
        if spec.policy is None:
            configs.append(spec.resolved_machine)
        for config in configs:
            lanes.setdefault(config.resolve().key, (spec, config))
        if spec.policy is not None:
            config = spec.resolved_machine
            mg_key = ("minigraph",) + spec.stage_material("trace") \
                + (spec.compressed_layout,)
            groups.setdefault(mg_key, {}) \
                .setdefault(config.resolve().key, (spec, config))
    ordered: List[LaneGroup] = []
    for trace_key, lane_map in groups.items():
        lanes = list(lane_map.values())
        ordered.append(LaneGroup(
            trace_key=trace_key,
            minigraph=trace_key[0] == "minigraph",
            est_length=lanes[0][0].budget,
            lanes=lanes))
    bins = pack_lane_groups([(len(group.lanes), group.est_length)
                             for group in ordered], max_lanes)
    return [TimingBatch(groups=[
                LaneGroup(trace_key=ordered[index].trace_key,
                          minigraph=ordered[index].minigraph,
                          est_length=ordered[index].est_length,
                          lanes=ordered[index].lanes[start:stop])
                for index, start, stop in chunks])
            for chunks in bins]


def plan_cells(cells: Iterable[GridCell],
               grid: Optional[GridSpec] = None) -> GridPlan:
    """Group already-expanded cells into shared-artifact stages.

    The grouping behind :func:`plan_grid`, reusable for cell lists that
    never came from a :class:`GridSpec` — the serve daemon plans client
    submissions (pre-expanded on the client, where the grid's build
    closures live) through exactly this path, so concurrent daemon jobs
    get the same profile/compile dedup as local grid runs.

    Deterministic: stages appear in order of their first cell, compile
    groups in order of their first cell within the stage, and cells keep
    their input order within each group.
    """
    stages: Dict[Tuple[str, str, int], PlanStage] = {}
    groups: Dict[Tuple[Tuple[str, str, int], Any], CompileGroup] = {}
    for cell in cells:
        spec = cell.spec
        stage_key = (spec.source_id, spec.input_name, spec.budget)
        stage = stages.get(stage_key)
        if stage is None:
            stage = stages[stage_key] = PlanStage(key=stage_key)
        policy_key = None if spec.policy is None else canonical_key(spec.policy)
        group_key = (stage_key, policy_key)
        group = groups.get(group_key)
        if group is None:
            group = groups[group_key] = CompileGroup(policy_key=policy_key)
            stage.groups.append(group)
        group.cells.append(cell)
    return GridPlan(grid=grid, stages=list(stages.values()))


def plan_grid(grid: GridSpec) -> GridPlan:
    """Expand ``grid`` and group its cells into shared-artifact stages."""
    return plan_cells(grid.cells(), grid)
