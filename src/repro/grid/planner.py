"""Dependency-aware grid planning: cells → shared-artifact stages → shards.

Expanding a grid yields one :class:`~repro.grid.spec.GridCell` per (machine ×
policy × workload × budget) point, but executing each cell independently
would re-derive the expensive shared prefix of the pipeline — one functional
profile per (program, input, budget) and one front-end compile
(select/rewrite/trace) per (program, policy) — once per cell.  The planner
generalizes :meth:`repro.api.session.Session.sweep`'s grouping into an
explicit, inspectable plan:

* a :class:`PlanStage` per distinct profile identity ``(source, input,
  budget)`` — the unit shipped to one process-pool worker, where the shared
  stages run once and the interned decode metadata is reused by every
  timing run;
* a :class:`CompileGroup` per distinct selection policy inside a stage —
  cells of one group run consecutively so the front-end artifacts they share
  stay hot;
* deterministic ordering throughout (stages by first cell, groups by first
  cell, cells by expansion index), which is what makes sharding
  (:meth:`GridPlan.shard`) a partition: shard *i* of *N* takes every
  *N*-th stage, and the union of all shards is exactly the unsharded plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..api.keys import canonical_key
from ..api.spec import RunSpec
from .spec import GridCell, GridError, GridSpec


@dataclass
class CompileGroup:
    """Cells sharing one front-end compile: same program *and* policy."""

    policy_key: Any                  # canonical policy key; None = baseline
    cells: List[GridCell] = field(default_factory=list)


@dataclass
class PlanStage:
    """Cells sharing one profile identity ``(source, input, budget)``.

    One stage is one process-pool job: every cell in it reuses the stage's
    functional profile, and cells are ordered compile-group-major so each
    policy's select/rewrite/trace artifacts are computed once and reused
    while still hot.
    """

    key: Tuple[str, str, int]
    groups: List[CompileGroup] = field(default_factory=list)

    @property
    def cells(self) -> List[GridCell]:
        """Stage cells in execution order (compile-group-major)."""
        return [cell for group in self.groups for cell in group.cells]

    @property
    def cell_count(self) -> int:
        return sum(len(group.cells) for group in self.groups)

    @property
    def frontend_compiles(self) -> int:
        """Distinct front-end compiles (non-baseline policies) in the stage."""
        return sum(1 for group in self.groups if group.policy_key is not None)


@dataclass
class GridPlan:
    """A grid expanded and grouped into shared-artifact stages.

    ``grid`` is ``None`` for plans built from bare cells
    (:func:`plan_cells`) — e.g. the serve daemon planning a client's
    pre-expanded cell list.
    """

    grid: Optional[GridSpec]
    stages: List[PlanStage]
    shard: Optional[Tuple[int, int]] = None   # (index, count) when sharded

    @property
    def cell_count(self) -> int:
        return sum(stage.cell_count for stage in self.stages)

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def frontend_compiles(self) -> int:
        return sum(stage.frontend_compiles for stage in self.stages)

    @property
    def dedup_ratio(self) -> float:
        """Timing runs per shared-artifact stage (1.0 = nothing shared)."""
        if not self.stages:
            return 1.0
        return self.cell_count / len(self.stages)

    def cells(self) -> List[GridCell]:
        """Every planned cell, stage-major in execution order."""
        return [cell for stage in self.stages for cell in stage.cells]

    def timing_batches(self, max_lanes: Optional[int] = None
                       ) -> List["TimingBatch"]:
        """The machine-batched timing passes this plan's cells will ride.

        One batch per (shared decoded trace, ≤ ``max_lanes`` machines);
        see :func:`timing_batches`.  Batches are planned per stage — a
        stage is the unit shipped to one worker, so lanes never batch
        across stage boundaries.
        """
        return [batch for stage in self.stages
                for batch in timing_batches(stage.cells, max_lanes)]

    def take_shard(self, index: int, count: int) -> "GridPlan":
        """Shard ``index`` of ``count``: every ``count``-th stage.

        Sharding by *stage* (not by cell) keeps each shard's shared-artifact
        grouping intact — no shard ever recomputes another shard's front-end
        compile — and the shards partition the plan: their union is exactly
        the unsharded cell set.
        """
        if count <= 0:
            raise GridError(f"shard count must be positive, got {count}")
        if not 0 <= index < count:
            raise GridError(f"shard index {index} out of range for "
                            f"{count} shards (expected 0..{count - 1})")
        return GridPlan(grid=self.grid, stages=self.stages[index::count],
                        shard=(index, count))

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly plan summary."""
        return {
            "grid": None if self.grid is None else self.grid.name,
            "cells": self.cell_count,
            "stages": self.stage_count,
            "frontend_compiles": self.frontend_compiles,
            "dedup_ratio": self.dedup_ratio,
            "shard": None if self.shard is None
                     else f"{self.shard[0]}/{self.shard[1]}",
        }


@dataclass
class TimingBatch:
    """One batched timing pass: machine lanes sharing a decoded trace.

    ``trace_key`` identifies the shared trace artifact (profile identity
    for baseline lanes, trace identity + layout for mini-graph lanes);
    ``lanes`` holds one ``(spec, machine)`` pair per distinct machine the
    pass simulates.  This is the planner's view of what
    :meth:`repro.api.session.Session.prime_timing` executes — inspectable
    before anything runs, and already partitioned to ``max_lanes`` so the
    per-pass memory bound is visible in the plan.
    """

    trace_key: Tuple[Any, ...]
    minigraph: bool
    lanes: List[Tuple[RunSpec, Any]]   # (owning spec, machine config)

    @property
    def lane_count(self) -> int:
        return len(self.lanes)


def timing_batches(cells_or_specs: Iterable[Any],
                   max_lanes: Optional[int] = None) -> List[TimingBatch]:
    """Group the timing runs of cells (or bare specs) into batched passes.

    Mirrors the runtime grouping of :meth:`Session.prime_timing`: baseline
    timing lanes batch by profile identity ``(source, input, budget)``,
    mini-graph lanes by trace identity + compressed layout, duplicate
    (trace, machine) lanes collapse, and each group is split into passes of
    at most ``max_lanes`` machines (default
    :data:`repro.uarch.batch.DEFAULT_MAX_LANES`) to bound per-pass memory.
    Deterministic: groups appear in first-lane order, lanes in input order.
    """
    from ..uarch.batch import DEFAULT_MAX_LANES
    if max_lanes is None:
        max_lanes = DEFAULT_MAX_LANES
    if max_lanes < 1:
        raise GridError(f"max_lanes must be positive, got {max_lanes}")
    groups: Dict[Tuple[Any, ...], Dict[Any, Tuple[RunSpec, Any]]] = {}
    for item in cells_or_specs:
        spec = item.spec if isinstance(item, GridCell) else item
        base_key = ("baseline",) + spec.stage_material("time_baseline")
        lanes = groups.setdefault(base_key, {})
        configs = [spec.resolved_baseline_machine]
        if spec.policy is None:
            configs.append(spec.resolved_machine)
        for config in configs:
            lanes.setdefault(config.resolve().key, (spec, config))
        if spec.policy is not None:
            config = spec.resolved_machine
            mg_key = ("minigraph",) + spec.stage_material("trace") \
                + (spec.compressed_layout,)
            groups.setdefault(mg_key, {}) \
                .setdefault(config.resolve().key, (spec, config))
    batches: List[TimingBatch] = []
    for trace_key, lane_map in groups.items():
        lanes = list(lane_map.values())
        for start in range(0, len(lanes), max_lanes):
            batches.append(TimingBatch(
                trace_key=trace_key,
                minigraph=trace_key[0] == "minigraph",
                lanes=lanes[start:start + max_lanes]))
    return batches


def plan_cells(cells: Iterable[GridCell],
               grid: Optional[GridSpec] = None) -> GridPlan:
    """Group already-expanded cells into shared-artifact stages.

    The grouping behind :func:`plan_grid`, reusable for cell lists that
    never came from a :class:`GridSpec` — the serve daemon plans client
    submissions (pre-expanded on the client, where the grid's build
    closures live) through exactly this path, so concurrent daemon jobs
    get the same profile/compile dedup as local grid runs.

    Deterministic: stages appear in order of their first cell, compile
    groups in order of their first cell within the stage, and cells keep
    their input order within each group.
    """
    stages: Dict[Tuple[str, str, int], PlanStage] = {}
    groups: Dict[Tuple[Tuple[str, str, int], Any], CompileGroup] = {}
    for cell in cells:
        spec = cell.spec
        stage_key = (spec.source_id, spec.input_name, spec.budget)
        stage = stages.get(stage_key)
        if stage is None:
            stage = stages[stage_key] = PlanStage(key=stage_key)
        policy_key = None if spec.policy is None else canonical_key(spec.policy)
        group_key = (stage_key, policy_key)
        group = groups.get(group_key)
        if group is None:
            group = groups[group_key] = CompileGroup(policy_key=policy_key)
            stage.groups.append(group)
        group.cells.append(cell)
    return GridPlan(grid=grid, stages=list(stages.values()))


def plan_grid(grid: GridSpec) -> GridPlan:
    """Expand ``grid`` and group its cells into shared-artifact stages."""
    return plan_cells(grid.cells(), grid)
