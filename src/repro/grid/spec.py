"""Declarative experiment grids: axes in, lazily expanded :class:`RunSpec`\\ s out.

A :class:`GridSpec` declares a configuration-space sweep — the cross-product
of named :class:`Axis` values (machine × selection policy × workload × trace
length × anything else) — together with include/exclude predicates and a
``build`` function mapping each grid *point* (one value per axis) to the
:class:`~repro.api.spec.RunSpec` that realizes it.  Expansion is lazy: points
stream out of :func:`itertools.product` in axis order and are filtered and
built one at a time, so a million-cell grid costs nothing to declare.

Every included, built point becomes a :class:`GridCell` carrying a dense
``index`` (its position in the deterministic expansion order); the planner
(:mod:`repro.grid.planner`) groups cells into shared-artifact stages and the
engine (:mod:`repro.grid.engine`) executes them — sharded, resumable,
streaming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..api.spec import RunSpec


class GridError(ValueError):
    """Raised for malformed grid declarations or invocations."""


@dataclass(frozen=True)
class Axis:
    """One named dimension of a grid: a label and its ordered values."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise GridError("an Axis needs a non-empty name")
        values = tuple(self.values)
        object.__setattr__(self, "values", values)
        if not values:
            raise GridError(f"axis {self.name!r} has no values")
        if len(set(values)) != len(values):
            raise GridError(f"axis {self.name!r} has duplicate values")


#: A grid point: one value per axis, keyed by axis name.
GridPoint = Dict[str, Any]

#: Maps a point to its RunSpec; ``None`` excludes the point from the grid.
SpecBuilder = Callable[[GridPoint], Optional[RunSpec]]

#: Predicate over points; ``True`` excludes the point.
PointPredicate = Callable[[GridPoint], bool]


@dataclass(frozen=True)
class GridCell:
    """One included point of an expanded grid."""

    index: int                              # position in expansion order
    point: Tuple[Tuple[str, Any], ...]      # ordered (axis name, value) pairs
    spec: RunSpec

    @property
    def labels(self) -> GridPoint:
        """The point as an axis-name → value mapping."""
        return dict(self.point)


@dataclass(frozen=True)
class GridSpec:
    """A declarative machine/policy/workload cross-product.

    Attributes:
        name: stable identifier (catalog key, CLI ``--name``).
        axes: the grid's dimensions, outermost first; expansion order is
            the row-major product of the axis values.
        build: maps each surviving point to its ``RunSpec`` (``None`` drops
            the point — an inline include predicate).
        exclude: predicates applied before ``build``; a point matching any
            of them is dropped.
        title: human-readable description for listings and reports.
    """

    name: str
    axes: Tuple[Axis, ...]
    build: SpecBuilder = field(compare=False, repr=False, default=None)  # type: ignore[assignment]
    exclude: Tuple[PointPredicate, ...] = field(
        compare=False, repr=False, default=())
    title: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise GridError("a GridSpec needs a non-empty name")
        axes = tuple(self.axes)
        object.__setattr__(self, "axes", axes)
        if not axes:
            raise GridError(f"grid {self.name!r} declares no axes")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise GridError(f"grid {self.name!r} has duplicate axis names")
        if self.build is None:
            raise GridError(f"grid {self.name!r} needs a build function")

    # -- geometry ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(axis.values) for axis in self.axes)

    @property
    def point_count(self) -> int:
        """Points before predicates/build filtering (the full product)."""
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise GridError(f"grid {self.name!r} has no axis {name!r}")

    # -- expansion -----------------------------------------------------------------

    def points(self) -> Iterator[GridPoint]:
        """Lazily yield the surviving points in deterministic product order."""
        names = [axis.name for axis in self.axes]
        for combo in product(*(axis.values for axis in self.axes)):
            point = dict(zip(names, combo))
            if any(predicate(point) for predicate in self.exclude):
                continue
            yield point

    def cells(self) -> Iterator[GridCell]:
        """Lazily expand to :class:`GridCell`\\ s (points with built specs).

        Cell indices are dense over the *included* cells, in expansion
        order — the deterministic ordering sharding and result streaming
        key on.
        """
        index = 0
        for point in self.points():
            spec = self.build(point)
            if spec is None:
                continue
            yield GridCell(index=index, point=tuple(point.items()), spec=spec)
            index += 1
