"""repro: a reproduction of "Dataflow Mini-Graphs: Amplifying Superscalar
Capacity and Bandwidth" (Bracy, Prahlad, Roth — MICRO-37, 2004).

The package is organised bottom-up:

* :mod:`repro.isa` — the Alpha-inspired MGA instruction set and assembler;
* :mod:`repro.program` — static program model, basic blocks, CFG, liveness,
  profiles and the binary rewriter that plants mini-graph handles;
* :mod:`repro.minigraph` — the paper's contribution: candidate enumeration,
  greedy coverage-driven selection, selection policies and the MGT
  (MGHT/MGST);
* :mod:`repro.dise` — the DISE substrate used to commission application
  specific mini-graphs (productions, MGTT, MGPP);
* :mod:`repro.sim` — the functional (architectural) golden-model simulator;
* :mod:`repro.uarch` — the cycle-level out-of-order timing model with ALU
  pipelines and the sliding-window scheduler;
* :mod:`repro.workloads` — synthetic stand-ins for SPECint, MediaBench,
  CommBench and MiBench;
* :mod:`repro.experiments` — harnesses that regenerate every figure of the
  paper's evaluation.

The :func:`prepare_minigraph_run` helper below wires the common end-to-end
flow (profile -> select -> rewrite -> MGT -> traces) together for quick use;
the example scripts under ``examples/`` show it in context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .minigraph import (
    DEFAULT_POLICY,
    MiniGraphTable,
    MgtBuildOptions,
    SelectionPolicy,
    SelectionResult,
    select_minigraphs,
)
from .program import Program, rewrite_program
from .sim import FunctionalResult, run_program
from .sim.trace import Trace
from .uarch import (
    MachineConfig,
    PipelineStats,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
    simulate_program,
)
from .workloads import load_benchmark

__version__ = "1.0.0"


@dataclass
class MiniGraphRun:
    """Everything produced by :func:`prepare_minigraph_run` for one program."""

    original: Program
    baseline_result: FunctionalResult
    selection: SelectionResult
    mgt: MiniGraphTable
    rewritten: Program
    rewritten_result: FunctionalResult

    @property
    def coverage(self) -> float:
        """Fraction of dynamic instructions absorbed into handles."""
        return self.rewritten_result.trace.dynamic_coverage()

    def baseline_stats(self, config: Optional[MachineConfig] = None) -> PipelineStats:
        """Timing-simulate the original program."""
        machine = config or baseline_config()
        return simulate_program(self.original, self.baseline_result.trace, machine)

    def minigraph_stats(self, config: Optional[MachineConfig] = None) -> PipelineStats:
        """Timing-simulate the rewritten program on a mini-graph machine."""
        machine = config or integer_memory_minigraph_config()
        return simulate_program(self.rewritten, self.rewritten_result.trace, machine,
                                mgt=self.mgt)

    def speedup(self, *, baseline: Optional[MachineConfig] = None,
                minigraph: Optional[MachineConfig] = None) -> float:
        """Relative performance of the mini-graph machine over the baseline."""
        base = self.baseline_stats(baseline)
        mini = self.minigraph_stats(minigraph)
        return mini.ipc / base.ipc if base.ipc else 1.0


def prepare_minigraph_run(program: Program, *, policy: SelectionPolicy = DEFAULT_POLICY,
                          budget: int = 20_000,
                          mgt_options: Optional[MgtBuildOptions] = None) -> MiniGraphRun:
    """Run the complete flow (profile, select, rewrite, re-trace) for ``program``."""
    baseline_result = run_program(program, max_instructions=budget)
    selection = select_minigraphs(program, baseline_result.profile, policy=policy)
    mgt = MiniGraphTable.from_selection(selection, mgt_options)
    rewritten = rewrite_program(program, selection.rewrite_sites()).program
    rewritten_result = run_program(rewritten, mgt=mgt, max_instructions=budget)
    return MiniGraphRun(
        original=program,
        baseline_result=baseline_result,
        selection=selection,
        mgt=mgt,
        rewritten=rewritten,
        rewritten_result=rewritten_result,
    )


__all__ = [
    "__version__",
    "MiniGraphRun",
    "prepare_minigraph_run",
    "load_benchmark",
    "run_program",
    "select_minigraphs",
    "rewrite_program",
    "simulate_program",
    "baseline_config",
    "integer_minigraph_config",
    "integer_memory_minigraph_config",
    "DEFAULT_POLICY",
    "MiniGraphTable",
    "MgtBuildOptions",
    "SelectionPolicy",
    "MachineConfig",
    "PipelineStats",
]
