"""repro: a reproduction of "Dataflow Mini-Graphs: Amplifying Superscalar
Capacity and Bandwidth" (Bracy, Prahlad, Roth — MICRO-37, 2004).

The package is organised bottom-up:

* :mod:`repro.isa` — the Alpha-inspired MGA instruction set and assembler;
* :mod:`repro.program` — static program model, basic blocks, CFG, liveness,
  profiles and the binary rewriter that plants mini-graph handles;
* :mod:`repro.minigraph` — the paper's contribution: candidate enumeration,
  greedy coverage-driven selection, selection policies and the MGT
  (MGHT/MGST);
* :mod:`repro.dise` — the DISE substrate used to commission application
  specific mini-graphs (productions, MGTT, MGPP);
* :mod:`repro.sim` — the functional (architectural) golden-model simulator;
* :mod:`repro.uarch` — the cycle-level out-of-order timing model with ALU
  pipelines and the sliding-window scheduler;
* :mod:`repro.workloads` — synthetic stand-ins for SPECint, MediaBench,
  CommBench and MiBench;
* :mod:`repro.api` — the unified pipeline front door: declarative
  :class:`~repro.api.RunSpec`, the stage-graph caching
  :class:`~repro.api.Session`, the content-addressed
  :class:`~repro.api.ArtifactStore` and the ``python -m repro`` CLI;
* :mod:`repro.experiments` — harnesses that regenerate every figure of the
  paper's evaluation (thin layers over :mod:`repro.api`).

:func:`prepare_minigraph_run` below is the historical quick-use helper; it is
now a compatibility shim over :class:`repro.api.Session` and new code should
use the session API directly (see ``README.md`` for migration notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .minigraph import (
    DEFAULT_POLICY,
    MiniGraphTable,
    MgtBuildOptions,
    SelectionPolicy,
    SelectionResult,
    select_minigraphs,
)
from .program import Program, rewrite_program
from .program.profile import BlockProfile
from .sim import FunctionalResult, run_program
from .sim.trace import Trace
from .uarch import (
    MachineConfig,
    PipelineStats,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
    simulate_program,
)
from .workloads import load_benchmark

# 1.4.0: machine-shape (name-free MachineSpec) cache keying + the grid
# engine's row artifacts invalidate every pre-grid persisted cache entry.
__version__ = "1.4.0"

from .api import ArtifactStore, RunArtifacts, RunSpec, Session  # noqa: E402


@dataclass
class FunctionalView:
    """Trace/profile view compatible with :class:`~repro.sim.FunctionalResult`.

    :func:`prepare_minigraph_run` caches through :class:`repro.api.Session`,
    whose profile/trace stages deliberately drop the architectural state
    (registers, memory image) that a full functional result carries; this
    view keeps the attributes the run object's consumers actually use.
    """

    program_name: str
    profile: Optional[BlockProfile]
    trace: Trace


@dataclass
class MiniGraphRun:
    """Everything produced by :func:`prepare_minigraph_run` for one program."""

    original: Program
    baseline_result: FunctionalView
    selection: SelectionResult
    mgt: MiniGraphTable
    rewritten: Program
    rewritten_result: FunctionalView
    _session: Optional[Session] = field(default=None, repr=False, compare=False)
    _spec: Optional[RunSpec] = field(default=None, repr=False, compare=False)

    @property
    def coverage(self) -> float:
        """Fraction of dynamic instructions absorbed into handles."""
        return self.rewritten_result.trace.dynamic_coverage()

    def baseline_stats(self, config: Optional[MachineConfig] = None) -> PipelineStats:
        """Timing-simulate the original program."""
        machine = config or baseline_config()
        if self._session is not None and self._spec is not None:
            return self._session.baseline_timing(self._spec, machine)
        return simulate_program(self.original, self.baseline_result.trace, machine)

    def minigraph_stats(self, config: Optional[MachineConfig] = None) -> PipelineStats:
        """Timing-simulate the rewritten program on a mini-graph machine."""
        machine = config or integer_memory_minigraph_config()
        if self._session is not None and self._spec is not None:
            return self._session.minigraph_timing(self._spec, machine)
        return simulate_program(self.rewritten, self.rewritten_result.trace, machine,
                                mgt=self.mgt)

    def speedup(self, *, baseline: Optional[MachineConfig] = None,
                minigraph: Optional[MachineConfig] = None) -> float:
        """Relative performance of the mini-graph machine over the baseline.

        Returns ``nan`` (rather than a misleading 1.0) when the baseline
        retired no instructions.
        """
        base = self.baseline_stats(baseline)
        mini = self.minigraph_stats(minigraph)
        if base.ipc == 0.0:
            return float("nan")
        return mini.ipc / base.ipc


def prepare_minigraph_run(program: Program, *, policy: SelectionPolicy = DEFAULT_POLICY,
                          budget: int = 20_000,
                          mgt_options: Optional[MgtBuildOptions] = None,
                          session: Optional[Session] = None) -> MiniGraphRun:
    """Run the complete flow (profile, select, rewrite, re-trace) for ``program``.

    Compatibility shim over :class:`repro.api.Session`: pass ``session`` to
    share its artifact store (and disk cache) across calls; otherwise a
    private in-memory session is used.
    """
    session = session if session is not None else Session()
    spec = RunSpec.for_program(program, policy=policy, budget=budget,
                               mgt_options=mgt_options)
    # Only the functional stages run here; timing is on demand through
    # baseline_stats/minigraph_stats (and cached in the same session).
    return MiniGraphRun(
        original=session.program(spec),
        baseline_result=FunctionalView(program_name=program.name,
                                       profile=session.profile(spec),
                                       trace=session.baseline_trace(spec)),
        selection=session.selection(spec),
        mgt=session.mgt(spec),
        rewritten=session.rewritten(spec),
        rewritten_result=FunctionalView(program_name=program.name,
                                        profile=None,
                                        trace=session.minigraph_trace(spec)),
        _session=session,
        _spec=spec,
    )


__all__ = [
    "__version__",
    "ArtifactStore",
    "FunctionalView",
    "MiniGraphRun",
    "RunArtifacts",
    "RunSpec",
    "Session",
    "prepare_minigraph_run",
    "load_benchmark",
    "run_program",
    "select_minigraphs",
    "rewrite_program",
    "simulate_program",
    "baseline_config",
    "integer_minigraph_config",
    "integer_memory_minigraph_config",
    "DEFAULT_POLICY",
    "MiniGraphTable",
    "MgtBuildOptions",
    "SelectionPolicy",
    "MachineConfig",
    "PipelineStats",
]
