"""The MGA instruction set: opcodes, registers, instructions and assembler.

This package defines the Alpha-inspired RISC ISA that the rest of the
reproduction is built on.  The public surface is:

* :mod:`repro.isa.opcodes` — opcode table (:func:`opcode`, :class:`OpSpec`,
  :class:`OpClass`).
* :mod:`repro.isa.registers` — register namespace and helpers.
* :mod:`repro.isa.instruction` — the :class:`Instruction` dataclass and the
  handle constructor :func:`make_handle`.
* :mod:`repro.isa.assembler` — a two-pass assembler for textual kernels.
* :mod:`repro.isa.encoding` — fixed-width binary encoding, used to verify that
  handles fit in a singleton instruction word and to measure code size.
"""

from .instruction import (
    INSTRUCTION_BYTES,
    Instruction,
    format_instruction,
    make_halt,
    make_handle,
    make_nop,
)
from .opcodes import (
    OpClass,
    OpSpec,
    UnknownOpcodeError,
    all_opcodes,
    has_opcode,
    opcode,
    opcodes_in_class,
)
from .registers import (
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    ZERO_REG,
    FP_ZERO_REG,
    RegisterError,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
    is_zero_reg,
    parse_reg,
    reg_name,
)
from .assembler import Assembler, AssemblerError, AssembledUnit, assemble
from .encoding import (
    EncodedInstruction,
    EncodingError,
    MAX_MGID,
    decode_handle,
    decode_opcode,
    encode_instruction,
    static_code_bytes,
)

__all__ = [
    "INSTRUCTION_BYTES",
    "Instruction",
    "format_instruction",
    "make_halt",
    "make_handle",
    "make_nop",
    "OpClass",
    "OpSpec",
    "UnknownOpcodeError",
    "all_opcodes",
    "has_opcode",
    "opcode",
    "opcodes_in_class",
    "NUM_ARCH_REGS",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "ZERO_REG",
    "FP_ZERO_REG",
    "RegisterError",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "is_int_reg",
    "is_zero_reg",
    "parse_reg",
    "reg_name",
    "Assembler",
    "AssemblerError",
    "AssembledUnit",
    "assemble",
    "EncodedInstruction",
    "EncodingError",
    "MAX_MGID",
    "decode_handle",
    "decode_opcode",
    "encode_instruction",
    "static_code_bytes",
]
