"""Instruction representation for the MGA ISA.

An :class:`Instruction` is a static instruction: an opcode plus register and
immediate operands and, for control transfers, a symbolic target label.  The
assembler produces a list of instructions with resolved targets; the program
model assigns each one a PC.

Instructions are deliberately plain data.  Semantics live in
:mod:`repro.sim.functional` and timing behaviour lives in :mod:`repro.uarch`;
both consult :mod:`repro.isa.opcodes` for operand usage so the pieces cannot
disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .opcodes import OpClass, OpSpec, opcode
from .registers import ZERO_REG, is_zero_reg, reg_name

#: Instruction size in bytes (fixed-width encoding).
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """A static MGA instruction.

    Attributes:
        op: mnemonic (must exist in the opcode table).
        rd: destination register number, or None if the opcode writes nothing.
        rs1: first source register number, or None.
        rs2: second source register number, or None.
        imm: immediate operand (ALU immediate, memory displacement, branch
            displacement once resolved, or the MGID of a handle).
        target: symbolic label for control transfers; resolved by the
            assembler into ``imm`` (an absolute target PC) but kept for
            readability and for re-layout by the binary rewriter.
    """

    op: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[str] = None

    def __post_init__(self) -> None:
        # Validate against the opcode table eagerly so malformed instructions
        # fail at construction time rather than deep inside a simulator loop.
        spec = opcode(self.op)
        if spec.writes_rd and self.rd is None:
            raise ValueError(f"{self.op}: missing destination register")
        if spec.reads_rs1 and self.rs1 is None:
            raise ValueError(f"{self.op}: missing first source register")
        if spec.reads_rs2 and self.rs2 is None:
            raise ValueError(f"{self.op}: missing second source register")

    # -- static properties ---------------------------------------------------

    @property
    def spec(self) -> OpSpec:
        """The :class:`OpSpec` describing this instruction's opcode."""
        return opcode(self.op)

    @property
    def is_control(self) -> bool:
        return self.spec.is_control

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.spec.is_branch

    @property
    def is_conditional(self) -> bool:
        return self.spec.op_class is OpClass.BRANCH

    @property
    def is_direct_control(self) -> bool:
        """True for control transfers whose target is encoded statically."""
        return self.spec.op_class in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL)

    @property
    def is_indirect_control(self) -> bool:
        return self.spec.op_class is OpClass.INDIRECT

    @property
    def is_load(self) -> bool:
        return self.spec.is_load

    @property
    def is_store(self) -> bool:
        return self.spec.is_store

    @property
    def is_memory(self) -> bool:
        return self.spec.is_memory

    @property
    def is_nop(self) -> bool:
        return self.spec.op_class is OpClass.NOP

    @property
    def is_halt(self) -> bool:
        return self.spec.op_class is OpClass.HALT

    @property
    def is_handle(self) -> bool:
        """True if this is a mini-graph handle (``mg``)."""
        return self.spec.op_class is OpClass.MG

    @property
    def is_fp(self) -> bool:
        return self.spec.is_fp

    @property
    def mgid(self) -> int:
        """MGID of a handle instruction."""
        if not self.is_handle:
            raise ValueError("mgid is only defined for mg handles")
        if self.imm is None:
            raise ValueError("mg handle has no MGID immediate")
        return self.imm

    # -- dataflow ------------------------------------------------------------

    def source_registers(self) -> tuple[int, ...]:
        """Registers read by this instruction (zero registers excluded).

        The hardwired zero register is excluded because it never creates a
        dependence; this matches how renaming treats it.  Conditional moves
        additionally read their destination register (the not-moved case keeps
        the old value), which matters to liveness and mini-graph interface
        analysis.
        """
        spec = self.spec
        sources = []
        if spec.reads_rs1 and self.rs1 is not None and not is_zero_reg(self.rs1):
            sources.append(self.rs1)
        if spec.reads_rs2 and self.rs2 is not None and not is_zero_reg(self.rs2):
            sources.append(self.rs2)
        if self.op in ("cmovne", "cmoveq") and self.rd is not None \
                and not is_zero_reg(self.rd) and self.rd not in sources:
            sources.append(self.rd)
        return tuple(sources)

    def destination_register(self) -> Optional[int]:
        """Register written by this instruction, or None.

        Writes to the hardwired zero register are discarded and reported as
        no destination.
        """
        spec = self.spec
        if not spec.writes_rd or self.rd is None or is_zero_reg(self.rd):
            return None
        return self.rd

    def reads_register(self, reg: int) -> bool:
        """True if this instruction reads architectural register ``reg``."""
        return reg in self.source_registers()

    def writes_register(self, reg: int) -> bool:
        """True if this instruction writes architectural register ``reg``."""
        return self.destination_register() == reg

    # -- rewriting helpers ---------------------------------------------------

    def with_target(self, target: str, imm: Optional[int] = None) -> "Instruction":
        """Return a copy with a new control-transfer target."""
        return replace(self, target=target, imm=imm)

    def with_imm(self, imm: int) -> "Instruction":
        """Return a copy with a new immediate."""
        return replace(self, imm=imm)

    def renamed(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with register operands substituted via ``mapping``.

        Registers not present in the mapping are left untouched.  Used by the
        DISE engine when instantiating replacement-sequence templates.
        """
        def sub(reg: Optional[int]) -> Optional[int]:
            if reg is None:
                return None
            return mapping.get(reg, reg)

        return replace(self, rd=sub(self.rd), rs1=sub(self.rs1), rs2=sub(self.rs2))

    # -- formatting ----------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return format_instruction(self)


def format_instruction(insn: Instruction) -> str:
    """Render an instruction in assembly syntax.

    The format mirrors the paper's examples, e.g. ``addl r18,2,r18``,
    ``ldq r2,16(r4)``, ``bne r7,loop`` and ``mg r18,r5,r18,12``.
    """
    spec = insn.spec
    if spec.op_class is OpClass.NOP:
        return "nop"
    if spec.op_class is OpClass.HALT:
        return "halt"
    if spec.op_class is OpClass.MG:
        rs1 = reg_name(insn.rs1) if insn.rs1 is not None else "-"
        rs2 = reg_name(insn.rs2) if insn.rs2 is not None else "-"
        rd = reg_name(insn.rd) if insn.rd is not None else "-"
        return f"mg {rs1},{rs2},{rd},{insn.imm}"
    if spec.is_load:
        return f"{insn.op} {reg_name(insn.rd)},{insn.imm or 0}({reg_name(insn.rs1)})"
    if spec.is_store:
        return f"{insn.op} {reg_name(insn.rs2)},{insn.imm or 0}({reg_name(insn.rs1)})"
    if spec.op_class is OpClass.BRANCH:
        target = insn.target if insn.target is not None else hex(insn.imm or 0)
        return f"{insn.op} {reg_name(insn.rs1)},{target}"
    if spec.op_class is OpClass.JUMP:
        target = insn.target if insn.target is not None else hex(insn.imm or 0)
        return f"{insn.op} {target}"
    if spec.op_class is OpClass.CALL:
        target = insn.target if insn.target is not None else hex(insn.imm or 0)
        return f"{insn.op} {reg_name(insn.rd)},{target}"
    if spec.op_class is OpClass.INDIRECT:
        return f"{insn.op} {reg_name(insn.rs1)}"
    # ALU / MUL / FP forms.
    parts = []
    if spec.reads_rs1:
        parts.append(reg_name(insn.rs1))
    if spec.reads_rs2:
        parts.append(reg_name(insn.rs2))
    if spec.has_imm:
        parts.append(str(insn.imm))
    if spec.writes_rd:
        parts.append(reg_name(insn.rd))
    return f"{insn.op} " + ",".join(parts)


# -- construction helpers used throughout the code base ----------------------

def make_nop() -> Instruction:
    """Return a canonical nop."""
    return Instruction("nop")


def make_halt() -> Instruction:
    """Return a halt instruction."""
    return Instruction("halt")


def make_handle(rs1: Optional[int], rs2: Optional[int], rd: Optional[int],
                mgid: int) -> Instruction:
    """Build a mini-graph handle.

    Handles always carry three register fields; unused ones are encoded as the
    zero register so that renaming machinery can treat every handle uniformly.
    """
    return Instruction(
        "mg",
        rd=rd if rd is not None else ZERO_REG,
        rs1=rs1 if rs1 is not None else ZERO_REG,
        rs2=rs2 if rs2 is not None else ZERO_REG,
        imm=mgid,
    )
