"""Bit-level encoding of MGA instructions and mini-graph handles.

The simulators operate on :class:`~repro.isa.instruction.Instruction`
objects, but the handle format matters to the paper: a handle must fit in a
normal fixed-width instruction word (reserved opcode, two source specifiers,
one destination specifier, and an immediate MGID field).  This module
provides an encoder/decoder pair so that tests can verify the handle format
actually fits, and so the binary rewriter can report static code size.

Encoding layout (32 bits)::

    [31:26] opcode index        (6 bits, up to 64 opcodes per group)
    [25:24] opcode group        (2 bits)
    [23:18] rd                  (6 bits, 64 architected registers)
    [17:12] rs1                 (6 bits)
    [11: 6] rs2                 (6 bits)
    [ 5: 0] short immediate     (6 bits)

Instructions whose immediate does not fit in 6 bits are encoded as two words
(an ``extended`` encoding); the handle's MGID field is 11 bits wide (2K MGT
entries, the largest configuration the paper evaluates), borrowing the rs2
field, since a handle has at most two explicit sources and the MGID replaces
the short immediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .instruction import Instruction
from .opcodes import all_opcodes
from .registers import ZERO_REG

#: Maximum MGID encodable in a handle (11 bits -> 2048 entries).
MAX_MGID = 2047
#: Short immediates fit in a signed 6-bit field.
_SHORT_IMM_MIN = -32
_SHORT_IMM_MAX = 31

_OPCODE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(sorted(all_opcodes()))}
_INDEX_OPCODE: Dict[int, str] = {i: name for name, i in _OPCODE_INDEX.items()}


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded."""


@dataclass(frozen=True)
class EncodedInstruction:
    """One encoded instruction: a primary word plus optional immediate word."""

    word: int
    extension: int | None = None

    @property
    def size_bytes(self) -> int:
        """Static size of the encoding in bytes."""
        return 4 if self.extension is None else 8


def _field(value: int, width: int) -> int:
    mask = (1 << width) - 1
    return value & mask


def encode_instruction(insn: Instruction) -> EncodedInstruction:
    """Encode an instruction into its binary form.

    Handles are always single-word; other instructions become two words when
    their immediate exceeds the short-immediate range.
    """
    opcode_index = _OPCODE_INDEX[insn.op]
    rd = insn.rd if insn.rd is not None else ZERO_REG
    rs1 = insn.rs1 if insn.rs1 is not None else ZERO_REG
    rs2 = insn.rs2 if insn.rs2 is not None else ZERO_REG
    imm = insn.imm if insn.imm is not None else 0

    if insn.is_handle:
        if not 0 <= imm <= MAX_MGID:
            raise EncodingError(
                f"MGID {imm} does not fit in the {MAX_MGID + 1}-entry handle field")
        word = (_field(opcode_index, 8) << 24) | (_field(rd, 6) << 18) \
            | (_field(rs1, 6) << 12) | (_field(imm, 11) << 1) | 1
        return EncodedInstruction(word=word)

    short = _SHORT_IMM_MIN <= imm <= _SHORT_IMM_MAX
    word = (_field(opcode_index, 8) << 24) | (_field(rd, 6) << 18) \
        | (_field(rs1, 6) << 12) | (_field(rs2, 6) << 6) \
        | (_field(imm if short else 0, 6))
    extension = None if short else imm & 0xFFFFFFFF
    return EncodedInstruction(word=word, extension=extension)


def decode_opcode(encoded: EncodedInstruction) -> str:
    """Recover the mnemonic from an encoded instruction."""
    index = (encoded.word >> 24) & 0xFF
    if index not in _INDEX_OPCODE:
        raise EncodingError(f"unknown opcode index {index}")
    return _INDEX_OPCODE[index]


def decode_handle(encoded: EncodedInstruction) -> Tuple[int, int, int, int]:
    """Decode a handle word into ``(rs1, rs2, rd, mgid)``.

    Handles encode rs2 implicitly as the zero register when absent; callers
    that need the true interface width should consult the MGT.
    """
    if not encoded.word & 1:
        raise EncodingError("not a handle encoding")
    rd = (encoded.word >> 18) & 0x3F
    rs1 = (encoded.word >> 12) & 0x3F
    mgid = (encoded.word >> 1) & 0x7FF
    return rs1, ZERO_REG, rd, mgid


def static_code_bytes(instructions: List[Instruction]) -> int:
    """Total static code size of ``instructions`` using this encoding."""
    return sum(encode_instruction(insn).size_bytes for insn in instructions)
