"""Opcode definitions for the MGA (mini-graph architecture) ISA.

The ISA is a small Alpha-inspired RISC instruction set that is rich enough to
express the workload kernels and the mini-graph idioms shown in the paper
(``addl``, ``cmplt``, ``bne``, ``ldq``, ``srl``, ``and``, ``s8addl``, ...).

Each opcode is described by an :class:`OpSpec` containing its functional
class, nominal execution latency, operand usage and semantics.  The timing
model and the functional simulator both consult this table so the two can
never disagree about what an instruction reads or writes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class OpClass(enum.Enum):
    """Functional class of an opcode (what kind of unit executes it)."""

    ALU = "alu"            # single-cycle integer
    MUL = "mul"            # multi-cycle integer multiply
    FP = "fp"              # pipelined floating point add/compare/convert
    FPMUL = "fpmul"        # floating point multiply
    FPDIV = "fpdiv"        # unpipelined floating point divide
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional direct branch
    JUMP = "jump"          # unconditional direct branch
    CALL = "call"          # direct call (writes return address)
    INDIRECT = "indirect"  # indirect jump / return
    MG = "mg"              # mini-graph handle (quasi-instruction)
    NOP = "nop"
    HALT = "halt"


#: Opcode classes that transfer control.
CONTROL_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.INDIRECT, OpClass.HALT}
)

#: Opcode classes that reference memory.
MEMORY_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

#: Opcode classes eligible for inclusion in mini-graphs (single-cycle integer
#: operations plus at most one memory operation and one terminal branch).
MINIGRAPH_ELIGIBLE_CLASSES = frozenset(
    {OpClass.ALU, OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.JUMP}
)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    Attributes:
        name: assembly mnemonic.
        op_class: functional class (selects the functional unit).
        latency: nominal execution latency in cycles (loads use the cache
            model instead; this is the minimum/L1-hit latency).
        reads_rs1: whether the first source register is read.
        reads_rs2: whether the second source register is read (register form).
        writes_rd: whether a destination register is written.
        has_imm: whether the opcode carries an immediate operand.
        commutative: whether ``a OP b == b OP a`` (used by the optimizer and
            by property tests).
        description: one-line human description.
    """

    name: str
    op_class: OpClass
    latency: int = 1
    reads_rs1: bool = True
    reads_rs2: bool = True
    writes_rd: bool = True
    has_imm: bool = False
    commutative: bool = False
    description: str = ""

    @property
    def is_control(self) -> bool:
        """True if the opcode transfers control."""
        return self.op_class in CONTROL_CLASSES

    @property
    def is_memory(self) -> bool:
        """True if the opcode references memory."""
        return self.op_class in MEMORY_CLASSES

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        """True for conditional branches only."""
        return self.op_class is OpClass.BRANCH

    @property
    def is_single_cycle_int(self) -> bool:
        """True for single-cycle integer ALU operations."""
        return self.op_class is OpClass.ALU

    @property
    def is_fp(self) -> bool:
        return self.op_class in (OpClass.FP, OpClass.FPMUL, OpClass.FPDIV)

    @property
    def minigraph_eligible(self) -> bool:
        """True if instructions of this opcode may appear inside mini-graphs."""
        return self.op_class in MINIGRAPH_ELIGIBLE_CLASSES


_OPCODES: Dict[str, OpSpec] = {}


def _define(spec: OpSpec) -> OpSpec:
    if spec.name in _OPCODES:
        raise ValueError(f"duplicate opcode definition: {spec.name}")
    _OPCODES[spec.name] = spec
    return spec


def _alu(name: str, *, has_imm: bool = False, commutative: bool = False,
         reads_rs2: bool = True, description: str = "") -> OpSpec:
    return _define(
        OpSpec(
            name=name,
            op_class=OpClass.ALU,
            latency=1,
            reads_rs1=True,
            reads_rs2=reads_rs2 and not has_imm,
            writes_rd=True,
            has_imm=has_imm,
            commutative=commutative,
            description=description,
        )
    )


# ---------------------------------------------------------------------------
# Integer ALU operations (register and immediate forms).
# ---------------------------------------------------------------------------
_alu("addl", commutative=True, description="32-bit add (sign extended)")
_alu("addli", has_imm=True, description="32-bit add immediate")
_alu("addq", commutative=True, description="64-bit add")
_alu("addqi", has_imm=True, description="64-bit add immediate")
_alu("subl", description="32-bit subtract")
_alu("subli", has_imm=True, description="32-bit subtract immediate")
_alu("subq", description="64-bit subtract")
_alu("subqi", has_imm=True, description="64-bit subtract immediate")
_alu("and", commutative=True, description="bitwise and")
_alu("andi", has_imm=True, description="bitwise and immediate")
_alu("bis", commutative=True, description="bitwise or (Alpha 'bis')")
_alu("bisi", has_imm=True, description="bitwise or immediate")
_alu("xor", commutative=True, description="bitwise exclusive or")
_alu("xori", has_imm=True, description="bitwise exclusive or immediate")
_alu("bic", description="bit clear: rs1 & ~rs2")
_alu("ornot", description="or with complement: rs1 | ~rs2")
_alu("sll", description="shift left logical")
_alu("slli", has_imm=True, description="shift left logical immediate")
_alu("srl", description="shift right logical")
_alu("srli", has_imm=True, description="shift right logical immediate")
_alu("sra", description="shift right arithmetic")
_alu("srai", has_imm=True, description="shift right arithmetic immediate")
_alu("cmpeq", commutative=True, description="compare equal (result 0/1)")
_alu("cmpeqi", has_imm=True, description="compare equal immediate")
_alu("cmplt", description="compare signed less-than")
_alu("cmplti", has_imm=True, description="compare signed less-than immediate")
_alu("cmple", description="compare signed less-or-equal")
_alu("cmplei", has_imm=True, description="compare signed less-or-equal immediate")
_alu("cmpult", description="compare unsigned less-than")
_alu("cmpulti", has_imm=True, description="compare unsigned less-than immediate")
_alu("cmovne", description="conditional move if rs1 != 0 (rd = rs2)")
_alu("cmoveq", description="conditional move if rs1 == 0 (rd = rs2)")
_alu("s4addl", description="scaled add: (rs1 << 2) + rs2")
_alu("s8addl", description="scaled add: (rs1 << 3) + rs2")
_alu("s4addli", has_imm=True, description="scaled add immediate: (rs1 << 2) + imm")
_alu("s8addli", has_imm=True, description="scaled add immediate: (rs1 << 3) + imm")
_alu("lda", has_imm=True, description="load address: rd = rs1 + imm")
_alu("ldah", has_imm=True, description="load address high: rd = rs1 + (imm << 16)")
_alu("extbl", description="extract byte low: (rs1 >> (8 * rs2)) & 0xff")
_alu("extbli", has_imm=True, description="extract byte low immediate")
_alu("insbl", description="insert byte low: (rs1 & 0xff) << (8 * rs2)")
_alu("mskbl", description="mask byte low: rs1 & ~(0xff << (8 * rs2))")
_alu("zapnot", has_imm=True, description="zero bytes not selected by the imm mask")
_alu("sextb", reads_rs2=False, description="sign extend byte")
_alu("sextw", reads_rs2=False, description="sign extend 16-bit word")
_alu("popcount", reads_rs2=False, description="population count of rs1")
_alu("clz", reads_rs2=False, description="count leading zeros of rs1 (64-bit)")

# ---------------------------------------------------------------------------
# Multi-cycle integer operations.
# ---------------------------------------------------------------------------
_define(OpSpec("mull", OpClass.MUL, latency=7, commutative=True,
               description="32-bit multiply"))
_define(OpSpec("mulq", OpClass.MUL, latency=7, commutative=True,
               description="64-bit multiply"))
_define(OpSpec("mulli", OpClass.MUL, latency=7, has_imm=True, reads_rs2=False,
               description="32-bit multiply immediate"))

# ---------------------------------------------------------------------------
# Floating point operations.
# ---------------------------------------------------------------------------
_define(OpSpec("addt", OpClass.FP, latency=4, commutative=True,
               description="FP add"))
_define(OpSpec("subt", OpClass.FP, latency=4, description="FP subtract"))
_define(OpSpec("cmptlt", OpClass.FP, latency=4, description="FP compare less-than"))
_define(OpSpec("cvtqt", OpClass.FP, latency=4, reads_rs2=False,
               description="convert integer to FP"))
_define(OpSpec("cvttq", OpClass.FP, latency=4, reads_rs2=False,
               description="convert FP to integer (truncate)"))
_define(OpSpec("mult", OpClass.FPMUL, latency=4, commutative=True,
               description="FP multiply"))
_define(OpSpec("divt", OpClass.FPDIV, latency=12, description="FP divide"))
_define(OpSpec("sqrtt", OpClass.FPDIV, latency=18, reads_rs2=False,
               description="FP square root"))

# ---------------------------------------------------------------------------
# Memory operations.  Address is always rs1 + imm; stores read the stored
# value from rs2.
# ---------------------------------------------------------------------------
_define(OpSpec("ldq", OpClass.LOAD, latency=2, reads_rs2=False, has_imm=True,
               description="load 64-bit quadword"))
_define(OpSpec("ldl", OpClass.LOAD, latency=2, reads_rs2=False, has_imm=True,
               description="load 32-bit longword (sign extended)"))
_define(OpSpec("ldbu", OpClass.LOAD, latency=2, reads_rs2=False, has_imm=True,
               description="load byte unsigned"))
_define(OpSpec("ldwu", OpClass.LOAD, latency=2, reads_rs2=False, has_imm=True,
               description="load 16-bit word unsigned"))
_define(OpSpec("ldt", OpClass.LOAD, latency=2, reads_rs2=False, has_imm=True,
               description="load FP quadword"))
_define(OpSpec("stq", OpClass.STORE, latency=1, reads_rs2=True, writes_rd=False,
               has_imm=True, description="store 64-bit quadword"))
_define(OpSpec("stl", OpClass.STORE, latency=1, reads_rs2=True, writes_rd=False,
               has_imm=True, description="store 32-bit longword"))
_define(OpSpec("stb", OpClass.STORE, latency=1, reads_rs2=True, writes_rd=False,
               has_imm=True, description="store byte"))
_define(OpSpec("stt", OpClass.STORE, latency=1, reads_rs2=True, writes_rd=False,
               has_imm=True, description="store FP quadword"))

# ---------------------------------------------------------------------------
# Control transfers.  Conditional branches test rs1 against zero (Alpha
# style); the compare-then-branch idiom of the paper (cmplt + bne) falls out
# naturally.
# ---------------------------------------------------------------------------
_define(OpSpec("beq", OpClass.BRANCH, latency=1, reads_rs2=False, writes_rd=False,
               has_imm=True, description="branch if rs1 == 0"))
_define(OpSpec("bne", OpClass.BRANCH, latency=1, reads_rs2=False, writes_rd=False,
               has_imm=True, description="branch if rs1 != 0"))
_define(OpSpec("blt", OpClass.BRANCH, latency=1, reads_rs2=False, writes_rd=False,
               has_imm=True, description="branch if rs1 < 0"))
_define(OpSpec("bge", OpClass.BRANCH, latency=1, reads_rs2=False, writes_rd=False,
               has_imm=True, description="branch if rs1 >= 0"))
_define(OpSpec("bgt", OpClass.BRANCH, latency=1, reads_rs2=False, writes_rd=False,
               has_imm=True, description="branch if rs1 > 0"))
_define(OpSpec("ble", OpClass.BRANCH, latency=1, reads_rs2=False, writes_rd=False,
               has_imm=True, description="branch if rs1 <= 0"))
_define(OpSpec("br", OpClass.JUMP, latency=1, reads_rs1=False, reads_rs2=False,
               writes_rd=False, has_imm=True, description="unconditional branch"))
_define(OpSpec("jsr", OpClass.CALL, latency=1, reads_rs1=False, reads_rs2=False,
               writes_rd=True, has_imm=True,
               description="jump to subroutine (writes return address)"))
_define(OpSpec("jmp", OpClass.INDIRECT, latency=1, reads_rs1=True, reads_rs2=False,
               writes_rd=False, description="indirect jump through rs1"))
_define(OpSpec("ret", OpClass.INDIRECT, latency=1, reads_rs1=True, reads_rs2=False,
               writes_rd=False, description="return through rs1"))

# ---------------------------------------------------------------------------
# Miscellaneous.
# ---------------------------------------------------------------------------
_define(OpSpec("nop", OpClass.NOP, latency=1, reads_rs1=False, reads_rs2=False,
               writes_rd=False, description="no operation"))
_define(OpSpec("halt", OpClass.HALT, latency=1, reads_rs1=False, reads_rs2=False,
               writes_rd=False, description="stop simulation"))
_define(OpSpec("mg", OpClass.MG, latency=1, reads_rs1=True, reads_rs2=True,
               writes_rd=True, has_imm=True,
               description="mini-graph handle (imm is the MGID)"))


class UnknownOpcodeError(KeyError):
    """Raised when an unknown mnemonic is looked up."""


def opcode(name: str) -> OpSpec:
    """Look up the :class:`OpSpec` for a mnemonic.

    Raises:
        UnknownOpcodeError: if the mnemonic is not defined.
    """
    try:
        return _OPCODES[name]
    except KeyError as exc:
        raise UnknownOpcodeError(f"unknown opcode: {name!r}") from exc


def has_opcode(name: str) -> bool:
    """Return True if ``name`` is a defined mnemonic."""
    return name in _OPCODES


def all_opcodes() -> Dict[str, OpSpec]:
    """Return a copy of the full opcode table keyed by mnemonic."""
    return dict(_OPCODES)


def opcodes_in_class(op_class: OpClass) -> list[OpSpec]:
    """Return all opcode specs belonging to ``op_class``."""
    return [spec for spec in _OPCODES.values() if spec.op_class is op_class]


#: Register-form counterparts of immediate-form ALU opcodes (and vice versa).
#: The optimizer and the DISE parameter substitution use this to normalise
#: templates.
IMM_TO_REG_FORM: Dict[str, str] = {
    "addli": "addl", "addqi": "addq", "subli": "subl", "subqi": "subq",
    "andi": "and", "bisi": "bis", "xori": "xor",
    "slli": "sll", "srli": "srl", "srai": "sra",
    "cmpeqi": "cmpeq", "cmplti": "cmplt", "cmplei": "cmple",
    "cmpulti": "cmpult", "s4addli": "s4addl", "s8addli": "s8addl",
    "mulli": "mull",
}

REG_TO_IMM_FORM: Dict[str, str] = {v: k for k, v in IMM_TO_REG_FORM.items()}
