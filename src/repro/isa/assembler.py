"""A small two-pass assembler for the MGA ISA.

The workload kernels (:mod:`repro.workloads`) are written in textual assembly
because that keeps them readable and close to the compiler output the paper
profiles.  The assembler supports:

* labels (``loop:``), comments (``# ...`` and ``; ...``), blank lines;
* the operand syntaxes produced by :func:`repro.isa.instruction.format_instruction`,
  so ``assemble(disassemble(p))`` round-trips;
* ``.data name value...`` and ``.space name words`` directives that allocate
  quadwords in the data segment and define a label for their base address;
* pseudo-ops: ``ldi rd, value`` (load immediate of arbitrary width), ``mov
  rd, rs``, ``clr rd`` and ``la rd, label`` (load a data-segment address).

The assembler output is an :class:`AssembledUnit` which the program model
(:mod:`repro.program`) turns into a :class:`~repro.program.program.Program`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import OpClass, has_opcode, opcode
from .registers import ZERO_REG, parse_reg

#: Default base address of the text (code) segment.
TEXT_BASE = 0x1000
#: Default base address of the data segment.
DATA_BASE = 0x100000
#: Bytes per data word.
WORD_BYTES = 8


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_number: Optional[int] = None,
                 line: Optional[str] = None) -> None:
        location = f" (line {line_number}: {line!r})" if line_number else ""
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line


@dataclass
class AssembledUnit:
    """Result of assembling one source file.

    Attributes:
        instructions: the text segment, in order.
        labels: code label -> instruction index.
        data: data segment contents, address -> 64-bit value.
        data_labels: data label -> base address.
        text_base: base PC of the first instruction.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)
    data_labels: Dict[str, int] = field(default_factory=dict)
    text_base: int = TEXT_BASE

    def label_pc(self, label: str) -> int:
        """Return the PC of a code label."""
        return self.text_base + self.labels[label] * INSTRUCTION_BYTES


_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_int(text: str, line_number: int, line: str) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblerError(f"malformed integer {text!r}", line_number, line) from exc


def _split_operands(text: str) -> List[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",") if part.strip()]


class Assembler:
    """Two-pass assembler producing an :class:`AssembledUnit`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE) -> None:
        self._text_base = text_base
        self._data_base = data_base

    def assemble(self, source: str) -> AssembledUnit:
        """Assemble ``source`` and return the assembled unit.

        Raises:
            AssemblerError: on any syntax or semantic error, with the
                offending line number attached.
        """
        unit = AssembledUnit(text_base=self._text_base)
        pending: List[Tuple[int, str, str]] = []  # (line number, line, statement)
        data_cursor = self._data_base

        # Pass 1: collect labels, data directives and instruction statements.
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line)
            if not line:
                continue
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not _LABEL_RE.match(label):
                    raise AssemblerError(f"malformed label {label!r}", line_number, raw_line)
                if label in unit.labels or label in unit.data_labels:
                    raise AssemblerError(f"duplicate label {label!r}", line_number, raw_line)
                unit.labels[label] = len(pending)
                line = rest.strip()
            if not line:
                continue
            if line.startswith(".data") or line.startswith(".space"):
                data_cursor = self._handle_data_directive(
                    unit, line, data_cursor, line_number, raw_line)
                continue
            pending.append((line_number, raw_line, line))

        # Pass 2: encode instructions with all labels known.
        for index, (line_number, raw_line, statement) in enumerate(pending):
            for insn in self._encode_statement(unit, statement, line_number, raw_line):
                unit.instructions.append(insn)
        # Data labels may have been used by pseudo-op `la`, resolved during
        # encoding; code label targets remain symbolic and are resolved by the
        # Program constructor (which knows final PCs).
        self._validate_targets(unit)
        return unit

    # -- directives ----------------------------------------------------------

    def _handle_data_directive(self, unit: AssembledUnit, line: str, cursor: int,
                               line_number: int, raw_line: str) -> int:
        parts = line.split()
        directive = parts[0]
        if len(parts) < 3:
            raise AssemblerError(f"{directive} requires a name and at least one value",
                                 line_number, raw_line)
        name = parts[1]
        if not _LABEL_RE.match(name):
            raise AssemblerError(f"malformed data label {name!r}", line_number, raw_line)
        if name in unit.data_labels or name in unit.labels:
            raise AssemblerError(f"duplicate label {name!r}", line_number, raw_line)
        unit.data_labels[name] = cursor
        if directive == ".data":
            values = [_parse_int(token.rstrip(","), line_number, raw_line)
                      for token in parts[2:]]
            for offset, value in enumerate(values):
                unit.data[cursor + offset * WORD_BYTES] = value
            return cursor + len(values) * WORD_BYTES
        if directive == ".space":
            count = _parse_int(parts[2], line_number, raw_line)
            if count <= 0:
                raise AssemblerError(".space size must be positive", line_number, raw_line)
            for offset in range(count):
                unit.data.setdefault(cursor + offset * WORD_BYTES, 0)
            return cursor + count * WORD_BYTES
        raise AssemblerError(f"unknown directive {directive!r}", line_number, raw_line)

    # -- statements ----------------------------------------------------------

    def _encode_statement(self, unit: AssembledUnit, statement: str,
                          line_number: int, raw_line: str) -> List[Instruction]:
        mnemonic, _, operand_text = statement.partition(" ")
        mnemonic = mnemonic.strip().lower()
        operands = _split_operands(operand_text.strip())

        pseudo = self._expand_pseudo(unit, mnemonic, operands, line_number, raw_line)
        if pseudo is not None:
            return pseudo
        if not has_opcode(mnemonic):
            raise AssemblerError(f"unknown opcode {mnemonic!r}", line_number, raw_line)
        return [self._encode_instruction(mnemonic, operands, line_number, raw_line)]

    def _expand_pseudo(self, unit: AssembledUnit, mnemonic: str, operands: List[str],
                       line_number: int, raw_line: str) -> Optional[List[Instruction]]:
        if mnemonic == "ldi":
            if len(operands) != 2:
                raise AssemblerError("ldi requires rd, value", line_number, raw_line)
            rd = parse_reg(operands[0])
            value = _parse_int(operands[1], line_number, raw_line)
            return [Instruction("lda", rd=rd, rs1=ZERO_REG, imm=value)]
        if mnemonic == "la":
            if len(operands) != 2:
                raise AssemblerError("la requires rd, data-label", line_number, raw_line)
            rd = parse_reg(operands[0])
            label = operands[1]
            if label not in unit.data_labels:
                raise AssemblerError(f"unknown data label {label!r}", line_number, raw_line)
            return [Instruction("lda", rd=rd, rs1=ZERO_REG, imm=unit.data_labels[label])]
        if mnemonic == "mov":
            if len(operands) != 2:
                raise AssemblerError("mov requires rd, rs", line_number, raw_line)
            rd = parse_reg(operands[0])
            rs = parse_reg(operands[1])
            return [Instruction("bis", rd=rd, rs1=rs, rs2=ZERO_REG)]
        if mnemonic == "clr":
            if len(operands) != 1:
                raise AssemblerError("clr requires rd", line_number, raw_line)
            rd = parse_reg(operands[0])
            return [Instruction("bis", rd=rd, rs1=ZERO_REG, rs2=ZERO_REG)]
        return None

    def _encode_instruction(self, mnemonic: str, operands: List[str],
                            line_number: int, raw_line: str) -> Instruction:
        spec = opcode(mnemonic)
        try:
            if spec.op_class is OpClass.NOP:
                return Instruction("nop")
            if spec.op_class is OpClass.HALT:
                return Instruction("halt")
            if spec.op_class is OpClass.MG:
                return self._encode_handle(operands, line_number, raw_line)
            if spec.is_load:
                rd = parse_reg(operands[0])
                imm, base = self._parse_mem_operand(operands[1], line_number, raw_line)
                return Instruction(mnemonic, rd=rd, rs1=base, imm=imm)
            if spec.is_store:
                value = parse_reg(operands[0])
                imm, base = self._parse_mem_operand(operands[1], line_number, raw_line)
                return Instruction(mnemonic, rs1=base, rs2=value, imm=imm)
            if spec.op_class is OpClass.BRANCH:
                rs1 = parse_reg(operands[0])
                return Instruction(mnemonic, rs1=rs1, target=operands[1])
            if spec.op_class is OpClass.JUMP:
                return Instruction(mnemonic, target=operands[0])
            if spec.op_class is OpClass.CALL:
                rd = parse_reg(operands[0])
                return Instruction(mnemonic, rd=rd, target=operands[1])
            if spec.op_class is OpClass.INDIRECT:
                rs1 = parse_reg(operands[0])
                return Instruction(mnemonic, rs1=rs1)
            return self._encode_alu(mnemonic, operands, line_number, raw_line)
        except (IndexError, ValueError) as exc:
            if isinstance(exc, AssemblerError):
                raise
            raise AssemblerError(f"malformed operands for {mnemonic}: {exc}",
                                 line_number, raw_line) from exc

    def _encode_alu(self, mnemonic: str, operands: List[str],
                    line_number: int, raw_line: str) -> Instruction:
        spec = opcode(mnemonic)
        expected = int(spec.reads_rs1) + int(spec.reads_rs2) + int(spec.has_imm) \
            + int(spec.writes_rd)
        if len(operands) != expected:
            raise AssemblerError(
                f"{mnemonic} expects {expected} operands, got {len(operands)}",
                line_number, raw_line)
        cursor = 0
        rs1 = rs2 = rd = imm = None
        if spec.reads_rs1:
            rs1 = parse_reg(operands[cursor])
            cursor += 1
        if spec.reads_rs2:
            rs2 = parse_reg(operands[cursor])
            cursor += 1
        if spec.has_imm:
            imm = _parse_int(operands[cursor], line_number, raw_line)
            cursor += 1
        if spec.writes_rd:
            rd = parse_reg(operands[cursor])
            cursor += 1
        return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

    def _encode_handle(self, operands: List[str], line_number: int,
                       raw_line: str) -> Instruction:
        if len(operands) != 4:
            raise AssemblerError("mg requires rs1, rs2, rd, mgid", line_number, raw_line)
        def reg_or_none(text: str) -> int:
            if text in ("-", "_"):
                return ZERO_REG
            return parse_reg(text)
        rs1 = reg_or_none(operands[0])
        rs2 = reg_or_none(operands[1])
        rd = reg_or_none(operands[2])
        mgid = _parse_int(operands[3], line_number, raw_line)
        return Instruction("mg", rd=rd, rs1=rs1, rs2=rs2, imm=mgid)

    def _parse_mem_operand(self, text: str, line_number: int,
                           raw_line: str) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(text.replace(" ", ""))
        if not match:
            raise AssemblerError(f"malformed memory operand {text!r}", line_number, raw_line)
        displacement = _parse_int(match.group(1), line_number, raw_line)
        base = parse_reg(match.group(2))
        return displacement, base

    # -- validation ----------------------------------------------------------

    def _validate_targets(self, unit: AssembledUnit) -> None:
        known = set(unit.labels)
        for index, insn in enumerate(unit.instructions):
            if insn.is_direct_control and insn.target is not None:
                if insn.target not in known:
                    raise AssemblerError(
                        f"undefined branch target {insn.target!r} "
                        f"(instruction {index}: {insn})")


def assemble(source: str, text_base: int = TEXT_BASE,
             data_base: int = DATA_BASE) -> AssembledUnit:
    """Assemble ``source`` with default bases; convenience wrapper."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source)
