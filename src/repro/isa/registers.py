"""Register namespace for the MGA (mini-graph architecture) ISA.

The ISA is Alpha-inspired: 32 integer registers and 32 floating-point
registers, 64 architected registers in total (the paper's baseline allocates
64 physical registers to architected state).  Integer register 31 and FP
register 31 always read as zero, like the Alpha ``r31``/``f31``.

Registers are represented as small integers:

* ``0 .. 31``  -> integer registers ``r0 .. r31``
* ``32 .. 63`` -> floating point registers ``f0 .. f31``

A handful of integer registers have conventional roles (stack pointer,
return address, assembler temporary) mirroring the Alpha calling convention;
the roles only matter to the workload kernels, not to the hardware model.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Integer register that always reads as zero (Alpha r31).
ZERO_REG = 31
#: Floating-point register that always reads as zero (Alpha f31).
FP_ZERO_REG = 32 + 31

#: Conventional roles (only used by the assembler / workload kernels).
RETURN_ADDRESS_REG = 26
STACK_POINTER_REG = 30
GLOBAL_POINTER_REG = 29
ASSEMBLER_TEMP_REG = 28


class RegisterError(ValueError):
    """Raised for malformed register names or out-of-range register numbers."""


def is_int_reg(reg: int) -> bool:
    """Return True if ``reg`` names an integer register."""
    return 0 <= reg < NUM_INT_REGS


def is_fp_reg(reg: int) -> bool:
    """Return True if ``reg`` names a floating-point register."""
    return NUM_INT_REGS <= reg < NUM_ARCH_REGS


def is_zero_reg(reg: int) -> bool:
    """Return True if ``reg`` is one of the hardwired-zero registers."""
    return reg in (ZERO_REG, FP_ZERO_REG)


def int_reg(index: int) -> int:
    """Return the register number of integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise RegisterError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the register number of floating-point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise RegisterError(f"fp register index out of range: {index}")
    return NUM_INT_REGS + index


def reg_name(reg: int) -> str:
    """Return the assembly name (``rN`` or ``fN``) of a register number."""
    if is_int_reg(reg):
        return f"r{reg}"
    if is_fp_reg(reg):
        return f"f{reg - NUM_INT_REGS}"
    raise RegisterError(f"register number out of range: {reg}")


def parse_reg(name: str) -> int:
    """Parse an assembly register name into a register number.

    Accepts ``rN`` / ``fN`` (case-insensitive), the alias ``zero`` for the
    integer zero register, and the conventional aliases ``sp``, ``ra``, ``gp``
    and ``at``.
    """
    text = name.strip().lower()
    aliases = {
        "zero": ZERO_REG,
        "sp": STACK_POINTER_REG,
        "ra": RETURN_ADDRESS_REG,
        "gp": GLOBAL_POINTER_REG,
        "at": ASSEMBLER_TEMP_REG,
    }
    if text in aliases:
        return aliases[text]
    if len(text) >= 2 and text[0] in ("r", "f") and text[1:].isdigit():
        index = int(text[1:])
        if text[0] == "r":
            return int_reg(index)
        return fp_reg(index)
    raise RegisterError(f"malformed register name: {name!r}")


def all_int_regs() -> list[int]:
    """Return the list of all integer register numbers."""
    return list(range(NUM_INT_REGS))


def all_fp_regs() -> list[int]:
    """Return the list of all floating-point register numbers."""
    return list(range(NUM_INT_REGS, NUM_ARCH_REGS))
