"""Reusable assembly fragments for the synthetic workload kernels.

Each fragment builder returns a list of assembly source lines.  Fragments are
parameterised by the registers they use and by a label prefix so that several
fragments can be composed into one kernel without label or register clashes.

The fragments are designed to reproduce the *structural* idioms that make
the four benchmark suites behave differently with respect to mini-graphs:

* long single-output ALU chains (media/embedded kernels) — prime mini-graph
  material;
* load + shift/mask field extraction (the paper's Figure 1 ``ldq/srl/and``
  idiom) — integer-memory mini-graphs;
* compare-and-branch loop back-edges (the Figure 1 ``addl/cmplt/bne`` idiom);
* pointer chasing and short branchy blocks (SPEC-like) — poor coverage;
* read-modify-write histogram updates and table lookups (comm kernels).

Register conventions (callers may deviate, but the defaults follow them):

* ``r16``-``r21`` hold kernel parameters (array bases, element counts);
* ``r1``-``r9`` are scratch temporaries local to a loop body;
* ``r10``-``r14`` hold loop counters and accumulators.
"""

from __future__ import annotations

from typing import List, Sequence


def loop_header(prefix: str, counter: str, limit: str) -> List[str]:
    """Top-of-loop label; the counter is compared against ``limit`` at the bottom."""
    return [f"{prefix}_loop:"]


def loop_footer(prefix: str, counter: str, limit: str, *, step: int = 1,
                temp: str = "r9") -> List[str]:
    """Increment-compare-branch back edge (the paper's addl/cmplt/bne idiom)."""
    return [
        f"  addqi {counter},{step},{counter}",
        f"  cmplt {counter},{limit},{temp}",
        f"  bne {temp},{prefix}_loop",
    ]


def indexed_load(base: str, index: str, dest: str, *, address_temp: str = "r8",
                 offset: int = 0) -> List[str]:
    """Scaled-index quadword load: ``dest = base[index]``."""
    return [
        f"  s8addl {index},{base},{address_temp}",
        f"  ldq {dest},{offset}({address_temp})",
    ]


def indexed_store(base: str, index: str, value: str, *, address_temp: str = "r8",
                  offset: int = 0) -> List[str]:
    """Scaled-index quadword store: ``base[index] = value``."""
    return [
        f"  s8addl {index},{base},{address_temp}",
        f"  stq {value},{offset}({address_temp})",
    ]


# ---------------------------------------------------------------------------
# Straight-line computation bodies (no control flow).  Each consumes a source
# register and produces a result register through a dependence chain, which is
# exactly the shape mini-graphs capture.
# ---------------------------------------------------------------------------

def field_extract_body(src: str, dest: str, *, shift: int = 14, mask: int = 1,
                       temp: str = "r5") -> List[str]:
    """The Figure 1 idiom: extract a bit field (``srl`` then ``and``)."""
    return [
        f"  srli {src},{shift},{temp}",
        f"  andi {temp},{mask},{dest}",
    ]


def hash_mix_body(src: str, dest: str, *, temp1: str = "r5", temp2: str = "r6",
                  multiplier_shift: int = 7, xor_shift: int = 13) -> List[str]:
    """Three-operation mixing chain (hashing / checksum style)."""
    return [
        f"  slli {src},{multiplier_shift},{temp1}",
        f"  xor {temp1},{src},{temp2}",
        f"  srli {temp2},{xor_shift},{dest}",
    ]


def saturating_add_body(a: str, b: str, dest: str, *, limit: int = 32767,
                        temp1: str = "r5", temp2: str = "r6") -> List[str]:
    """Saturating add: ``dest = min(a + b, limit)`` via compare and cmov."""
    return [
        f"  addq {a},{b},{dest}",
        f"  ldi {temp1},{limit}",
        f"  cmplt {temp1},{dest},{temp2}",
        f"  cmovne {temp2},{temp1},{dest}",
    ]


def scale_round_body(src: str, dest: str, *, scale: int = 5, shift: int = 3,
                     bias: int = 4, temp: str = "r5") -> List[str]:
    """Fixed-point scale and round: ``dest = (src * scale + bias) >> shift``.

    The multiply is done with shift/add so the whole chain remains mini-graph
    eligible (single-cycle integer operations only).
    """
    return [
        f"  slli {src},{scale.bit_length() - 1},{temp}",
        f"  addq {temp},{src},{temp}",
        f"  addqi {temp},{bias},{temp}",
        f"  srai {temp},{shift},{dest}",
    ]


def clamp_body(src: str, dest: str, *, low: int = 0, high: int = 255,
               temp1: str = "r5", temp2: str = "r6", temp3: str = "r7") -> List[str]:
    """Clamp ``src`` into ``[low, high]`` using compares and conditional moves."""
    return [
        f"  ldi {temp1},{low}",
        f"  ldi {temp2},{high}",
        f"  cmplt {src},{temp1},{temp3}",
        f"  bis {src},zero,{dest}",
        f"  cmovne {temp3},{temp1},{dest}",
        f"  cmplt {temp2},{dest},{temp3}",
        f"  cmovne {temp3},{temp2},{dest}",
    ]


def butterfly_body(a: str, b: str, out_sum: str, out_diff: str, *,
                   shift: int = 1) -> List[str]:
    """DCT-style butterfly: sum and scaled difference of two values."""
    return [
        f"  addq {a},{b},{out_sum}",
        f"  subq {a},{b},{out_diff}",
        f"  srai {out_sum},{shift},{out_sum}",
        f"  srai {out_diff},{shift},{out_diff}",
    ]


def round_function_body(value: str, key: str, dest: str, *, rotate: int = 11,
                        temp1: str = "r5", temp2: str = "r6",
                        temp3: str = "r7") -> List[str]:
    """Block-cipher style round: xor with key, rotate, add (sha/blowfish/cast)."""
    return [
        f"  xor {value},{key},{temp1}",
        f"  slli {temp1},{rotate},{temp2}",
        f"  srli {temp1},{64 - rotate},{temp3}",
        f"  bis {temp2},{temp3},{temp1}",
        f"  addq {temp1},{key},{dest}",
    ]


def weighted_sum3_body(a: str, b: str, c: str, dest: str, *, temp1: str = "r5",
                       temp2: str = "r6") -> List[str]:
    """Weighted 3-tap sum (RGB-to-luma style): ``(2a + 5b + c) >> 3``."""
    return [
        f"  slli {a},1,{temp1}",
        f"  slli {b},2,{temp2}",
        f"  addq {temp2},{b},{temp2}",
        f"  addq {temp1},{temp2},{temp1}",
        f"  addq {temp1},{c},{temp1}",
        f"  srai {temp1},3,{dest}",
    ]


# ---------------------------------------------------------------------------
# Whole-loop fragments.
# ---------------------------------------------------------------------------

def array_map_loop(prefix: str, *, input_base: str, output_base: str, count: str,
                   body: Sequence[str], counter: str = "r10",
                   element: str = "r2", result: str = "r3",
                   address_temp: str = "r8", footer_temp: str = "r9") -> List[str]:
    """Map ``body`` over an array: load element, run body, store result.

    The body must read ``element`` and leave its result in ``result``.
    """
    lines = [f"  clr {counter}"]
    lines += loop_header(prefix, counter, count)
    lines += indexed_load(input_base, counter, element, address_temp=address_temp)
    lines += list(body)
    lines += indexed_store(output_base, counter, result, address_temp=address_temp)
    lines += loop_footer(prefix, counter, count, temp=footer_temp)
    return lines


def reduction_loop(prefix: str, *, input_base: str, count: str, accumulator: str,
                   body: Sequence[str], counter: str = "r10", element: str = "r2",
                   result: str = "r3", address_temp: str = "r8",
                   footer_temp: str = "r9") -> List[str]:
    """Reduce an array into ``accumulator`` (the body maps element -> result)."""
    lines = [f"  clr {counter}", f"  clr {accumulator}"]
    lines += loop_header(prefix, counter, count)
    lines += indexed_load(input_base, counter, element, address_temp=address_temp)
    lines += list(body)
    lines.append(f"  addq {accumulator},{result},{accumulator}")
    lines += loop_footer(prefix, counter, count, temp=footer_temp)
    return lines


def pointer_chase_loop(prefix: str, *, head: str, steps: str, accumulator: str,
                       node: str = "r2", counter: str = "r10",
                       temp: str = "r9") -> List[str]:
    """Chase a linked list: each node is ``[value, next-address]``.

    The loop-carried dependence is the chain of ``next`` loads, so cache
    misses on it bound performance regardless of mini-graphs; the node value
    only feeds a well-off-the-critical-path threshold test.  Load-dependent
    loads defeat mini-graph formation (two memory operations would be
    required), mimicking SPEC pointer codes such as mcf.
    """
    return [
        f"  clr {counter}",
        f"  clr {accumulator}",
        f"  bis {head},zero,{node}",
        f"{prefix}_loop:",
        f"  ldq r3,0({node})",
        f"  addq {accumulator},{node},{accumulator}",
        f"  cmplti r3,32768,r4",
        f"  beq r4,{prefix}_rare",
        f"  ldq {node},8({node})",
        f"  addqi {counter},1,{counter}",
        f"  cmplt {counter},{steps},{temp}",
        f"  bne {temp},{prefix}_loop",
        f"  br {prefix}_done",
        f"{prefix}_rare:",
        f"  addqi {accumulator},3,{accumulator}",
        f"  ldq {node},8({node})",
        f"  addqi {counter},1,{counter}",
        f"  cmplt {counter},{steps},{temp}",
        f"  bne {temp},{prefix}_loop",
        f"{prefix}_done:",
    ]


def table_lookup_loop(prefix: str, *, input_base: str, table_base: str, count: str,
                      accumulator: str, table_mask: int = 255,
                      counter: str = "r10", temp: str = "r9") -> List[str]:
    """Index a table with a hashed key and accumulate the table entries."""
    return [
        f"  clr {counter}",
        f"  clr {accumulator}",
        f"{prefix}_loop:",
        f"  s8addl {counter},{input_base},r8",
        f"  ldq r2,0(r8)",
        f"  srli r2,3,r4",
        f"  xor r4,r2,r4",
        f"  andi r4,{table_mask},r4",
        f"  s8addl r4,{table_base},r5",
        f"  ldq r6,0(r5)",
        f"  addq {accumulator},r6,{accumulator}",
        f"  addqi {counter},1,{counter}",
        f"  cmplt {counter},{count},{temp}",
        f"  bne {temp},{prefix}_loop",
    ]


def histogram_loop(prefix: str, *, input_base: str, histogram_base: str, count: str,
                   buckets_mask: int = 63, counter: str = "r10",
                   temp: str = "r9") -> List[str]:
    """Histogram update: load element, compute bucket, read-modify-write."""
    return [
        f"  clr {counter}",
        f"{prefix}_loop:",
        f"  s8addl {counter},{input_base},r8",
        f"  ldq r2,0(r8)",
        f"  andi r2,{buckets_mask},r3",
        f"  s8addl r3,{histogram_base},r4",
        f"  ldq r5,0(r4)",
        f"  addqi r5,1,r5",
        f"  stq r5,0(r4)",
        f"  addqi {counter},1,{counter}",
        f"  cmplt {counter},{count},{temp}",
        f"  bne {temp},{prefix}_loop",
    ]


def branchy_classify_loop(prefix: str, *, input_base: str, count: str,
                          accumulator: str, thresholds: Sequence[int] = (16, 64, 192),
                          counter: str = "r10", temp: str = "r9") -> List[str]:
    """Branchy classification with small basic blocks (SPEC-like control flow)."""
    lines = [
        f"  clr {counter}",
        f"  clr {accumulator}",
        f"{prefix}_loop:",
        f"  s8addl {counter},{input_base},r8",
        f"  ldq r2,0(r8)",
        f"  andi r2,255,r2",
    ]
    for case, threshold in enumerate(thresholds):
        lines += [
            f"  cmplti r2,{threshold},r3",
            f"  beq r3,{prefix}_case{case}_skip",
            f"  addqi {accumulator},{case + 1},{accumulator}",
            f"  br {prefix}_next",
            f"{prefix}_case{case}_skip:",
        ]
    lines += [
        f"  addqi {accumulator},{len(thresholds) + 1},{accumulator}",
        f"{prefix}_next:",
    ]
    lines += loop_footer(prefix, counter, count, temp=temp)
    return lines


def string_match_loop(prefix: str, *, haystack_base: str, needle_base: str,
                      count: str, needle_length: int, matches: str,
                      counter: str = "r10", temp: str = "r9") -> List[str]:
    """Count positions where a short needle matches the haystack (gzip/grep-like)."""
    lines = [
        f"  clr {counter}",
        f"  clr {matches}",
        f"{prefix}_loop:",
    ]
    for offset in range(needle_length):
        lines += [
            f"  s8addl {counter},{haystack_base},r8",
            f"  ldq r2,{offset * 8}(r8)",
            f"  ldq r3,{offset * 8}({needle_base})",
            f"  cmpeq r2,r3,r4",
            f"  beq r4,{prefix}_miss",
        ]
    lines += [
        f"  addqi {matches},1,{matches}",
        f"{prefix}_miss:",
    ]
    lines += loop_footer(prefix, counter, count, temp=temp)
    return lines


def switch_dispatch_loop(prefix: str, *, input_base: str, count: str,
                         accumulator: str, cases: int = 8,
                         counter: str = "r10", temp: str = "r9") -> List[str]:
    """A dispatch loop with many distinct static cases (gcc/parser-like footprint).

    Every case has its own small body, inflating the static code size while
    each dynamic path stays short and branchy.
    """
    lines = [
        f"  clr {counter}",
        f"  clr {accumulator}",
        f"{prefix}_loop:",
        f"  s8addl {counter},{input_base},r8",
        f"  ldq r2,0(r8)",
        f"  andi r2,{cases - 1},r3",
    ]
    for case in range(cases):
        lines += [
            f"  cmpeqi r3,{case},r4",
            f"  beq r4,{prefix}_not{case}",
        ]
        # Distinct body per case: different constants and operation mix.
        lines += [
            f"  slli r2,{(case % 5) + 1},r5",
            f"  xori r5,{case * 37 + 11},r5",
            f"  addqi r5,{case * 3 + 1},r5",
            f"  addq {accumulator},r5,{accumulator}",
            f"  br {prefix}_done",
            f"{prefix}_not{case}:",
        ]
    lines += [
        f"  addqi {accumulator},1,{accumulator}",
        f"{prefix}_done:",
    ]
    lines += loop_footer(prefix, counter, count, temp=temp)
    return lines


def unrolled_block(body_builder, iterations: int) -> List[str]:
    """Concatenate ``iterations`` copies of a body produced by ``body_builder(i)``."""
    lines: List[str] = []
    for iteration in range(iterations):
        lines += body_builder(iteration)
    return lines


def kernel(name: str, data_directives: Sequence[str], setup: Sequence[str],
           body: Sequence[str], teardown: Sequence[str] = ()) -> str:
    """Assemble a full kernel source: data, setup, body, teardown, halt."""
    lines: List[str] = [f"# kernel: {name}"]
    lines += list(data_directives)
    lines.append("start:")
    lines += list(setup)
    lines += list(body)
    lines += list(teardown)
    lines.append("  halt")
    return "\n".join(lines) + "\n"
