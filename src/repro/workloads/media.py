"""MediaBench-like synthetic kernels.

MediaBench programs (adpcm, g721, gsm, jpeg, mpeg2, epic, mesa, ghostscript,
pgp) are dominated by regular loops over sample/pixel arrays with long
integer dependence chains — exactly the idioms mini-graphs capture — which is
why the paper reports its largest average gains (12%) on this suite.  Each
kernel below is a structural stand-in for one of those programs: same loop
shape, chain length and memory density, synthetic data.
"""

from __future__ import annotations

from typing import List

from .base import LinearCongruentialGenerator, data_directive, register_benchmark
from . import fragments as frag


def _input_parameters(input_name: str, reference: int, train: int) -> int:
    return reference if input_name == "reference" else train


def _samples(seed: int, count: int, bound: int) -> List[int]:
    return LinearCongruentialGenerator(seed).sequence(count, bound)


# ---------------------------------------------------------------------------
# adpcm: speech codec, quantisation chains with a few data-dependent branches.
# ---------------------------------------------------------------------------

def _adpcm_encode(input_name: str) -> str:
    count = _input_parameters(input_name, 384, 160)
    data = [
        data_directive("samples", _samples(11, count, 4096)),
        data_directive("codes", [0] * count),
    ]
    setup = [
        "  la r16,samples",
        "  la r17,codes",
        f"  ldi r18,{count}",
        "  clr r11",          # predictor
        "  ldi r12,16",       # step size
    ]
    body = [
        "  clr r10",
        "adpcm_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  subq r2,r11,r4",        # delta = sample - predictor
        "  clr r6",
        "  bge r4,adpcm_pos",
        "  subq r31,r4,r4",
        "  ldi r6,8",
        "adpcm_pos:",
        "  cmplt r4,r12,r5",       # quantise against step
        "  bne r5,adpcm_q1",
        "  subq r4,r12,r4",
        "  bisi r6,4,r6",
        "adpcm_q1:",
        "  srai r12,1,r7",
        "  cmplt r4,r7,r5",
        "  bne r5,adpcm_q2",
        "  subq r4,r7,r4",
        "  bisi r6,2,r6",
        "adpcm_q2:",
        "  srai r12,2,r7",
        "  cmplt r4,r7,r5",
        "  bne r5,adpcm_q3",
        "  bisi r6,1,r6",
        "adpcm_q3:",
        # reconstruct predictor from the code (chain of shifts/adds)
        "  andi r6,7,r3",
        "  slli r3,2,r5",
        "  addq r5,r3,r5",
        "  addq r11,r5,r11",
        # adapt step size
        "  slli r6,1,r5",
        "  andi r5,14,r5",
        "  addqi r5,12,r5",
        "  addq r12,r5,r12",
        "  srai r12,1,r12",
        "  addqi r12,1,r12",
        "  s8addl r10,r17,r8",
        "  stq r6,0(r8)",
    ] + frag.loop_footer("adpcm", "r10", "r18")
    return frag.kernel("adpcm.encode", data, setup, body)


def _adpcm_decode(input_name: str) -> str:
    count = _input_parameters(input_name, 384, 160)
    data = [
        data_directive("codes_in", _samples(13, count, 16)),
        data_directive("pcm_out", [0] * count),
    ]
    setup = [
        "  la r16,codes_in",
        "  la r17,pcm_out",
        f"  ldi r18,{count}",
        "  clr r11",
        "  ldi r12,16",
    ]
    body = [
        "  clr r10",
        "adpcmd_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r6,0(r8)",
        "  andi r6,7,r2",           # magnitude bits
        "  slli r2,2,r3",
        "  addq r3,r2,r3",          # delta ~= 5 * magnitude
        "  andi r6,8,r4",           # sign bit
        "  beq r4,adpcmd_add",
        "  subq r11,r3,r11",
        "  br adpcmd_step",
        "adpcmd_add:",
        "  addq r11,r3,r11",
        "adpcmd_step:",
        "  slli r2,1,r5",
        "  addqi r5,8,r5",
        "  addq r12,r5,r12",
        "  srai r12,1,r12",
        "  addqi r12,1,r12",
    ] + frag.clamp_body("r11", "r3", low=-32768, high=32767,
                        temp1="r5", temp2="r7", temp3="r4") + [
        "  s8addl r10,r17,r8",
        "  stq r3,0(r8)",
    ] + frag.loop_footer("adpcmd", "r10", "r18")
    return frag.kernel("adpcm.decode", data, setup, body)


# ---------------------------------------------------------------------------
# g721: ADPCM with table-driven quantisation (table lookups + chains).
# ---------------------------------------------------------------------------

def _g721_encode(input_name: str) -> str:
    count = _input_parameters(input_name, 320, 128)
    table = [((i * 7 + 3) % 61) for i in range(64)]
    data = [
        data_directive("g721_in", _samples(17, count, 8192)),
        data_directive("g721_table", table),
        data_directive("g721_out", [0] * count),
    ]
    setup = [
        "  la r16,g721_in",
        "  la r19,g721_table",
        "  la r17,g721_out",
        f"  ldi r18,{count}",
        "  clr r11",
    ]
    body = [
        "  clr r10",
        "g721_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  subq r2,r11,r3",
    ] + frag.field_extract_body("r3", "r4", shift=5, mask=63, temp="r5") + [
        "  s8addl r4,r19,r6",
        "  ldq r7,0(r6)",
    ] + frag.scale_round_body("r7", "r5", scale=5, shift=2, bias=2, temp="r6") + [
        "  addq r11,r5,r11",
        "  s8addl r10,r17,r8",
        "  stq r5,0(r8)",
    ] + frag.loop_footer("g721", "r10", "r18")
    return frag.kernel("g721.encode", data, setup, body)


# ---------------------------------------------------------------------------
# gsm: saturating arithmetic over speech frames (toast = encode, untoast = decode).
# ---------------------------------------------------------------------------

def _gsm_toast(input_name: str) -> str:
    count = _input_parameters(input_name, 360, 120)
    data = [
        data_directive("gsm_in", _samples(19, count, 32768)),
        data_directive("gsm_out", [0] * count),
    ]
    setup = [
        "  la r16,gsm_in",
        "  la r17,gsm_out",
        f"  ldi r18,{count}",
        "  ldi r13,17",          # filter coefficient (fixed point)
        "  clr r14",             # running term
    ]
    body_chain = (
        frag.hash_mix_body("r2", "r4", temp1="r5", temp2="r6",
                           multiplier_shift=3, xor_shift=9)
        + frag.saturating_add_body("r4", "r14", "r3", limit=32767,
                                   temp1="r5", temp2="r6")
        + ["  srai r3,1,r14"]
    )
    body = frag.array_map_loop("gsm", input_base="r16", output_base="r17",
                               count="r18", body=body_chain)
    return frag.kernel("gsm.toast", data, setup, body)


def _gsm_untoast(input_name: str) -> str:
    count = _input_parameters(input_name, 360, 120)
    data = [
        data_directive("gsmu_in", _samples(23, count, 32768)),
        data_directive("gsmu_out", [0] * count),
    ]
    setup = [
        "  la r16,gsmu_in",
        "  la r17,gsmu_out",
        f"  ldi r18,{count}",
        "  clr r14",
    ]
    body_chain = (
        frag.scale_round_body("r2", "r4", scale=5, shift=2, bias=1, temp="r5")
        + ["  addq r4,r14,r4"]
        + frag.clamp_body("r4", "r3", low=-32768, high=32767,
                          temp1="r5", temp2="r6", temp3="r7")
        + ["  srai r3,2,r14"]
    )
    body = frag.array_map_loop("gsmu", input_base="r16", output_base="r17",
                               count="r18", body=body_chain)
    return frag.kernel("gsm.untoast", data, setup, body)


# ---------------------------------------------------------------------------
# jpeg compress / mpeg2 decode: 4-point DCT-style butterflies + quantisation.
# ---------------------------------------------------------------------------

def _jpeg_compress(input_name: str) -> str:
    blocks = _input_parameters(input_name, 72, 24)
    count = blocks * 4
    data = [
        data_directive("jpeg_in", _samples(29, count, 256)),
        data_directive("jpeg_out", [0] * count),
    ]
    setup = [
        "  la r16,jpeg_in",
        "  la r17,jpeg_out",
        f"  ldi r18,{blocks}",
    ]
    body = [
        "  clr r10",
        "jpegc_loop:",
        "  slli r10,2,r12",             # element index = block * 4
        "  s8addl r12,r16,r8",
        "  ldq r2,0(r8)",
        "  ldq r3,8(r8)",
        "  ldq r4,16(r8)",
        "  ldq r5,24(r8)",
    ] + frag.butterfly_body("r2", "r4", "r6", "r7", shift=1) + \
        frag.butterfly_body("r3", "r5", "r22", "r23", shift=1) + [
        "  addq r6,r22,r24",            # low-frequency term
        "  subq r6,r22,r25",
        # quantise the four coefficients with shift-and-round chains
        "  addqi r24,4,r24",
        "  srai r24,3,r24",
        "  addqi r25,4,r25",
        "  srai r25,3,r25",
        "  addqi r7,2,r7",
        "  srai r7,2,r7",
        "  addqi r23,2,r23",
        "  srai r23,2,r23",
        "  s8addl r12,r17,r8",
        "  stq r24,0(r8)",
        "  stq r25,8(r8)",
        "  stq r7,16(r8)",
        "  stq r23,24(r8)",
    ] + frag.loop_footer("jpegc", "r10", "r18")
    return frag.kernel("jpeg.compress", data, setup, body)


def _mpeg2_decode(input_name: str) -> str:
    count = _input_parameters(input_name, 320, 96)
    data = [
        data_directive("mpeg_ref", _samples(31, count, 256)),
        data_directive("mpeg_delta", _samples(37, count, 64)),
        data_directive("mpeg_out", [0] * count),
    ]
    setup = [
        "  la r16,mpeg_ref",
        "  la r19,mpeg_delta",
        "  la r17,mpeg_out",
        f"  ldi r18,{count}",
    ]
    body = [
        "  clr r10",
        "mpg2d_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  s8addl r10,r19,r8",
        "  ldq r3,0(r8)",
        # motion-compensated reconstruction: ref + (delta - 32), clamped to 0..255
        "  subqi r3,32,r3",
        "  addq r2,r3,r4",
    ] + frag.clamp_body("r4", "r3", low=0, high=255,
                        temp1="r5", temp2="r6", temp3="r7") + [
        "  s8addl r10,r17,r8",
        "  stq r3,0(r8)",
    ] + frag.loop_footer("mpg2d", "r10", "r18")
    return frag.kernel("mpeg2.decode", data, setup, body)


# ---------------------------------------------------------------------------
# epic / mesa / ghostscript: filter pyramids, fixed-point geometry, rasterisation.
# ---------------------------------------------------------------------------

def _epic_encode(input_name: str) -> str:
    count = _input_parameters(input_name, 288, 96)
    data = [
        data_directive("epic_in", _samples(41, count + 2, 1024)),
        data_directive("epic_out", [0] * count),
    ]
    setup = [
        "  la r16,epic_in",
        "  la r17,epic_out",
        f"  ldi r18,{count}",
    ]
    body = [
        "  clr r10",
        "epic_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  ldq r3,8(r8)",
        "  ldq r4,16(r8)",
    ] + frag.weighted_sum3_body("r2", "r3", "r4", "r5", temp1="r6", temp2="r7") + [
        "  subq r3,r5,r3",      # high-pass residual
        "  s8addl r10,r17,r8",
        "  stq r3,0(r8)",
    ] + frag.loop_footer("epic", "r10", "r18")
    return frag.kernel("epic.encode", data, setup, body)


def _mesa_osdemo(input_name: str) -> str:
    count = _input_parameters(input_name, 256, 80)
    data = [
        data_directive("mesa_x", _samples(43, count, 1024)),
        data_directive("mesa_y", _samples(47, count, 1024)),
        data_directive("mesa_out", [0] * count),
    ]
    setup = [
        "  la r16,mesa_x",
        "  la r19,mesa_y",
        "  la r17,mesa_out",
        f"  ldi r18,{count}",
        "  ldi r13,37",          # fixed-point rotation coefficient
        "  ldi r14,91",
    ]
    body = [
        "  clr r10",
        "mesa_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  s8addl r10,r19,r8",
        "  ldq r3,0(r8)",
        # fixed point 2x2 transform using multiplies (multi-cycle, not
        # mini-graph eligible) mixed with eligible chains
        "  mulq r2,r13,r4",
        "  mulq r3,r14,r5",
        "  subq r4,r5,r6",
        "  srai r6,7,r6",
        "  addqi r6,512,r6",
    ] + frag.field_extract_body("r6", "r3", shift=2, mask=1023, temp="r7") + [
        "  s8addl r10,r17,r8",
        "  stq r3,0(r8)",
    ] + frag.loop_footer("mesa", "r10", "r18")
    return frag.kernel("mesa.osdemo", data, setup, body)


def _ghostscript(input_name: str) -> str:
    count = _input_parameters(input_name, 288, 96)
    generator = LinearCongruentialGenerator(53)
    data = [
        data_directive("gs_in", generator.sequence(count, 4096)),
        data_directive("gs_table", [(i * 13 + 5) % 256 for i in range(256)]),
        data_directive("gs_out", [0] * count),
        data_directive("gs_hist", [0] * 64),
    ]
    setup = [
        "  la r16,gs_in",
        "  la r19,gs_table",
        "  la r17,gs_out",
        "  la r20,gs_hist",
        f"  ldi r18,{count}",
    ]
    # Ghostscript mixes table-driven colour mapping with histogram-style
    # updates over large static code; compose two loops.
    lookup_loop = frag.table_lookup_loop("gs_map", input_base="r16",
                                         table_base="r19", count="r18",
                                         accumulator="r11")
    hist_loop = frag.histogram_loop("gs_hist", input_base="r16",
                                    histogram_base="r20", count="r18")
    dither_chain = (
        frag.hash_mix_body("r2", "r4", temp1="r5", temp2="r6")
        + frag.clamp_body("r4", "r3", low=0, high=255,
                          temp1="r5", temp2="r6", temp3="r7")
    )
    dither_loop = frag.array_map_loop("gs_dither", input_base="r16",
                                      output_base="r17", count="r18",
                                      body=dither_chain)
    return frag.kernel("ghostscript", data, setup,
                       lookup_loop + hist_loop + dither_loop)


def register() -> None:
    """Register all MediaBench-like kernels with the global registry."""
    register_benchmark("adpcm.encode", "media", _adpcm_encode,
                       description="ADPCM speech encoder: quantisation chains with "
                                   "data-dependent branches (MediaBench adpcm rawcaudio)")
    register_benchmark("adpcm.decode", "media", _adpcm_decode,
                       description="ADPCM speech decoder: reconstruction and clamping "
                                   "chains (MediaBench adpcm rawdaudio)")
    register_benchmark("g721.encode", "media", _g721_encode,
                       description="G.721 encoder: table-driven quantisation "
                                   "(MediaBench g721)")
    register_benchmark("gsm.toast", "media", _gsm_toast,
                       description="GSM full-rate encoder: saturating filter chains "
                                   "(MediaBench gsm toast)")
    register_benchmark("gsm.untoast", "media", _gsm_untoast,
                       description="GSM full-rate decoder (MediaBench gsm untoast)")
    register_benchmark("jpeg.compress", "media", _jpeg_compress,
                       description="JPEG forward DCT and quantisation over 4-point "
                                   "blocks (MediaBench cjpeg)")
    register_benchmark("mpeg2.decode", "media", _mpeg2_decode,
                       description="MPEG-2 motion-compensation reconstruction with "
                                   "pixel clamping (MediaBench mpeg2dec)")
    register_benchmark("epic.encode", "media", _epic_encode,
                       description="EPIC pyramid filter: 3-tap weighted sums "
                                   "(MediaBench epic)")
    register_benchmark("mesa.osdemo", "media", _mesa_osdemo,
                       description="Mesa fixed-point vertex transform (MediaBench mesa)")
    register_benchmark("ghostscript", "media", _ghostscript,
                       description="Ghostscript-like colour mapping, histogram and "
                                   "dithering passes (MediaBench gs)")
