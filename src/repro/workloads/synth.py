"""The ``synth:`` workload family: seeded generative benchmarks.

Unlike the four hand-written suites, synth benchmarks are not enumerated
into the registry at import time — the family is infinite.  Instead the
benchmark *name* encodes the full generator spec
(``synth:v1-s42-b6-l12-...``; see :mod:`repro.fuzz.generator`) and
:meth:`~repro.workloads.base.BenchmarkRegistry.get` falls back to
:func:`synth_benchmark` for any ``synth:`` name, so every consumer of
registered benchmarks — :class:`~repro.api.spec.RunSpec`, pool workers, the
serve daemon, grid axes — resolves synth programs by name with no extra
plumbing.  Resolution is a pure function of the name, which is exactly the
property the content-addressed artifact store needs.
"""

from __future__ import annotations

from ..fuzz.generator import (
    SYNTH_BUDGET,
    SYNTH_PREFIX,
    SynthSpec,
    SynthSpecError,
    generate_source,
    synth,
)
from .base import Benchmark

#: Suite key reported by synth benchmarks.  Deliberately *not* added to
#: ``SUITE_NAMES``: the family never enters the registry, so suite sweeps
#: ("run every registered benchmark of suite X") are unaffected.
SYNTH_SUITE = "synth"


def is_synth_name(name: str) -> bool:
    """True if ``name`` belongs to the synth workload family."""
    return isinstance(name, str) and name.startswith(SYNTH_PREFIX)


def synth_benchmark(name: str) -> Benchmark:
    """Resolve a ``synth:`` benchmark name into a :class:`Benchmark`.

    Raises :class:`~repro.fuzz.generator.SynthSpecError` for malformed
    names (the registry's fallback translates that into its usual
    ``WorkloadError``).
    """
    spec = SynthSpec.from_name(name)

    def builder(input_name: str) -> str:
        return generate_source(spec, input_name)

    return Benchmark(
        name=name,
        suite=SYNTH_SUITE,
        builder=builder,
        inputs=("reference", "train"),
        description=f"seeded synthetic program (seed {spec.seed})",
        default_budget=SYNTH_BUDGET,
    )


__all__ = ["SYNTH_SUITE", "SynthSpec", "SynthSpecError", "is_synth_name",
           "synth", "synth_benchmark"]
