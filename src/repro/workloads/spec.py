"""SPECint-like synthetic kernels.

SPEC2000 integer programs have small basic blocks, frequent hard-to-predict
branches, pointer-chasing data structures and larger instruction footprints
than the embedded suites, which is why the paper reports the smallest
mini-graph coverage (13-21%) and gains (~2%) on SPECint.  The kernels below
reproduce those structural properties: dispatch loops with many static cases,
linked-list traversals, branchy search loops and hash/histogram updates.
"""

from __future__ import annotations

from typing import List

from .base import LinearCongruentialGenerator, data_directive, register_benchmark
from . import fragments as frag


def _size(input_name: str, reference: int, train: int) -> int:
    return reference if input_name == "reference" else train


def _values(seed: int, count: int, bound: int) -> List[int]:
    return LinearCongruentialGenerator(seed).sequence(count, bound)


def _linked_list(seed: int, nodes: int, base: int, *, stride_words: int = 2) -> List[int]:
    """Build a circular linked list as [value, next-address] node pairs.

    The node visit order is a pseudo-random permutation so that traversal has
    poor spatial locality, mimicking mcf's pointer behaviour.
    """
    generator = LinearCongruentialGenerator(seed)
    order = list(range(nodes))
    for position in range(nodes - 1, 0, -1):
        other = generator.below(position + 1)
        order[position], order[other] = order[other], order[position]
    words = [0] * (nodes * stride_words)
    for rank, node in enumerate(order):
        successor = order[(rank + 1) % nodes]
        words[node * stride_words] = generator.below(1 << 16)
        words[node * stride_words + 1] = base + successor * stride_words * 8
    return words


# ---------------------------------------------------------------------------
# gcc: token dispatch over many static cases (large footprint, short paths).
# ---------------------------------------------------------------------------

def _gcc(input_name: str) -> str:
    count = _size(input_name, 224, 96)
    data = [
        data_directive("gcc_tokens", _values(61, count, 1 << 20)),
        data_directive("gcc_symtab", [(i * 31 + 7) % 509 for i in range(128)]),
    ]
    setup = [
        "  la r16,gcc_tokens",
        "  la r19,gcc_symtab",
        f"  ldi r18,{count}",
    ]
    dispatch = frag.switch_dispatch_loop("gcc_dispatch", input_base="r16",
                                         count="r18", accumulator="r11", cases=12)
    lookup = frag.table_lookup_loop("gcc_lookup", input_base="r16",
                                    table_base="r19", count="r18",
                                    accumulator="r12", table_mask=127)
    return frag.kernel("gcc", data, setup, dispatch + lookup)


# ---------------------------------------------------------------------------
# mcf: pointer chasing over a shuffled linked list (latency bound, low IPC).
# ---------------------------------------------------------------------------

def _mcf(input_name: str) -> str:
    nodes = _size(input_name, 1536, 512)
    steps = _size(input_name, 2600, 900)
    list_base = 0x100000
    data = [data_directive("mcf_nodes", _linked_list(67, nodes, list_base))]
    setup = [
        "  la r16,mcf_nodes",
        f"  ldi r18,{steps}",
    ]
    chase = frag.pointer_chase_loop("mcf_chase", head="r16", steps="r18",
                                    accumulator="r11")
    # A short arc-cost update pass over the visited values keeps a second,
    # slightly more regular phase in the program.
    relax = [
        "  clr r10",
        "mcf_relax_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  cmplti r2,32768,r3",
        "  beq r3,mcf_relax_skip",
        "  addqi r2,7,r2",
        "  stq r2,0(r8)",
        "mcf_relax_skip:",
        "  addqi r10,2,r10",
        f"  cmplti r10,{min(nodes * 2, 768)},r9",
        "  bne r9,mcf_relax_loop",
    ]
    return frag.kernel("mcf", data, setup, chase + relax)


# ---------------------------------------------------------------------------
# crafty: bitboard manipulation — shift/mask/popcount-style chains plus
# branchy move scoring.
# ---------------------------------------------------------------------------

def _crafty(input_name: str) -> str:
    count = _size(input_name, 256, 96)
    data = [
        data_directive("crafty_boards", _values(71, count, 1 << 48)),
        data_directive("crafty_scores", [0] * count),
    ]
    setup = [
        "  la r16,crafty_boards",
        "  la r17,crafty_scores",
        f"  ldi r18,{count}",
    ]
    body = [
        "  clr r10",
        "crafty_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        # extract three piece fields from the bitboard
        "  srli r2,12,r3",
        "  andi r3,63,r3",
        "  srli r2,24,r4",
        "  andi r4,63,r4",
        "  andi r2,63,r5",
        # score: branchy comparison tree over the fields
        "  cmplt r3,r4,r6",
        "  beq r6,crafty_ge",
        "  subq r4,r3,r7",
        "  br crafty_score",
        "crafty_ge:",
        "  subq r3,r4,r7",
        "crafty_score:",
        "  cmplti r5,32,r6",
        "  beq r6,crafty_high",
        "  addqi r7,5,r7",
        "crafty_high:",
        "  slli r7,1,r7",
        "  addq r7,r5,r3",
        "  s8addl r10,r17,r8",
        "  stq r3,0(r8)",
    ] + frag.loop_footer("crafty", "r10", "r18")
    return frag.kernel("crafty", data, setup, body)


# ---------------------------------------------------------------------------
# twolf / vpr: placement cost evaluation — table lookups, branchy accumulation.
# ---------------------------------------------------------------------------

def _twolf(input_name: str) -> str:
    count = _size(input_name, 224, 80)
    data = [
        data_directive("twolf_cells", _values(73, count, 4096)),
        data_directive("twolf_hist", [0] * 64),
    ]
    setup = [
        "  la r16,twolf_cells",
        "  la r20,twolf_hist",
        f"  ldi r18,{count}",
    ]
    classify = frag.branchy_classify_loop("twolf_cls", input_base="r16",
                                          count="r18", accumulator="r11",
                                          thresholds=(24, 96, 200))
    histogram = frag.histogram_loop("twolf_hist", input_base="r16",
                                    histogram_base="r20", count="r18")
    return frag.kernel("twolf", data, setup, classify + histogram)


def _vpr(input_name: str) -> str:
    count = _size(input_name, 224, 80)
    data = [
        data_directive("vpr_nets", _values(79, count, 1 << 16)),
        data_directive("vpr_delay", [(i * 11 + 3) % 97 for i in range(256)]),
    ]
    setup = [
        "  la r16,vpr_nets",
        "  la r19,vpr_delay",
        f"  ldi r18,{count}",
    ]
    lookup = frag.table_lookup_loop("vpr_route", input_base="r16",
                                    table_base="r19", count="r18",
                                    accumulator="r11")
    body_chain = (
        frag.field_extract_body("r2", "r4", shift=6, mask=255, temp="r5")
        + ["  subq r2,r4,r4"]
        + frag.clamp_body("r4", "r3", low=0, high=4095,
                          temp1="r5", temp2="r6", temp3="r7")
    )
    cost = frag.reduction_loop("vpr_cost", input_base="r16", count="r18",
                               accumulator="r12", body=body_chain)
    return frag.kernel("vpr", data, setup, lookup + cost)


# ---------------------------------------------------------------------------
# gzip / parser / gap: string matching, grammar dispatch and list walking.
# ---------------------------------------------------------------------------

def _gzip(input_name: str) -> str:
    count = _size(input_name, 208, 72)
    data = [
        data_directive("gzip_window", _values(83, count + 8, 256)),
        data_directive("gzip_needle", _values(89, 3, 256)),
        data_directive("gzip_hist", [0] * 64),
    ]
    setup = [
        "  la r16,gzip_window",
        "  la r19,gzip_needle",
        "  la r20,gzip_hist",
        f"  ldi r18,{count}",
    ]
    match = frag.string_match_loop("gzip_match", haystack_base="r16",
                                   needle_base="r19", count="r18",
                                   needle_length=3, matches="r11")
    histogram = frag.histogram_loop("gzip_freq", input_base="r16",
                                    histogram_base="r20", count="r18")
    return frag.kernel("gzip", data, setup, match + histogram)


def _parser(input_name: str) -> str:
    nodes = _size(input_name, 1024, 384)
    steps = _size(input_name, 1800, 700)
    count = _size(input_name, 192, 64)
    list_base = 0x100000
    data = [
        data_directive("parser_nodes", _linked_list(97, nodes, list_base)),
        data_directive("parser_words", _values(101, count, 1 << 12)),
    ]
    setup = [
        "  la r16,parser_nodes",
        "  la r21,parser_words",
        f"  ldi r18,{steps}",
        f"  ldi r22,{count}",
    ]
    chase = frag.pointer_chase_loop("parser_chase", head="r16", steps="r18",
                                    accumulator="r11")
    dispatch = frag.switch_dispatch_loop("parser_rules", input_base="r21",
                                         count="r22", accumulator="r12", cases=10)
    return frag.kernel("parser", data, setup, chase + dispatch)


def _gap(input_name: str) -> str:
    count = _size(input_name, 224, 80)
    data = [
        data_directive("gap_perm", _values(103, count, 1 << 16)),
        data_directive("gap_orbit", [(i * 5 + 1) % 193 for i in range(256)]),
    ]
    setup = [
        "  la r16,gap_perm",
        "  la r19,gap_orbit",
        f"  ldi r18,{count}",
    ]
    body_chain = (
        frag.hash_mix_body("r2", "r4", temp1="r5", temp2="r6",
                           multiplier_shift=5, xor_shift=11)
        + frag.field_extract_body("r4", "r3", shift=2, mask=511, temp="r5")
    )
    reduce_pass = frag.reduction_loop("gap_mul", input_base="r16", count="r18",
                                      accumulator="r11", body=body_chain)
    lookup = frag.table_lookup_loop("gap_orbit", input_base="r16",
                                    table_base="r19", count="r18",
                                    accumulator="r12")
    return frag.kernel("gap", data, setup, reduce_pass + lookup)


def register() -> None:
    """Register all SPECint-like kernels with the global registry."""
    register_benchmark("gcc", "spec", _gcc,
                       description="Token dispatch over many static cases plus symbol "
                                   "table lookups (SPECint gcc)")
    register_benchmark("mcf", "spec", _mcf,
                       description="Pointer chasing over a shuffled linked list with a "
                                   "branchy relaxation pass (SPECint mcf)")
    register_benchmark("crafty", "spec", _crafty,
                       description="Bitboard field extraction and branchy move scoring "
                                   "(SPECint crafty)")
    register_benchmark("twolf", "spec", _twolf,
                       description="Branchy placement classification and histogram "
                                   "updates (SPECint twolf)")
    register_benchmark("vpr", "spec", _vpr,
                       description="Routing-delay table lookups and clamped cost "
                                   "accumulation (SPECint vpr)")
    register_benchmark("gzip", "spec", _gzip,
                       description="Sliding-window string matching and literal "
                                   "frequency counting (SPECint gzip)")
    register_benchmark("parser", "spec", _parser,
                       description="Dictionary list walking plus grammar-rule dispatch "
                                   "(SPECint parser)")
    register_benchmark("gap", "spec", _gap,
                       description="Permutation hashing and orbit table lookups "
                                   "(SPECint gap)")
