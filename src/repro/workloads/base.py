"""Workload infrastructure: benchmark definitions, inputs and the registry.

The paper evaluates SPEC2000 integer, MediaBench, CommBench and MiBench
binaries compiled for Alpha.  Those binaries and their inputs are not
available here, so each suite is represented by a family of synthetic kernels
written in MGA assembly whose *structural* properties (basic block size, ALU
chain length, load/store density, branchiness, footprint) mimic the
corresponding suite; docs/architecture.md records the substitution rationale.

Every benchmark provides at least two deterministic input sets:

* ``reference`` — used for all headline experiments;
* ``train`` — a differently-sized/shaped input used to build the profiles of
  the robustness study (Section 6.1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..program.program import Program

#: Canonical suite names, in the order the paper reports them.
SUITE_NAMES: Tuple[str, ...] = ("spec", "media", "comm", "embedded")

#: Human-readable suite titles (the paper's names).
SUITE_TITLES: Dict[str, str] = {
    "spec": "SPECint",
    "media": "MediaBench",
    "comm": "CommBench",
    "embedded": "MiBench",
}


class WorkloadError(ValueError):
    """Raised for unknown benchmarks, suites or inputs."""


@dataclass(frozen=True)
class Benchmark:
    """One benchmark kernel.

    Attributes:
        name: benchmark name (e.g. ``gsm.toast``).
        suite: suite key (one of :data:`SUITE_NAMES`).
        builder: callable mapping an input name to assembly source text.
        inputs: input names the builder accepts.
        description: what the kernel computes and which real benchmark it
            stands in for.
        default_budget: default dynamic-instruction budget for simulation.
    """

    name: str
    suite: str
    builder: Callable[[str], str]
    inputs: Tuple[str, ...] = ("reference", "train")
    description: str = ""
    default_budget: int = 30_000

    def source(self, input_name: str = "reference") -> str:
        """Assembly source for the given input set."""
        if input_name not in self.inputs:
            raise WorkloadError(
                f"benchmark {self.name!r} has no input {input_name!r}; "
                f"available: {', '.join(self.inputs)}")
        return self.builder(input_name)

    def build(self, input_name: str = "reference") -> Program:
        """Assemble the kernel into a :class:`Program`."""
        program = Program.from_assembly(
            self.name, self.source(input_name),
            metadata={"suite": self.suite, "input": input_name,
                      "description": self.description},
        )
        return program


class LinearCongruentialGenerator:
    """Tiny deterministic PRNG used to synthesise input data.

    Using our own generator (rather than :mod:`random`) guarantees the data
    segments are bit-identical across Python versions, which keeps the
    regression tests and recorded experiment results stable.
    """

    def __init__(self, seed: int) -> None:
        self._state = (seed * 2654435761 + 12345) & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        self._state = (self._state * 6364136223846793005 + 1442695040888963407) \
            & 0xFFFFFFFFFFFFFFFF
        return self._state

    def below(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return (self.next() >> 16) % bound

    def sequence(self, count: int, bound: int) -> List[int]:
        """A list of ``count`` values below ``bound``."""
        return [self.below(bound) for _ in range(count)]


def data_directive(name: str, values: Sequence[int]) -> str:
    """Format a ``.data`` directive for a list of values."""
    rendered = " ".join(str(value) for value in values)
    return f".data {name} {rendered}"


class BenchmarkRegistry:
    """Registry of all benchmarks, grouped by suite."""

    def __init__(self) -> None:
        self._benchmarks: Dict[str, Benchmark] = {}

    def register(self, benchmark: Benchmark) -> Benchmark:
        """Register a benchmark; names must be unique."""
        if benchmark.suite not in SUITE_NAMES:
            raise WorkloadError(f"unknown suite {benchmark.suite!r}")
        if benchmark.name in self._benchmarks:
            raise WorkloadError(f"duplicate benchmark {benchmark.name!r}")
        self._benchmarks[benchmark.name] = benchmark
        return benchmark

    def get(self, name: str) -> Benchmark:
        """Look up one benchmark by name.

        Names with the ``synth:`` prefix resolve through the generative
        workload family (:mod:`repro.workloads.synth`): the name encodes the
        full generator spec, so resolution needs no prior registration and
        works identically in pool workers and serve daemons.
        """
        try:
            return self._benchmarks[name]
        except KeyError as exc:
            if name.startswith("synth:"):
                # Imported from the module, not the package: the package
                # re-exports a `synth` *function* that shadows the
                # submodule attribute of the same name.
                from .synth import synth_benchmark
                try:
                    return synth_benchmark(name)
                except ValueError as synth_exc:
                    raise WorkloadError(str(synth_exc)) from synth_exc
            raise WorkloadError(f"unknown benchmark {name!r}") from exc

    def names(self, suite: Optional[str] = None) -> List[str]:
        """Benchmark names, optionally restricted to one suite."""
        if suite is None:
            return sorted(self._benchmarks)
        if suite not in SUITE_NAMES:
            raise WorkloadError(f"unknown suite {suite!r}")
        return sorted(name for name, bench in self._benchmarks.items()
                      if bench.suite == suite)

    def suite(self, suite: str) -> List[Benchmark]:
        """All benchmarks of one suite, sorted by name."""
        return [self.get(name) for name in self.names(suite)]

    def all(self) -> List[Benchmark]:
        """All registered benchmarks, sorted by name."""
        return [self._benchmarks[name] for name in sorted(self._benchmarks)]

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks


#: The global registry; suite modules populate it at import time.
REGISTRY = BenchmarkRegistry()


def register_benchmark(name: str, suite: str, builder: Callable[[str], str], *,
                       description: str = "",
                       inputs: Tuple[str, ...] = ("reference", "train"),
                       default_budget: int = 30_000) -> Benchmark:
    """Convenience wrapper used by the suite modules."""
    return REGISTRY.register(Benchmark(
        name=name, suite=suite, builder=builder, inputs=inputs,
        description=description, default_budget=default_budget,
    ))
