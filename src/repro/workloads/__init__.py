"""Synthetic benchmark suites standing in for the paper's four workload suites.

Importing this package populates the global :data:`REGISTRY` with every
kernel from the four suites.  The usual entry points are:

* :func:`load_benchmark` — assemble one benchmark into a
  :class:`~repro.program.program.Program`.
* :func:`suite_benchmarks` — names of the kernels in a suite.
* :data:`REGISTRY` — the full :class:`BenchmarkRegistry`.
"""

from __future__ import annotations

from typing import List, Optional

from ..program.program import Program
from .base import (
    Benchmark,
    BenchmarkRegistry,
    LinearCongruentialGenerator,
    REGISTRY,
    SUITE_NAMES,
    SUITE_TITLES,
    WorkloadError,
    data_directive,
    register_benchmark,
)
from . import comm, embedded, media, spec
from .synth import SYNTH_SUITE, is_synth_name, synth, synth_benchmark

# Populate the registry exactly once at import time.
if len(REGISTRY) == 0:  # pragma: no branch - guarded for re-import safety
    spec.register()
    media.register()
    comm.register()
    embedded.register()


#: Representative kernels per suite — the quick default used by the CLI and
#: the benchmark harness when no explicit benchmark list is given.
QUICK_BENCHMARKS = (
    "gcc", "mcf", "crafty", "gzip",                                # SPECint-like
    "adpcm.encode", "gsm.toast", "mpeg2.decode", "jpeg.compress",  # MediaBench-like
    "frag", "rtr", "reed.encode", "cast.encrypt",                  # CommBench-like
    "bitcount", "sha", "crc", "susan.smoothing",                   # MiBench-like
)


def benchmark_names(suite: Optional[str] = None) -> List[str]:
    """Names of all registered benchmarks, optionally filtered by suite."""
    return REGISTRY.names(suite)


def suite_benchmarks(suite: str) -> List[Benchmark]:
    """All benchmarks of one suite."""
    return REGISTRY.suite(suite)


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark definition."""
    return REGISTRY.get(name)


def load_benchmark(name: str, input_name: str = "reference") -> Program:
    """Assemble one benchmark into a runnable :class:`Program`."""
    return REGISTRY.get(name).build(input_name)


__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "LinearCongruentialGenerator",
    "QUICK_BENCHMARKS",
    "REGISTRY",
    "SUITE_NAMES",
    "SUITE_TITLES",
    "SYNTH_SUITE",
    "WorkloadError",
    "is_synth_name",
    "synth",
    "synth_benchmark",
    "data_directive",
    "register_benchmark",
    "benchmark_names",
    "suite_benchmarks",
    "get_benchmark",
    "load_benchmark",
]
