"""MiBench-like synthetic kernels (the paper's embedded suite).

MiBench programs (bitcount, susan, jpeg, dijkstra, sha, blowfish, CRC32,
rsynth, typeset/dither) are small-footprint embedded kernels with dense
integer dependence chains, which gives mini-graphs good coverage (the paper
reports ~7% average gains with peaks above 40% on kernels like bitcount and
sha once latency reduction is added).  Each kernel here mirrors one of those
programs structurally.
"""

from __future__ import annotations

from typing import List

from .base import LinearCongruentialGenerator, data_directive, register_benchmark
from . import fragments as frag


def _size(input_name: str, reference: int, train: int) -> int:
    return reference if input_name == "reference" else train


def _values(seed: int, count: int, bound: int) -> List[int]:
    return LinearCongruentialGenerator(seed).sequence(count, bound)


# ---------------------------------------------------------------------------
# bitcount: per-word population count using shift/mask ladders.
# ---------------------------------------------------------------------------

def _bitcount(input_name: str) -> str:
    count = _size(input_name, 288, 96)
    data = [data_directive("bits_in", _values(151, count, 1 << 48))]
    setup = [
        "  la r16,bits_in",
        f"  ldi r18,{count}",
    ]
    # Classic two-level bit ladder: pairwise sums, then nibble sums, then a
    # fold — all single-cycle integer chains.
    body_chain = [
        "  srli r2,1,r4",
        "  andi r4,85,r4",
        "  subq r2,r4,r4",
        "  srli r4,2,r5",
        "  andi r5,51,r5",
        "  andi r4,51,r6",
        "  addq r5,r6,r4",
        "  srli r4,4,r5",
        "  addq r4,r5,r4",
        "  andi r4,15,r3",
    ]
    body = frag.reduction_loop("bitcnt", input_base="r16", count="r18",
                               accumulator="r11", body=body_chain)
    return frag.kernel("bitcount", data, setup, body)


# ---------------------------------------------------------------------------
# susan: image smoothing — 3-tap weighted sums with clamping.
# ---------------------------------------------------------------------------

def _susan_smoothing(input_name: str) -> str:
    pixels = _size(input_name, 288, 96)
    data = [
        data_directive("susan_in", _values(157, pixels + 2, 256)),
        data_directive("susan_out", [0] * pixels),
    ]
    setup = [
        "  la r16,susan_in",
        "  la r17,susan_out",
        f"  ldi r18,{pixels}",
    ]
    body = [
        "  clr r10",
        "susan_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  ldq r3,8(r8)",
        "  ldq r4,16(r8)",
    ] + frag.weighted_sum3_body("r2", "r3", "r4", "r5", temp1="r6", temp2="r7") + \
        frag.clamp_body("r5", "r3", low=0, high=255,
                        temp1="r6", temp2="r7", temp3="r2") + [
        "  s8addl r10,r17,r8",
        "  stq r3,0(r8)",
    ] + frag.loop_footer("susan", "r10", "r18")
    return frag.kernel("susan.smoothing", data, setup, body)


# ---------------------------------------------------------------------------
# jpeg.encode / rgb conversion / dither: pixel-processing chains.
# ---------------------------------------------------------------------------

def _jpeg_encode(input_name: str) -> str:
    blocks = _size(input_name, 64, 24)
    count = blocks * 4
    data = [
        data_directive("jpege_in", _values(163, count, 256)),
        data_directive("jpege_out", [0] * count),
    ]
    setup = [
        "  la r16,jpege_in",
        "  la r17,jpege_out",
        f"  ldi r18,{blocks}",
    ]
    body = [
        "  clr r10",
        "jpege_loop:",
        "  slli r10,2,r12",
        "  s8addl r12,r16,r8",
        "  ldq r2,0(r8)",
        "  ldq r3,8(r8)",
        "  ldq r4,16(r8)",
        "  ldq r5,24(r8)",
    ] + frag.butterfly_body("r2", "r5", "r6", "r7", shift=1) + \
        frag.butterfly_body("r3", "r4", "r22", "r23", shift=1) + [
        "  addq r6,r22,r24",
        "  subq r6,r22,r25",
        "  addqi r24,8,r24",
        "  srai r24,4,r24",
        "  addqi r25,8,r25",
        "  srai r25,4,r25",
        "  s8addl r12,r17,r8",
        "  stq r24,0(r8)",
        "  stq r25,8(r8)",
        "  stq r7,16(r8)",
        "  stq r23,24(r8)",
    ] + frag.loop_footer("jpege", "r10", "r18")
    return frag.kernel("jpeg.encode", data, setup, body)


def _rgb_to_gray(input_name: str) -> str:
    pixels = _size(input_name, 256, 96)
    data = [
        data_directive("rgb_r", _values(167, pixels, 256)),
        data_directive("rgb_g", _values(173, pixels, 256)),
        data_directive("rgb_b", _values(179, pixels, 256)),
        data_directive("rgb_gray", [0] * pixels),
    ]
    setup = [
        "  la r16,rgb_r",
        "  la r19,rgb_g",
        "  la r21,rgb_b",
        "  la r17,rgb_gray",
        f"  ldi r18,{pixels}",
    ]
    body = [
        "  clr r10",
        "rgba_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  s8addl r10,r19,r8",
        "  ldq r3,0(r8)",
        "  s8addl r10,r21,r8",
        "  ldq r4,0(r8)",
    ] + frag.weighted_sum3_body("r2", "r3", "r4", "r5", temp1="r6", temp2="r7") + [
        "  s8addl r10,r17,r8",
        "  stq r5,0(r8)",
    ] + frag.loop_footer("rgba", "r10", "r18")
    return frag.kernel("rgb.to_gray", data, setup, body)


def _dither(input_name: str) -> str:
    pixels = _size(input_name, 288, 96)
    data = [
        data_directive("dither_in", _values(181, pixels, 256)),
        data_directive("dither_out", [0] * pixels),
    ]
    setup = [
        "  la r16,dither_in",
        "  la r17,dither_out",
        f"  ldi r18,{pixels}",
        "  clr r14",            # running error
    ]
    body = [
        "  clr r10",
        "dither_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  addq r2,r14,r3",
        "  cmplti r3,128,r4",
        "  beq r4,dither_high",
        "  clr r5",
        "  br dither_err",
        "dither_high:",
        "  ldi r5,255",
        "dither_err:",
        "  subq r3,r5,r14",
        "  srai r14,1,r14",
        "  s8addl r10,r17,r8",
        "  stq r5,0(r8)",
    ] + frag.loop_footer("dither", "r10", "r18")
    return frag.kernel("dither", data, setup, body)


# ---------------------------------------------------------------------------
# dijkstra: relaxation over an adjacency array — branchy with loads.
# ---------------------------------------------------------------------------

def _dijkstra(input_name: str) -> str:
    edges = _size(input_name, 224, 80)
    nodes = 32
    generator = LinearCongruentialGenerator(191)
    sources = [generator.below(nodes) for _ in range(edges)]
    targets = [generator.below(nodes) for _ in range(edges)]
    weights = [generator.below(64) + 1 for _ in range(edges)]
    data = [
        data_directive("dij_src", sources),
        data_directive("dij_dst", targets),
        data_directive("dij_weight", weights),
        data_directive("dij_dist", [4096] * nodes),
    ]
    setup = [
        "  la r16,dij_src",
        "  la r19,dij_dst",
        "  la r21,dij_weight",
        "  la r20,dij_dist",
        f"  ldi r18,{edges}",
        # seed: distance to node 0 is 0
        "  clr r2",
        "  stq r2,0(r20)",
    ]
    body = [
        "  clr r10",
        "dij_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",            # source node
        "  s8addl r10,r19,r8",
        "  ldq r3,0(r8)",            # target node
        "  s8addl r10,r21,r8",
        "  ldq r4,0(r8)",            # weight
        "  s8addl r2,r20,r5",
        "  ldq r6,0(r5)",            # dist[source]
        "  addq r6,r4,r6",           # candidate distance
        "  s8addl r3,r20,r5",
        "  ldq r7,0(r5)",            # dist[target]
        "  cmplt r6,r7,r22",
        "  beq r22,dij_skip",
        "  stq r6,0(r5)",            # relax
        "dij_skip:",
    ] + frag.loop_footer("dij", "r10", "r18")
    return frag.kernel("dijkstra", data, setup, body)


# ---------------------------------------------------------------------------
# sha / blowfish / crc: hashing and cipher rounds.
# ---------------------------------------------------------------------------

def _sha(input_name: str) -> str:
    words = _size(input_name, 256, 96)
    data = [data_directive("sha_message", _values(193, words, 1 << 32))]
    setup = [
        "  la r16,sha_message",
        f"  ldi r18,{words}",
        "  ldi r11,1732584193",      # state A
        "  ldi r12,4023233417",      # state B
        "  ldi r13,2562383102",      # state C
    ]
    body = [
        "  clr r10",
        "sha_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        # round: f = (B & C) | (~B & A); A' = rotl(A,5) + f + w + K
        "  and r12,r13,r3",
        "  bic r11,r12,r4",
        "  bis r3,r4,r3",
        "  slli r11,5,r5",
        "  srli r11,27,r6",
        "  bis r5,r6,r5",
        "  addq r5,r3,r5",
        "  addq r5,r2,r5",
        "  addqi r5,1518500249,r5",
        # rotate state
        "  bis r12,zero,r7",
        "  bis r13,zero,r12",
        "  slli r7,30,r13",
        "  srli r7,34,r7",
        "  bis r13,r7,r13",
        "  bis r11,zero,r4",
        "  bis r5,zero,r11",
        "  bis r4,zero,r14",
    ] + frag.loop_footer("sha", "r10", "r18")
    return frag.kernel("sha", data, setup, body)


def _blowfish(input_name: str) -> str:
    blocks = _size(input_name, 224, 80)
    sbox = [((i * 2654435761) >> 8) % 65536 for i in range(256)]
    data = [
        data_directive("bf_blocks", _values(197, blocks, 1 << 32)),
        data_directive("bf_sbox", sbox),
        data_directive("bf_out", [0] * blocks),
    ]
    setup = [
        "  la r16,bf_blocks",
        "  la r19,bf_sbox",
        "  la r17,bf_out",
        f"  ldi r18,{blocks}",
        "  ldi r13,608135816",
    ]
    body = [
        "  clr r10",
        "blwfd_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  xor r2,r13,r3",
        "  srli r3,8,r4",
        "  andi r4,255,r4",
        "  s8addl r4,r19,r5",
        "  ldq r6,0(r5)",             # S-box lookup
        "  andi r3,255,r7",
        "  addq r6,r7,r6",
        "  slli r6,3,r22",
        "  xor r22,r3,r22",
        "  s8addl r10,r17,r8",
        "  stq r22,0(r8)",
    ] + frag.loop_footer("blwfd", "r10", "r18")
    return frag.kernel("blowfish", data, setup, body)


def _crc(input_name: str) -> str:
    bytes_count = _size(input_name, 288, 96)
    crc_table = [((i * 0xEDB88320) ^ (i << 3)) % (1 << 32) for i in range(256)]
    data = [
        data_directive("crc_data", _values(199, bytes_count, 256)),
        data_directive("crc_table", crc_table),
    ]
    setup = [
        "  la r16,crc_data",
        "  la r19,crc_table",
        f"  ldi r18,{bytes_count}",
        "  ldi r11,4294967295",       # running CRC
    ]
    # Table-driven CRC has a tight load-to-use recurrence through the running
    # value, making it latency bound (the paper singles crc out as a program
    # that only benefits from latency reduction).
    body = [
        "  clr r10",
        "crc_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  xor r11,r2,r3",
        "  andi r3,255,r3",
        "  s8addl r3,r19,r4",
        "  ldq r5,0(r4)",
        "  srli r11,8,r11",
        "  xor r11,r5,r11",
    ] + frag.loop_footer("crc", "r10", "r18")
    return frag.kernel("crc", data, setup, body)


# ---------------------------------------------------------------------------
# listchase / fnvmix: long-horizon trace-volume stressors.
#
# Both kernels run an order of magnitude more iterations than the rest of the
# suite, so a full run commits tens of thousands of trace entries — they
# exist to exercise the columnar trace pipeline (packed trace storage, batch
# feeds, binary trace artifacts) at realistic volume.  listchase is
# latency-bound pointer chasing (health/patricia-style linked structures);
# fnvmix is a serial FNV-style multiply-xor recurrence, prime mini-graph
# material with one load per round.
# ---------------------------------------------------------------------------


def _chase_list(seed: int, nodes: int, base: int) -> List[int]:
    """Build a circular linked list as [value, next-address] node pairs.

    The visit order is a pseudo-random permutation, so the loop-carried
    ``next`` loads have poor spatial locality.
    """
    generator = LinearCongruentialGenerator(seed)
    order = list(range(nodes))
    for position in range(nodes - 1, 0, -1):
        other = generator.below(position + 1)
        order[position], order[other] = order[other], order[position]
    words = [0] * (nodes * 2)
    for rank, node in enumerate(order):
        successor = order[(rank + 1) % nodes]
        words[node * 2] = generator.below(1 << 16)
        words[node * 2 + 1] = base + successor * 16
    return words


def _listchase(input_name: str) -> str:
    nodes = _size(input_name, 1024, 256)
    steps = _size(input_name, 4800, 640)
    # chase_nodes is the first (only) data directive, so it lands at the
    # assembler's data base and the precomputed next-pointers are absolute.
    data = [data_directive("chase_nodes", _chase_list(227, nodes, 0x100000))]
    setup = [
        "  la r16,chase_nodes",
        f"  ldi r18,{steps}",
    ]
    body = frag.pointer_chase_loop("chase", head="r16", steps="r18",
                                   accumulator="r11")
    return frag.kernel("listchase", data, setup, body)


def _fnvmix(input_name: str) -> str:
    words = _size(input_name, 512, 128)
    rounds = _size(input_name, 3840, 512)
    data = [data_directive("fnv_words", _values(229, words, 1 << 32))]
    setup = [
        "  la r16,fnv_words",
        f"  ldi r18,{rounds}",
        "  ldi r13,16777619",          # FNV-1a style prime
        "  ldi r11,2166136261",        # offset basis
    ]
    body = [
        "  clr r10",
        "fnv_loop:",
        f"  andi r10,{words - 1},r2",  # wrap the round counter into the table
        "  s8addl r2,r16,r8",
        "  ldq r3,0(r8)",
        "  xor r11,r3,r11",            # acc ^= word
        "  mulq r11,r13,r11",          # acc *= prime
    ] + frag.hash_mix_body("r11", "r12", temp1="r4", temp2="r5") + [
        "  xor r11,r12,r11",           # fold the mixed bits back in
    ] + frag.loop_footer("fnv", "r10", "r18")
    return frag.kernel("fnvmix", data, setup, body)


# ---------------------------------------------------------------------------
# rsynth / adpcm: interpolation tables and speech coding (MiBench variants).
# ---------------------------------------------------------------------------

def _rsynth(input_name: str) -> str:
    samples = _size(input_name, 256, 88)
    wavetable = [((i * 37) % 255) - 128 for i in range(128)]
    data = [
        data_directive("rsy_phases", _values(211, samples, 1 << 16)),
        data_directive("rsy_wavetable", [value & 0xFFFF for value in wavetable]),
        data_directive("rsy_out", [0] * samples),
    ]
    setup = [
        "  la r16,rsy_phases",
        "  la r19,rsy_wavetable",
        "  la r17,rsy_out",
        f"  ldi r18,{samples}",
    ]
    body = [
        "  clr r10",
        "rsynt_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  srli r2,9,r3",
        "  andi r3,127,r3",
        "  s8addl r3,r19,r4",
        "  ldq r5,0(r4)",             # wavetable sample
        "  andi r2,511,r6",           # fractional part
        "  mulq r5,r6,r7",
        "  srai r7,9,r7",
        "  addq r5,r7,r5",
        "  s8addl r10,r17,r8",
        "  stq r5,0(r8)",
    ] + frag.loop_footer("rsynt", "r10", "r18")
    return frag.kernel("rsynth", data, setup, body)


def _adpcm_embedded(input_name: str) -> str:
    count = _size(input_name, 288, 96)
    data = [
        data_directive("adpce_in", _values(223, count, 4096)),
        data_directive("adpce_out", [0] * count),
    ]
    setup = [
        "  la r16,adpce_in",
        "  la r17,adpce_out",
        f"  ldi r18,{count}",
        "  clr r11",
        "  ldi r12,16",
    ]
    body_chain = (
        ["  subq r2,r11,r4"]
        + frag.field_extract_body("r4", "r5", shift=3, mask=15, temp="r6")
        + frag.scale_round_body("r5", "r3", scale=5, shift=1, bias=1, temp="r6")
        + ["  addq r11,r3,r11", "  srai r11,1,r11"]
    )
    body = frag.array_map_loop("adpce", input_base="r16", output_base="r17",
                               count="r18", body=body_chain)
    return frag.kernel("adpcm.embedded", data, setup, body)


def register() -> None:
    """Register all MiBench-like kernels with the global registry."""
    register_benchmark("bitcount", "embedded", _bitcount,
                       description="Population count via shift/mask ladders "
                                   "(MiBench bitcount)")
    register_benchmark("susan.smoothing", "embedded", _susan_smoothing,
                       description="Image smoothing: 3-tap weighted sums with clamping "
                                   "(MiBench susan)")
    register_benchmark("jpeg.encode", "embedded", _jpeg_encode,
                       description="Forward DCT butterflies and quantisation "
                                   "(MiBench cjpeg)")
    register_benchmark("rgb.to_gray", "embedded", _rgb_to_gray,
                       description="RGB-to-luma conversion chains (MiBench typeset/2rgba)")
    register_benchmark("dither", "embedded", _dither,
                       description="Error-diffusion dithering with a serial error "
                                   "recurrence (MiBench typeset dither)")
    register_benchmark("dijkstra", "embedded", _dijkstra,
                       description="Edge relaxation over adjacency arrays "
                                   "(MiBench dijkstra)")
    register_benchmark("sha", "embedded", _sha,
                       description="SHA-style rotate/xor/add rounds (MiBench sha)")
    register_benchmark("blowfish", "embedded", _blowfish,
                       description="Feistel rounds with S-box lookups (MiBench blowfish)")
    register_benchmark("crc", "embedded", _crc,
                       description="Table-driven CRC32 with a serial recurrence "
                                   "(MiBench CRC32)")
    register_benchmark("rsynth", "embedded", _rsynth,
                       description="Wavetable speech synthesis with interpolation "
                                   "(MiBench rsynth)")
    register_benchmark("adpcm.embedded", "embedded", _adpcm_embedded,
                       description="ADPCM encoder variant over MiBench-sized inputs "
                                   "(MiBench adpcm)")
    register_benchmark("listchase", "embedded", _listchase,
                       description="Long-horizon pointer-chasing list traversal "
                                   "(trace-volume stressor, health/patricia-like)",
                       default_budget=60_000)
    register_benchmark("fnvmix", "embedded", _fnvmix,
                       description="Long-horizon FNV-style multiply-xor hash/mix "
                                   "recurrence (trace-volume stressor)",
                       default_budget=60_000)
