"""CommBench-like synthetic kernels.

CommBench models packet-processing workloads: header-field extraction,
checksumming, scheduling (deficit round robin), route lookup (trie walks),
Reed-Solomon coding and traffic monitoring.  The kernels below reproduce
those loop shapes; they sit between SPEC and MediaBench in block size and
coverage, matching the paper's 6% average gain for the suite.
"""

from __future__ import annotations

from typing import List

from .base import LinearCongruentialGenerator, data_directive, register_benchmark
from . import fragments as frag


def _size(input_name: str, reference: int, train: int) -> int:
    return reference if input_name == "reference" else train


def _values(seed: int, count: int, bound: int) -> List[int]:
    return LinearCongruentialGenerator(seed).sequence(count, bound)


# ---------------------------------------------------------------------------
# frag: IP fragmentation — header field extraction and checksum update.
# ---------------------------------------------------------------------------

def _frag(input_name: str) -> str:
    packets = _size(input_name, 288, 96)
    data = [
        data_directive("frag_headers", _values(107, packets, 1 << 32)),
        data_directive("frag_out", [0] * packets),
    ]
    setup = [
        "  la r16,frag_headers",
        "  la r17,frag_out",
        f"  ldi r18,{packets}",
    ]
    body = [
        "  clr r10",
        "frag_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        # extract length, offset and flags fields
        "  srli r2,16,r3",
        "  andi r3,2047,r3",
        "  srli r2,3,r4",
        "  andi r4,255,r4",
        "  andi r2,7,r5",
        # recompute a folded checksum over the new fields
        "  addq r3,r4,r6",
        "  addq r6,r5,r6",
        "  srli r6,8,r7",
        "  andi r6,255,r6",
        "  addq r6,r7,r6",
        "  s8addl r10,r17,r8",
        "  stq r6,0(r8)",
    ] + frag.loop_footer("frag", "r10", "r18")
    return frag.kernel("frag", data, setup, body)


# ---------------------------------------------------------------------------
# drr: deficit round robin scheduling — branchy queue state updates.
# ---------------------------------------------------------------------------

def _drr(input_name: str) -> str:
    packets = _size(input_name, 256, 96)
    queues = 16
    data = [
        data_directive("drr_lengths", _values(109, packets, 1500)),
        data_directive("drr_deficits", [500] * queues),
        data_directive("drr_sent", [0] * queues),
    ]
    setup = [
        "  la r16,drr_lengths",
        "  la r19,drr_deficits",
        "  la r20,drr_sent",
        f"  ldi r18,{packets}",
        "  ldi r13,700",          # quantum
    ]
    body = [
        "  clr r10",
        "drr_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        f"  andi r10,{queues - 1},r3",
        "  s8addl r3,r19,r4",
        "  ldq r5,0(r4)",
        "  addq r5,r13,r5",           # add quantum
        "  cmplt r5,r2,r6",
        "  bne r6,drr_defer",
        "  subq r5,r2,r5",            # send the packet
        "  s8addl r3,r20,r7",
        "  ldq r22,0(r7)",
        "  addqi r22,1,r22",
        "  stq r22,0(r7)",
        "drr_defer:",
        "  stq r5,0(r4)",
    ] + frag.loop_footer("drr", "r10", "r18")
    return frag.kernel("drr", data, setup, body)


# ---------------------------------------------------------------------------
# rtr: route lookup — two-level table walk (dependent loads).
# ---------------------------------------------------------------------------

def _rtr(input_name: str) -> str:
    packets = _size(input_name, 256, 88)
    level1 = [(i * 17 + 1) % 64 for i in range(64)]
    level2 = [(i * 29 + 5) % 1024 for i in range(64)]
    data = [
        data_directive("rtr_addresses", _values(113, packets, 1 << 32)),
        data_directive("rtr_level1", level1),
        data_directive("rtr_level2", level2),
        data_directive("rtr_nexthop", [0] * packets),
    ]
    setup = [
        "  la r16,rtr_addresses",
        "  la r19,rtr_level1",
        "  la r21,rtr_level2",
        "  la r17,rtr_nexthop",
        f"  ldi r18,{packets}",
    ]
    body = [
        "  clr r10",
        "rtr_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  srli r2,26,r3",
        "  andi r3,63,r3",
        "  s8addl r3,r19,r4",
        "  ldq r5,0(r4)",            # first-level entry
        "  andi r5,63,r5",
        "  s8addl r5,r21,r6",
        "  ldq r7,0(r6)",            # second-level entry (dependent load)
        "  s8addl r10,r17,r8",
        "  stq r7,0(r8)",
    ] + frag.loop_footer("rtr", "r10", "r18")
    return frag.kernel("rtr", data, setup, body)


# ---------------------------------------------------------------------------
# reed: Reed-Solomon style coding — XOR accumulation with table lookups.
# ---------------------------------------------------------------------------

def _reed_encode(input_name: str) -> str:
    symbols = _size(input_name, 288, 96)
    gf_table = [((i * 3) ^ (i >> 2)) % 256 for i in range(256)]
    data = [
        data_directive("reed_data", _values(127, symbols, 256)),
        data_directive("reed_gf", gf_table),
        data_directive("reed_parity", [0] * symbols),
    ]
    setup = [
        "  la r16,reed_data",
        "  la r19,reed_gf",
        "  la r17,reed_parity",
        f"  ldi r18,{symbols}",
        "  clr r11",                 # running remainder
    ]
    body = [
        "  clr r10",
        "reede_loop:",
        "  s8addl r10,r16,r8",
        "  ldq r2,0(r8)",
        "  xor r2,r11,r3",
        "  andi r3,255,r3",
        "  s8addl r3,r19,r4",
        "  ldq r5,0(r4)",
        "  slli r11,1,r11",
        "  andi r11,255,r11",
        "  xor r11,r5,r11",
        "  s8addl r10,r17,r8",
        "  stq r11,0(r8)",
    ] + frag.loop_footer("reede", "r10", "r18")
    return frag.kernel("reed.encode", data, setup, body)


def _reed_decode(input_name: str) -> str:
    symbols = _size(input_name, 288, 96)
    data = [
        data_directive("reedd_received", _values(131, symbols, 256)),
        data_directive("reedd_syndrome", [0] * symbols),
    ]
    setup = [
        "  la r16,reedd_received",
        "  la r17,reedd_syndrome",
        f"  ldi r18,{symbols}",
        "  clr r14",
    ]
    body_chain = (
        frag.hash_mix_body("r2", "r4", temp1="r5", temp2="r6",
                           multiplier_shift=4, xor_shift=7)
        + [
            "  xor r4,r14,r3",
            "  andi r3,255,r3",
            "  slli r3,1,r14",
            "  xor r14,r2,r14",
            "  andi r14,255,r14",
        ]
    )
    body = frag.array_map_loop("reedd", input_base="r16", output_base="r17",
                               count="r18", body=body_chain)
    return frag.kernel("reed.decode", data, setup, body)


# ---------------------------------------------------------------------------
# cast: block-cipher rounds over a payload (long xor/rotate/add chains).
# ---------------------------------------------------------------------------

def _cast(input_name: str) -> str:
    blocks = _size(input_name, 224, 80)
    data = [
        data_directive("cast_payload", _values(137, blocks, 1 << 32)),
        data_directive("cast_out", [0] * blocks),
    ]
    setup = [
        "  la r16,cast_payload",
        "  la r17,cast_out",
        f"  ldi r18,{blocks}",
        "  ldi r13,2654435769",     # round key 1
        "  ldi r14,40503",          # round key 2
    ]
    body_chain = (
        frag.round_function_body("r2", "r13", "r4", rotate=11,
                                 temp1="r5", temp2="r6", temp3="r7")
        + frag.round_function_body("r4", "r14", "r3", rotate=19,
                                   temp1="r5", temp2="r6", temp3="r7")
    )
    body = frag.array_map_loop("cast", input_base="r16", output_base="r17",
                               count="r18", body=body_chain)
    return frag.kernel("cast.encrypt", data, setup, body)


# ---------------------------------------------------------------------------
# tcpdump: packet classification — branchy field tests, small blocks.
# ---------------------------------------------------------------------------

def _tcpdump(input_name: str) -> str:
    packets = _size(input_name, 256, 88)
    data = [
        data_directive("tcpd_packets", _values(139, packets, 1 << 32)),
        data_directive("tcpd_counts", [0] * 8),
    ]
    setup = [
        "  la r16,tcpd_packets",
        "  la r20,tcpd_counts",
        f"  ldi r18,{packets}",
    ]
    classify = frag.branchy_classify_loop("tcpd_cls", input_base="r16",
                                          count="r18", accumulator="r11",
                                          thresholds=(32, 96, 160, 224))
    histogram = frag.histogram_loop("tcpd_hist", input_base="r16",
                                    histogram_base="r20", count="r18",
                                    buckets_mask=7)
    return frag.kernel("tcpdump", data, setup, classify + histogram)


def register() -> None:
    """Register all CommBench-like kernels with the global registry."""
    register_benchmark("frag", "comm", _frag,
                       description="IP fragmentation: header field extraction and "
                                   "checksum folding (CommBench frag)")
    register_benchmark("drr", "comm", _drr,
                       description="Deficit-round-robin scheduling with branchy queue "
                                   "state updates (CommBench drr)")
    register_benchmark("rtr", "comm", _rtr,
                       description="Two-level route table walk with dependent loads "
                                   "(CommBench rtr)")
    register_benchmark("reed.encode", "comm", _reed_encode,
                       description="Reed-Solomon style parity generation over GF tables "
                                   "(CommBench reed)")
    register_benchmark("reed.decode", "comm", _reed_decode,
                       description="Reed-Solomon style syndrome computation "
                                   "(CommBench reed decode)")
    register_benchmark("cast.encrypt", "comm", _cast,
                       description="Block-cipher rounds: xor/rotate/add chains "
                                   "(CommBench cast)")
    register_benchmark("tcpdump", "comm", _tcpdump,
                       description="Packet classification with branchy field tests "
                                   "(CommBench tcpdump)")
