"""DISE substrate: productions, decode-time engine, MGTT and MGPP."""

from .production import (
    DISE_REGISTER_BACKING,
    NUM_DISE_REGISTERS,
    DiseError,
    Operand,
    Pattern,
    Production,
    ReplacementInstruction,
)
from .engine import (
    DecodeOutcome,
    DiseEngine,
    MgttEntry,
    MiniGraphPreprocessor,
    MiniGraphTagTable,
)
from .export import production_for_template, productions_for_selection

__all__ = [
    "DISE_REGISTER_BACKING",
    "NUM_DISE_REGISTERS",
    "DiseError",
    "Operand",
    "Pattern",
    "Production",
    "ReplacementInstruction",
    "DecodeOutcome",
    "DiseEngine",
    "MgttEntry",
    "MiniGraphPreprocessor",
    "MiniGraphTagTable",
    "production_for_template",
    "productions_for_selection",
]
