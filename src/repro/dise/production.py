"""DISE productions: patterns and parameterised replacement sequences.

DISE (dynamic instruction stream editing) translates instructions into
instruction sequences at decode time according to programmable rewriting
rules called *productions*.  A production is a <pattern : replacement
sequence> pair.  Patterns match aspects of a single instruction (opcode,
registers, immediate); replacement sequences are instruction templates whose
fields may be *parameters* filled from the matching instruction (``T.RS1``,
``T.RS2``, ``T.RD``, ``T.IMM``) or *DISE registers* (``$d0``...) drawn from a
dedicated register set so that expansions never clobber program state.

Mini-graph processing is an *aware* DISE utility: the handle format matches a
DISE codeword exactly (reserved opcode + immediate index), and the
replacement sequence expresses the mini-graph's internal dataflow with DISE
registers while the interface registers are parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import opcode

#: Number of dedicated DISE registers ($d0 ... $dN-1).
NUM_DISE_REGISTERS = 4
#: Architectural registers used to back DISE registers during expansion.  The
#: workload kernels never use these as live program values (they mirror the
#: Alpha convention of reserving a couple of registers for the assembler/PAL).
DISE_REGISTER_BACKING: Tuple[int, ...] = (25, 27, 23, 15)


class DiseError(ValueError):
    """Raised for malformed productions or failed parameter substitution."""


@dataclass(frozen=True)
class Pattern:
    """Pattern half of a production: matches one fetched instruction.

    ``None`` fields are wildcards.  ``codeword_id`` matches the immediate of a
    codeword/handle (aware utilities); ``op`` matches the mnemonic
    (transparent utilities).
    """

    op: Optional[str] = None
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    codeword_id: Optional[int] = None

    def matches(self, insn: Instruction) -> bool:
        """True if ``insn`` matches this pattern."""
        if self.op is not None and insn.op != self.op:
            return False
        if self.rd is not None and insn.rd != self.rd:
            return False
        if self.rs1 is not None and insn.rs1 != self.rs1:
            return False
        if self.rs2 is not None and insn.rs2 != self.rs2:
            return False
        if self.codeword_id is not None:
            if not insn.is_handle or insn.imm != self.codeword_id:
                return False
        return True


@dataclass(frozen=True)
class Operand:
    """One operand of a replacement-sequence template instruction.

    Exactly one of the fields is meaningful:

    * ``parameter``: ``"RS1"``, ``"RS2"``, ``"RD"`` or ``"IMM"`` — filled from
      the matching instruction;
    * ``dise_register``: index of a dedicated DISE register;
    * ``register`` / ``literal``: a hard-coded register number or immediate.
    """

    parameter: Optional[str] = None
    dise_register: Optional[int] = None
    register: Optional[int] = None
    literal: Optional[int] = None

    def __post_init__(self) -> None:
        provided = [value for value in (self.parameter, self.dise_register,
                                        self.register, self.literal) if value is not None]
        if len(provided) != 1:
            raise DiseError("an operand must specify exactly one source")
        if self.parameter is not None and self.parameter not in ("RS1", "RS2", "RD", "IMM"):
            raise DiseError(f"unknown template parameter {self.parameter!r}")
        if self.dise_register is not None and not 0 <= self.dise_register < NUM_DISE_REGISTERS:
            raise DiseError(f"DISE register index out of range: {self.dise_register}")

    # Convenience constructors ----------------------------------------------------

    @staticmethod
    def rs1() -> "Operand":
        return Operand(parameter="RS1")

    @staticmethod
    def rs2() -> "Operand":
        return Operand(parameter="RS2")

    @staticmethod
    def rd() -> "Operand":
        return Operand(parameter="RD")

    @staticmethod
    def imm() -> "Operand":
        return Operand(parameter="IMM")

    @staticmethod
    def dise(index: int) -> "Operand":
        return Operand(dise_register=index)

    @staticmethod
    def reg(register: int) -> "Operand":
        return Operand(register=register)

    @staticmethod
    def lit(value: int) -> "Operand":
        return Operand(literal=value)

    def resolve_register(self, matched: Instruction) -> int:
        """Resolve to a concrete register number given the matched instruction."""
        if self.register is not None:
            return self.register
        if self.dise_register is not None:
            return DISE_REGISTER_BACKING[self.dise_register]
        if self.parameter == "RS1":
            if matched.rs1 is None:
                raise DiseError("pattern instruction has no RS1 to substitute")
            return matched.rs1
        if self.parameter == "RS2":
            if matched.rs2 is None:
                raise DiseError("pattern instruction has no RS2 to substitute")
            return matched.rs2
        if self.parameter == "RD":
            if matched.rd is None:
                raise DiseError("pattern instruction has no RD to substitute")
            return matched.rd
        raise DiseError(f"operand {self} does not name a register")

    def resolve_immediate(self, matched: Instruction) -> int:
        """Resolve to a concrete immediate given the matched instruction."""
        if self.literal is not None:
            return self.literal
        if self.parameter == "IMM":
            if matched.imm is None:
                raise DiseError("pattern instruction has no immediate to substitute")
            return matched.imm
        raise DiseError(f"operand {self} does not name an immediate")


@dataclass(frozen=True)
class ReplacementInstruction:
    """One instruction template in a replacement sequence."""

    op: str
    rd: Optional[Operand] = None
    rs1: Optional[Operand] = None
    rs2: Optional[Operand] = None
    imm: Optional[Operand] = None

    def instantiate(self, matched: Instruction) -> Instruction:
        """Produce a concrete instruction for the matched instruction."""
        spec = opcode(self.op)
        rd = self.rd.resolve_register(matched) if self.rd is not None else None
        rs1 = self.rs1.resolve_register(matched) if self.rs1 is not None else None
        rs2 = self.rs2.resolve_register(matched) if self.rs2 is not None else None
        imm = self.imm.resolve_immediate(matched) if self.imm is not None else None
        return Instruction(self.op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


@dataclass(frozen=True)
class Production:
    """A complete DISE production: pattern plus replacement sequence."""

    name: str
    pattern: Pattern
    replacement: Tuple[ReplacementInstruction, ...]

    def matches(self, insn: Instruction) -> bool:
        return self.pattern.matches(insn)

    def expand(self, insn: Instruction) -> List[Instruction]:
        """Instantiate the replacement sequence for ``insn``."""
        return [template.instantiate(insn) for template in self.replacement]

    @property
    def is_aware(self) -> bool:
        """Aware productions match codewords planted by a binary rewriter."""
        return self.pattern.codeword_id is not None
