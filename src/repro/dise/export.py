"""Export a mini-graph selection as DISE productions.

Section 5 of the paper specifies application-specific mini-graphs as DISE
productions: the handle is a codeword, the interface registers are template
parameters and interior dataflow uses the dedicated DISE register set.  This
module converts selection results / templates into that form so that a DISE
engine can be commissioned with exactly the mini-graphs the selector chose
(and so the MGPP round-trip can be tested: export -> compile -> identical
template).
"""

from __future__ import annotations

from typing import List, Optional

from ..minigraph.selection import SelectionResult
from ..minigraph.templates import MiniGraphTemplate, OperandKind, OperandRef
from .production import (
    NUM_DISE_REGISTERS,
    DiseError,
    Operand,
    Pattern,
    Production,
    ReplacementInstruction,
)

_PARAMETER_FOR_EXTERNAL = ("RS1", "RS2")


def _operand_for_ref(ref: Optional[OperandRef],
                     dise_register_of_slot: dict[int, int]) -> Optional[Operand]:
    if ref is None:
        return None
    if ref.kind is OperandKind.EXTERNAL:
        return Operand(parameter=_PARAMETER_FOR_EXTERNAL[ref.index])
    if ref.kind is OperandKind.INTERNAL:
        if ref.index not in dise_register_of_slot:
            # The referenced slot's value went to T.RD (it is the interface
            # output); the strict export cannot express reading it back, so the
            # caller falls back to the interior-copy form.
            raise DiseError("interior reference to the interface output")
        return Operand(dise_register=dise_register_of_slot[ref.index])
    if ref.kind is OperandKind.ZERO:
        from ..isa.registers import ZERO_REG
        return Operand(register=ZERO_REG)
    raise DiseError(f"cannot convert operand reference {ref}")


def production_for_template(mgid: int, template: MiniGraphTemplate, *,
                            name: Optional[str] = None) -> Production:
    """Build the DISE production whose codeword is the handle with ``mgid``."""
    dise_register_of_slot: dict[int, int] = {}
    next_dise = 0
    replacement: List[ReplacementInstruction] = []
    for slot, template_insn in enumerate(template.instructions):
        destination: Optional[Operand] = None
        if slot == template.out_index:
            destination = Operand(parameter="RD")
        elif template_insn.spec.writes_rd:
            if next_dise >= NUM_DISE_REGISTERS:
                raise DiseError(
                    f"template needs more than {NUM_DISE_REGISTERS} DISE registers")
            dise_register_of_slot[slot] = next_dise
            destination = Operand(dise_register=next_dise)
            next_dise += 1
        if slot in dise_register_of_slot and slot == template.out_index:
            # An instruction cannot be both interior producer and output here;
            # out_index takes precedence and interior consumers read RD — which
            # the MGPP forbids — so such templates are rejected upstream.
            raise DiseError("conflicting destination classification")
        # Interior values produced by the output instruction are referenced via
        # the output parameter only when legal; templates produced by the
        # enumerator reference the producing slot, so map it to a DISE register
        # lazily when needed.
        replacement.append(ReplacementInstruction(
            op=template_insn.op,
            rd=destination,
            rs1=_operand_for_ref(template_insn.src0, dise_register_of_slot),
            rs2=_operand_for_ref(template_insn.src1, dise_register_of_slot),
            imm=Operand(literal=template_insn.imm) if template_insn.imm is not None else None,
        ))
    return Production(
        name=name or f"minigraph-{mgid}",
        pattern=Pattern(op="mg", codeword_id=mgid),
        replacement=tuple(replacement),
    )


def productions_for_selection(selection: SelectionResult) -> List[Production]:
    """Convert every selected mini-graph into a DISE production.

    Templates whose interior values are also the interface output (the
    ``addl/cmplt/bne`` example of Figure 1, where the first instruction both
    produces the output and feeds the next instruction) cannot be expressed
    with the strict "RD is never read" rule, so they are exported with an
    extra DISE register carrying the interior copy.
    """
    productions: List[Production] = []
    for selected in selection.selected:
        template = selected.template
        try:
            productions.append(production_for_template(selected.mgid, template))
        except DiseError:
            productions.append(_production_with_interior_copy(selected.mgid, template))
    return productions


def _production_with_interior_copy(mgid: int, template: MiniGraphTemplate) -> Production:
    """Fallback export: route every produced value through a DISE register and
    add a final copy into T.RD for the interface output."""
    dise_register_of_slot: dict[int, int] = {}
    next_dise = 0
    replacement: List[ReplacementInstruction] = []
    for slot, template_insn in enumerate(template.instructions):
        destination: Optional[Operand] = None
        if template_insn.spec.writes_rd:
            if next_dise >= NUM_DISE_REGISTERS:
                raise DiseError(
                    f"template needs more than {NUM_DISE_REGISTERS} DISE registers")
            dise_register_of_slot[slot] = next_dise
            destination = Operand(dise_register=next_dise)
            next_dise += 1
        replacement.append(ReplacementInstruction(
            op=template_insn.op,
            rd=destination,
            rs1=_operand_for_ref(template_insn.src0, dise_register_of_slot),
            rs2=_operand_for_ref(template_insn.src1, dise_register_of_slot),
            imm=Operand(literal=template_insn.imm) if template_insn.imm is not None else None,
        ))
    if template.out_index is not None:
        from ..isa.registers import ZERO_REG
        replacement.append(ReplacementInstruction(
            op="bis",
            rd=Operand(parameter="RD"),
            rs1=Operand(dise_register=dise_register_of_slot[template.out_index]),
            rs2=Operand(register=ZERO_REG),
        ))
    return Production(
        name=f"minigraph-{mgid}-expanded",
        pattern=Pattern(op="mg", codeword_id=mgid),
        replacement=tuple(replacement),
    )
