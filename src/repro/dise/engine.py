"""The DISE decode-time engine, the MGTT and the MGPP.

A DISE mini-graph microarchitecture (Section 5 of the paper) combines three
pieces:

* the **engine** holds the active productions and, at decode time, either
  expands a matching instruction into its replacement sequence or — for
  approved mini-graph codewords — leaves the handle in-line so the execution
  core can exploit it;
* the **MGTT** (mini-graph tag table) turns the MGT into a cache: it records
  which MGIDs have been pre-processed and approved;
* the **MGPP** (mini-graph pre-processor) scans a production's replacement
  sequence, checks that it satisfies the mini-graph constraints and compiles
  it into MGHT/MGST format.  Productions that do not qualify simply remain
  ordinary DISE expansions — the processor "can always expand a mini-graph it
  doesn't understand".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.registers import ZERO_REG
from ..minigraph.mgt import MgtBuildOptions, MiniGraphTable
from ..minigraph.templates import (
    MiniGraphTemplate,
    OperandRef,
    TemplateError,
    TemplateInstruction,
    external,
    immediate,
    internal,
    zero,
)
from .production import DiseError, Operand, Production, ReplacementInstruction


@dataclass
class MgttEntry:
    """One mini-graph tag table entry.

    ``valid`` means the MGID has been seen and pre-processed; ``approved``
    means the MGPP accepted it and handles with this MGID should stay
    un-expanded.
    """

    mgid: int
    valid: bool = False
    approved: bool = False


class MiniGraphTagTable:
    """Tag table that makes the MGT behave as a cache of approved MGIDs."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("MGTT capacity must be positive")
        self._capacity = capacity
        self._entries: Dict[int, MgttEntry] = {}
        self._lru: List[int] = []

    def __contains__(self, mgid: int) -> bool:
        entry = self._entries.get(mgid)
        return entry is not None and entry.valid

    def is_approved(self, mgid: int) -> bool:
        """True if handles with ``mgid`` should remain un-expanded."""
        entry = self._entries.get(mgid)
        return entry is not None and entry.valid and entry.approved

    def install(self, mgid: int, approved: bool) -> MgttEntry:
        """Record the pre-processing verdict for ``mgid`` (with LRU eviction)."""
        if mgid in self._entries:
            self._lru.remove(mgid)
        elif len(self._entries) >= self._capacity:
            victim = self._lru.pop()
            del self._entries[victim]
        entry = MgttEntry(mgid=mgid, valid=True, approved=approved)
        self._entries[mgid] = entry
        self._lru.insert(0, mgid)
        return entry

    def touch(self, mgid: int) -> None:
        """Refresh LRU state on a hit."""
        if mgid in self._entries:
            self._lru.remove(mgid)
            self._lru.insert(0, mgid)

    def occupancy(self) -> int:
        return len(self._entries)


class MiniGraphPreprocessor:
    """Compiles DISE replacement sequences into mini-graph templates.

    The MGPP is a small finite-state machine between DISE and the MGT.  Its
    software model walks the replacement sequence once, classifying every
    operand as an interface parameter, a DISE (interior) register or an
    immediate, and rejects sequences that violate the mini-graph constraints.
    """

    def compile(self, production: Production) -> Optional[MiniGraphTemplate]:
        """Return a template for ``production`` or None if it does not qualify."""
        try:
            return self._compile(production)
        except (DiseError, TemplateError):
            return None

    def _compile(self, production: Production) -> Optional[MiniGraphTemplate]:
        if len(production.replacement) < 2:
            return None
        dise_producer: Dict[int, int] = {}   # DISE register index -> producing slot
        external_order: List[str] = []       # parameter names in E-index order
        out_index: Optional[int] = None
        template_instructions: List[TemplateInstruction] = []

        def ref_for(operand: Optional[Operand]) -> Optional[OperandRef]:
            if operand is None:
                return None
            if operand.dise_register is not None:
                if operand.dise_register not in dise_producer:
                    raise DiseError("DISE register read before being written")
                return internal(dise_producer[operand.dise_register])
            if operand.parameter in ("RS1", "RS2"):
                if operand.parameter not in external_order:
                    external_order.append(operand.parameter)
                return external(external_order.index(operand.parameter))
            if operand.parameter == "RD":
                # Reading RD inside the sequence means reading the interface
                # output before it is produced; mini-graphs do not allow it.
                raise DiseError("mini-graph replacement sequences may not read T.RD")
            if operand.register == ZERO_REG:
                return zero()
            if operand.register is not None:
                raise DiseError("hard-coded program registers are not mini-graph eligible")
            raise DiseError("immediate operand used in a register position")

        for slot, template in enumerate(production.replacement):
            spec_imm = None
            if template.imm is not None:
                if template.imm.literal is not None:
                    spec_imm = template.imm.literal
                else:
                    raise DiseError("parameterised immediates are not supported in the MGT")
            src0 = ref_for(template.rs1)
            src1 = ref_for(template.rs2)
            if template.rd is not None:
                if template.rd.parameter == "RD":
                    if out_index is not None:
                        raise DiseError("mini-graphs allow a single interface output")
                    out_index = slot
                elif template.rd.dise_register is not None:
                    dise_producer[template.rd.dise_register] = slot
                else:
                    raise DiseError("destinations must be T.RD or a DISE register")
            template_instructions.append(TemplateInstruction(
                op=template.op, src0=src0, src1=src1, imm=spec_imm))

        if len(external_order) > 2:
            return None
        return MiniGraphTemplate(
            instructions=tuple(template_instructions),
            num_inputs=len(external_order),
            out_index=out_index,
        )


@dataclass
class DecodeOutcome:
    """Result of running one fetched instruction through the DISE stage."""

    instructions: List[Instruction]
    expanded: bool
    matched_production: Optional[str] = None

    @property
    def kept_handle(self) -> bool:
        return not self.expanded and len(self.instructions) == 1 \
            and self.instructions[0].is_handle


class DiseEngine:
    """Decode-time production matching with the keep-handle-inline option."""

    def __init__(self, *, mgtt_capacity: int = 512,
                 mgt_options: Optional[MgtBuildOptions] = None) -> None:
        self._productions: List[Production] = []
        self._by_codeword: Dict[int, Production] = {}
        self.mgtt = MiniGraphTagTable(mgtt_capacity)
        self.mgpp = MiniGraphPreprocessor()
        self.mgt = MiniGraphTable(mgt_options)
        self.expansions = 0
        self.handles_kept = 0

    # -- production management -----------------------------------------------------

    def load_production(self, production: Production) -> None:
        """Load one production (the OS loading a ``.dise`` section entry)."""
        self._productions.append(production)
        if production.pattern.codeword_id is not None:
            self._by_codeword[production.pattern.codeword_id] = production

    def load_productions(self, productions: Sequence[Production]) -> None:
        for production in productions:
            self.load_production(production)

    def production_count(self) -> int:
        return len(self._productions)

    # -- decode path ------------------------------------------------------------------

    def decode(self, insn: Instruction) -> DecodeOutcome:
        """Run one fetched instruction through DISE.

        Handles whose MGID is approved in the MGTT are kept in-line; everything
        else that matches a production is expanded into its replacement
        sequence (pre-processing the mini-graph on the first miss).
        """
        if insn.is_handle:
            return self._decode_handle(insn)
        for production in self._productions:
            if production.pattern.codeword_id is None and production.matches(insn):
                self.expansions += 1
                return DecodeOutcome(instructions=production.expand(insn),
                                     expanded=True,
                                     matched_production=production.name)
        return DecodeOutcome(instructions=[insn], expanded=False)

    def _decode_handle(self, handle: Instruction) -> DecodeOutcome:
        mgid = handle.mgid
        production = self._by_codeword.get(mgid)
        if production is None:
            raise DiseError(f"no production loaded for codeword/MGID {mgid}")
        if mgid in self.mgtt:
            self.mgtt.touch(mgid)
            if self.mgtt.is_approved(mgid):
                self.handles_kept += 1
                return DecodeOutcome(instructions=[handle], expanded=False,
                                     matched_production=production.name)
            self.expansions += 1
            return DecodeOutcome(instructions=production.expand(handle), expanded=True,
                                 matched_production=production.name)
        # MGTT miss: expand this occurrence (to avoid stalling the pipeline)
        # and send a copy to the MGPP for inspection/compilation.
        template = self.mgpp.compile(production)
        approved = template is not None
        if approved and mgid not in self.mgt:
            self.mgt.add(mgid, template)
        self.mgtt.install(mgid, approved)
        self.expansions += 1
        return DecodeOutcome(instructions=production.expand(handle), expanded=True,
                             matched_production=production.name)
