"""The ``repro serve`` daemon: socket front end, scheduler, graceful drain.

One :class:`ServeServer` owns four moving parts:

* a Unix-domain **listener** accepting NDJSON connections
  (:mod:`repro.serve.protocol`), one handler thread per client;
* the bounded **job queue** (:mod:`repro.serve.queue`) — admission control
  and priorities;
* the warm **worker pool** (:mod:`repro.serve.pool`) — persistent sessions
  with hot registries and caches;
* a **scheduler** thread marrying the two: whenever a worker is idle it
  claims the highest-priority pending stage and dispatches it.  Stages are
  :func:`~repro.grid.planner.plan_cells` shared-artifact groups, so
  concurrent clients submitting overlapping work dedup against each other
  through the shared store — the second client's cells are store hits, not
  recomputations.

Rows stream back live: each completed cell appends one row to its job
record and wakes every connection streaming that job.  A worker killed
mid-stage is respawned, its stage retried once, then the job is
quarantined.  ``SIGTERM`` (or the ``shutdown`` op) triggers a **graceful
drain**: new submits are rejected with a structured ``draining`` error,
in-flight jobs run to completion, then the daemon exits.
"""

from __future__ import annotations

import base64
import os
import pickle
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from .. import __version__
from ..api.store import MISS
from ..grid.engine import _row, cell_key
from ..grid.planner import plan_cells
from ..grid.spec import GridCell, GridError
from ..workloads.base import WorkloadError
from . import protocol
from .pool import PoolCallbacks, PoolTask, TaskKey, make_pool
from .queue import AdmissionError, JobQueue, JobRecord

#: Default bound on concurrently admitted (non-terminal) jobs.
DEFAULT_QUEUE_LIMIT = 32

#: Scheduler idle poll (also the drain-completion check cadence).
_SCHEDULE_INTERVAL_SECONDS = 0.05


class _BadRequest(ValueError):
    """Internal: maps to a ``bad-request`` protocol error."""


class ServeServer:
    """The daemon.  ``start()`` spins the threads; ``serve_forever()``
    blocks until a shutdown is requested and the drain completes."""

    def __init__(self, socket_path: Optional[os.PathLike] = None, *,
                 cache_dir: Optional[os.PathLike] = None,
                 workers: Optional[int] = None,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 version: Optional[str] = None,
                 backend: str = "auto") -> None:
        self.socket_path = Path(socket_path) if socket_path is not None \
            else protocol.default_socket_path()
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.version = version if version is not None else __version__
        self.workers = workers if workers is not None \
            else min(4, os.cpu_count() or 1)
        self.backend = backend
        self.queue = JobQueue(queue_limit)
        self.pool = None
        self.started_at: Optional[float] = None
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._streams: Set[protocol.MessageStream] = set()
        self._streams_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._draining = False
        self._drain_lock = threading.Lock()
        #: (job id) -> {cell index -> GridCell} for row reconstruction.
        self._cells: Dict[str, Dict[int, GridCell]] = {}
        #: (job id) -> cell indices already delivered (dedups the replay a
        #: retried stage performs after its first worker died mid-stream).
        self._delivered: Dict[str, Set[int]] = {}
        self._probe_store = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise OSError("repro serve needs Unix domain sockets")
        self.started_at = time.monotonic()
        self.pool = make_pool(
            self.backend, self.workers, self.cache_dir, self.version,
            PoolCallbacks(on_row=self._on_row,
                          on_stage_done=self._on_stage_done,
                          on_stage_failed=self._on_stage_failed,
                          on_worker_death=self._on_worker_death))
        if self.pool.backend == "thread":
            # Thread workers share one in-process session; probing its
            # store sees memory entries even without a disk layer.
            self._probe_store = self.pool.session.store
        else:
            from ..api.session import Session
            self._probe_store = Session(cache_dir=self.cache_dir,
                                        version=self.version).store
        self._bind()
        self._spawn(self._accept_loop, "repro-serve-accept")
        self._spawn(self._scheduler_loop, "repro-serve-scheduler")

    def _bind(self) -> None:
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(str(self.socket_path))
        except OSError:
            # A stale socket file from a dead daemon: connect-probe it.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(str(self.socket_path))
            except OSError:
                self.socket_path.unlink(missing_ok=True)
                listener.bind(str(self.socket_path))
            else:
                probe.close()
                listener.close()
                raise OSError(f"a daemon is already listening on "
                              f"{self.socket_path}")
            finally:
                probe.close()
        listener.listen(16)
        self._listener = listener

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def serve_forever(self) -> None:
        """Block until shutdown (signal, ``shutdown`` op or :meth:`stop`)."""
        self._stop_event.wait()
        self._teardown()

    def request_shutdown(self, *, drain: bool = True) -> None:
        """Begin shutdown; with ``drain`` in-flight jobs finish first.

        Safe from any thread and from signal handlers.  New submissions are
        rejected immediately either way; without ``drain``, queued and
        running jobs are cancelled.
        """
        with self._drain_lock:
            self._draining = True
        self.queue.begin_drain()
        if not drain:
            for job in self.queue.jobs():
                self.queue.cancel(job.id)
        # The scheduler loop observes the drained queue and sets the stop
        # event once every job is terminal.

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Synchronous shutdown helper for embedding (tests, bench)."""
        self.request_shutdown(drain=drain)
        deadline = time.monotonic() + timeout
        while not self._stop_event.is_set() and time.monotonic() < deadline:
            time.sleep(0.01)
        self._stop_event.set()
        self._teardown()

    def _teardown(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self.socket_path.unlink(missing_ok=True)
        with self._streams_lock:
            streams = list(self._streams)
        for stream in streams:
            stream.close()
        if self.pool is not None:
            self.pool.stop()

    # -- scheduler -----------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        queue = self.queue
        while not self._stop_event.is_set():
            with self._drain_lock:
                draining = self._draining
            if draining and queue.all_terminal():
                self._stop_event.set()
                self._teardown()
                return
            dispatched = False
            if self.pool.has_capacity():
                claim = queue.next_stage()
                if claim is not None:
                    job, index = claim
                    task = PoolTask(
                        key=(job.id, index, job.stage_attempts[index]),
                        kind="artifacts" if job.kind == "artifacts"
                             else "cells",
                        namespace=job.namespace,
                        cells=tuple((cell.index, cell.spec)
                                    for cell in job.stages[index]))
                    if self.pool.dispatch(task):
                        dispatched = True
                    else:
                        queue.release_stage(job, index)
            if not dispatched:
                with queue.cond:
                    queue.cond.wait(timeout=_SCHEDULE_INTERVAL_SECONDS)

    # -- pool callbacks ------------------------------------------------------------

    def _on_row(self, key: TaskKey, index: int,
                payload: Dict[str, Any]) -> None:
        job_id = key[0]
        job = self.queue.get(job_id)
        if job is None or job.terminal:
            return
        delivered = self._delivered.setdefault(job_id, set())
        with self.queue.cond:
            if index in delivered:
                return  # replay from a retried stage
            delivered.add(index)
        if job.kind == "artifacts":
            row = payload
        else:
            cell = self._cells[job_id][index]
            row = _row(cell, payload, resumed=False).as_dict()
        self.queue.append_row(job, row)

    def _on_stage_done(self, key: TaskKey, session_stats: Dict[str, Any],
                       cache_stats: Dict[str, Any]) -> None:
        job = self.queue.get(key[0])
        if job is not None:
            self.queue.stage_done(job, key[1], session_stats, cache_stats)

    def _on_stage_failed(self, key: TaskKey, message: str) -> None:
        job = self.queue.get(key[0])
        if job is not None:
            self.queue.stage_failed(job, key[1], message)

    def _on_worker_death(self, key: TaskKey) -> None:
        job = self.queue.get(key[0])
        if job is not None:
            self.queue.worker_died(job, key[1])

    # -- connection handling -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed during shutdown
            stream = protocol.MessageStream(conn)
            with self._streams_lock:
                self._streams.add(stream)
            self._spawn(lambda s=stream: self._handle_connection(s),
                        "repro-serve-conn")

    def _handle_connection(self, stream: protocol.MessageStream) -> None:
        try:
            namespace = self._handshake(stream)
            if namespace is None:
                return
            while True:
                try:
                    message = stream.recv()
                except protocol.ProtocolError as error:
                    stream.send(protocol.error_response(
                        "?", "bad-request", str(error)))
                    return
                if message is None:
                    return
                if not self._handle_request(stream, message, namespace):
                    return
        except (OSError, ValueError):
            pass  # client went away mid-message
        finally:
            stream.close()
            with self._streams_lock:
                self._streams.discard(stream)

    def _handshake(self, stream: protocol.MessageStream) -> Optional[str]:
        message = stream.recv()
        if message is None:
            return None
        if message.get("op") != "hello":
            stream.send(protocol.error_response(
                str(message.get("op")), "bad-request",
                "the first message must be a hello handshake"))
            return None
        if message.get("protocol") != protocol.PROTOCOL_VERSION:
            stream.send(protocol.error_response(
                "hello", "protocol-mismatch",
                f"server speaks protocol {protocol.PROTOCOL_VERSION}, "
                f"client sent {message.get('protocol')!r}",
                server_protocol=protocol.PROTOCOL_VERSION))
            return None
        namespace = str(message.get("namespace") or "")
        stream.send(protocol.ok_response(
            "hello", protocol=protocol.PROTOCOL_VERSION,
            server_version=self.version, pid=os.getpid(),
            namespace=namespace))
        return namespace

    def _handle_request(self, stream: protocol.MessageStream,
                        message: Dict[str, Any], namespace: str) -> bool:
        """Dispatch one request; returns False to close the connection."""
        op = str(message.get("op"))
        try:
            if op == "submit":
                stream.send(self._handle_submit(message, namespace))
            elif op == "poll":
                stream.send(self._job_response(op, message))
            elif op == "jobs":
                stream.send(protocol.ok_response(
                    "jobs", jobs=[job.describe()
                                  for job in self.queue.jobs()]))
            elif op == "cancel":
                job = self.queue.cancel(str(message.get("job_id")))
                if job is None:
                    stream.send(protocol.error_response(
                        op, "unknown-job",
                        f"unknown job {message.get('job_id')!r}"))
                else:
                    stream.send(protocol.ok_response(op, job=job.describe()))
            elif op == "stream":
                self._handle_stream(stream, message)
            elif op == "status":
                stream.send(protocol.ok_response(op, server=self._status()))
            elif op == "shutdown":
                drain = bool(message.get("drain", True))
                stream.send(protocol.ok_response(
                    op, state="draining" if drain else "stopping"))
                self.request_shutdown(drain=drain)
                return False
            else:
                stream.send(protocol.error_response(
                    op, "bad-request", f"unknown op {op!r}"))
        except _BadRequest as error:
            stream.send(protocol.error_response(op, "bad-request", str(error)))
        except AdmissionError as error:
            stream.send(protocol.error_response(op, error.code, str(error),
                                                **error.details))
        except Exception as error:  # noqa: BLE001 - must answer the client
            stream.send(protocol.error_response(
                op, "internal", f"{type(error).__name__}: {error}"))
        return True

    # -- request implementations ----------------------------------------------------

    def _job_response(self, op: str, message: Dict[str, Any]
                      ) -> Dict[str, Any]:
        job = self.queue.get(str(message.get("job_id")))
        if job is None:
            return protocol.error_response(
                op, "unknown-job", f"unknown job {message.get('job_id')!r}")
        return protocol.ok_response(op, job=job.describe())

    def _handle_submit(self, message: Dict[str, Any],
                       namespace: str) -> Dict[str, Any]:
        descriptor = message.get("job")
        if not isinstance(descriptor, dict):
            raise _BadRequest("submit needs a job descriptor object")
        priority = int(message.get("priority", 0))
        resume = bool(message.get("resume", False))
        kind, cells, label = self._decode_job(descriptor)

        served: List[Dict[str, Any]] = []
        if resume and kind != "artifacts":
            remaining: List[GridCell] = []
            for cell in cells:
                payload = self._probe_store.get(
                    cell_key(cell.spec, self.version, namespace=namespace))
                if payload is not MISS:
                    served.append(_row(cell, payload, resumed=True).as_dict())
                else:
                    remaining.append(cell)
            planned = remaining
        else:
            planned = cells
        plan = plan_cells(planned)
        stages = [stage.cells for stage in plan.stages]
        job = self.queue.submit(kind=kind, namespace=namespace,
                                priority=priority, stages=stages,
                                label=label, rows=served)
        self._cells[job.id] = {cell.index: cell for cell in cells}
        self._delivered[job.id] = {row["index"] for row in served}
        return protocol.ok_response(
            "submit", job_id=job.id, state=job.state.value,
            cells=len(cells), resumed=len(served),
            stages=len(stages), queue_depth=self.queue.active_count())

    def _decode_job(self, descriptor: Dict[str, Any]
                    ) -> Tuple[str, List[GridCell], str]:
        kind = descriptor.get("kind")
        if kind == "grid":
            return self._decode_grid_job(descriptor)
        if kind == "cells":
            triples = self._unpickle(descriptor, "cells_b64")
            try:
                cells = [GridCell(index=int(index),
                                  point=tuple(point or ()), spec=spec)
                         for index, point, spec in triples]
            except (TypeError, ValueError) as error:
                raise _BadRequest(f"malformed cells payload: {error}") \
                    from None
            return "cells", cells, str(descriptor.get("label") or "cells")
        if kind == "artifacts":
            specs = self._unpickle(descriptor, "specs_b64")
            if not isinstance(specs, (list, tuple)):
                raise _BadRequest("artifacts payload must be a RunSpec list")
            cells = [GridCell(index=index, point=(), spec=spec)
                     for index, spec in enumerate(specs)]
            return "artifacts", cells, \
                str(descriptor.get("label") or "artifacts")
        raise _BadRequest(f"unknown job kind {kind!r}")

    def _decode_grid_job(self, descriptor: Dict[str, Any]
                         ) -> Tuple[str, List[GridCell], str]:
        from ..grid.catalog import get_grid
        from ..workloads import QUICK_BENCHMARKS

        name = descriptor.get("grid")
        if not name:
            raise _BadRequest("grid jobs need a 'grid' catalog name")
        try:
            definition = get_grid(str(name))
            benchmarks = descriptor.get("benchmarks") \
                or definition.default_benchmarks or QUICK_BENCHMARKS
            budget = int(descriptor.get("budget")
                         or definition.default_budget)
            grid = definition.build(
                benchmarks=list(benchmarks), budget=budget,
                input_name=str(descriptor.get("input") or "reference"))
            cells = list(grid.cells())
        except (GridError, WorkloadError, ValueError) as error:
            raise _BadRequest(str(error)) from None
        return "grid", cells, f"grid:{name}"

    @staticmethod
    def _unpickle(descriptor: Dict[str, Any], field: str) -> Any:
        blob = descriptor.get(field)
        if not isinstance(blob, str):
            raise _BadRequest(f"job descriptor needs {field}")
        try:
            return pickle.loads(base64.b64decode(blob.encode("ascii")))
        except Exception as error:  # noqa: BLE001 - any unpickling failure
            raise _BadRequest(f"undecodable {field}: {error}") from None

    def _handle_stream(self, stream: protocol.MessageStream,
                       message: Dict[str, Any]) -> None:
        job = self.queue.get(str(message.get("job_id")))
        if job is None:
            stream.send(protocol.error_response(
                "stream", "unknown-job",
                f"unknown job {message.get('job_id')!r}"))
            return
        cursor = max(0, int(message.get("from", 0)))
        while True:
            with self.queue.cond:
                while len(job.rows) <= cursor and not job.terminal:
                    if self._stop_event.is_set():
                        break
                    self.queue.cond.wait(timeout=0.5)
                batch = list(job.rows[cursor:])
                terminal = job.terminal
                stopping = self._stop_event.is_set()
            for row in batch:
                stream.send(protocol.ok_response(
                    "row", job_id=job.id, seq=cursor, row=row))
                cursor += 1
            if terminal and cursor >= len(job.rows):
                stream.send(protocol.ok_response(
                    "end", job_id=job.id, state=job.state.value,
                    rows=cursor, job=job.describe()))
                return
            if stopping:
                stream.send(protocol.error_response(
                    "stream", "draining", "daemon stopped mid-stream"))
                return

    def _status(self) -> Dict[str, Any]:
        jobs = self.queue.jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "pid": os.getpid(),
            "protocol": protocol.PROTOCOL_VERSION,
            "version": self.version,
            "socket": str(self.socket_path),
            "cache_dir": self.cache_dir,
            "uptime_seconds": 0.0 if self.started_at is None
                              else time.monotonic() - self.started_at,
            "backend": self.pool.backend,
            "workers": getattr(self.pool, "size", 0),
            "worker_pids": self.pool.worker_pids(),
            "busy_worker_pids": self.pool.busy_pids(),
            "queue": {"limit": self.queue.limit,
                      "active": self.queue.active_count(),
                      "draining": self.queue.draining},
            "jobs": {"total": len(jobs), **by_state},
        }
