"""``repro serve``: a long-lived simulation service.

The serve package turns the one-shot pipeline into a daemon: a persistent
process-pool of workers holding warm interned registries and artifact
caches, accepting :class:`~repro.api.spec.RunSpec`/
:class:`~repro.grid.spec.GridSpec` jobs over a local socket speaking
newline-delimited JSON, and streaming :class:`~repro.grid.engine.GridRow`\\ s
back to clients as cells complete.

Modules:

* :mod:`repro.serve.protocol` — message framing, the versioned handshake,
  job descriptors and structured error codes;
* :mod:`repro.serve.queue` — the bounded priority job queue (admission
  control, backpressure, cancellation, retry/quarantine bookkeeping);
* :mod:`repro.serve.pool` — the warm worker pool (process-backed, with a
  thread fallback for restricted environments);
* :mod:`repro.serve.server` — the daemon: socket front end, scheduler,
  graceful drain;
* :mod:`repro.serve.client` — the thin client library behind
  ``repro submit`` / ``repro jobs`` and ``Session(remote=...)``.

Imports are lazy so ``import repro.serve`` stays cheap for clients that
only need the protocol constants.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "default_socket_path",
]


def __getattr__(name: str) -> Any:
    if name in ("PROTOCOL_VERSION", "default_socket_path"):
        from . import protocol
        return getattr(protocol, name)
    if name in ("ServeClient", "ServeError"):
        from . import client
        return getattr(client, name)
    if name == "ServeServer":
        from .server import ServeServer
        return ServeServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
