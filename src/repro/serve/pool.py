"""The daemon's warm worker pool.

A worker is one long-lived process holding one persistent
:class:`~repro.api.session.Session`: its interned template registry, decode
weakcaches and in-memory artifact store stay warm across jobs, which is the
entire point of ``repro serve`` — the second job over the same spec pays
zero cold-start (no re-interning, no re-profiling, no store re-open).

:class:`ProcessWorkerPool` runs one OS process per worker with a private
task queue each and one shared result queue; a pump thread in the daemon
routes results to scheduler callbacks and watches worker liveness.  A
worker that dies mid-stage (killed, OOM) is detected, respawned (cold but
correct — every artifact it had produced is already in the shared disk
store), and the stage is reported to the scheduler, which retries it once
and then quarantines the job.

:class:`ThreadWorkerPool` is the fallback for environments where process
spawning is unavailable: the same interface over daemon threads sharing one
session (serialized by a lock — correctness over parallelism; warmth is
preserved because everything lives in one process).

Both pools report through four callbacks, keyed by the task's
``(job id, stage index, attempt)`` triple:

* ``on_row(key, index, payload)`` — one cell completed (streamed live);
* ``on_stage_done(key, session_stats, cache_stats)`` — stage finished,
  with the worker's accounting *delta* for the stage;
* ``on_stage_failed(key, message)`` — the stage raised;
* ``on_worker_death(key)`` — the worker vanished mid-stage
  (:class:`ProcessWorkerPool` only).
"""

from __future__ import annotations

import base64
import os
import pickle
import queue as stdlib_queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..api.spec import RunSpec

#: (job id, stage index, attempt) — unique per stage *execution*.
TaskKey = Tuple[str, int, int]

#: How often the process pool's pump thread polls results and liveness.
_PUMP_INTERVAL_SECONDS = 0.05


@dataclass(frozen=True)
class PoolTask:
    """One dispatched stage: the cells a single worker runs back to back."""

    key: TaskKey
    kind: str                           # "cells" | "artifacts"
    namespace: str
    cells: Tuple[Tuple[int, RunSpec], ...]   # (cell index, spec)


@dataclass
class PoolCallbacks:
    on_row: Callable[[TaskKey, int, Dict[str, Any]], None]
    on_stage_done: Callable[[TaskKey, Dict[str, Any], Dict[str, Any]], None]
    on_stage_failed: Callable[[TaskKey, str], None]
    on_worker_death: Callable[[TaskKey], None]


def _stats_delta(before: Dict[str, Any], after: Dict[str, Any]
                 ) -> Dict[str, Any]:
    return {key: after[key] - before.get(key, 0) for key in after}


def _compute_cell(session, task: PoolTask, index: int,
                  spec: RunSpec) -> Dict[str, Any]:
    """Run one cell in the worker's warm session and build its row payload."""
    from ..grid.engine import _cell_payload, cell_key

    artifacts = session.run(spec)
    if task.kind == "artifacts":
        blob = pickle.dumps(artifacts, protocol=pickle.HIGHEST_PROTOCOL)
        return {"index": index,
                "artifact_b64": base64.b64encode(blob).decode("ascii")}
    payload = _cell_payload(artifacts)
    # Persist the terminal row artifact (namespaced per client) so resumed
    # submissions and `repro grid --resume` runs are served without work.
    session.store.put(cell_key(spec, session.version,
                               namespace=task.namespace), payload)
    return payload


def _execute_task(session, task: PoolTask,
                  emit: Callable[[Tuple[Any, ...]], None]) -> None:
    """Run one stage, emitting ``row`` per cell then ``done`` (or ``failed``)."""
    before_session = session.stats.as_dict()
    before_cache = session.cache_stats.as_dict()
    try:
        # Batched timing pre-pass: the stage's cache-miss lanes — baseline
        # and mini-graph traces alike — bin-pack into cross-trace
        # BatchedTimingSimulator passes that prime the timing cache the
        # per-cell runs below hit.
        session.prime_timing([spec for _, spec in task.cells])
        for index, spec in task.cells:
            payload = _compute_cell(session, task, index, spec)
            emit(("row", task.key, index, payload))
    except Exception as error:
        emit(("failed", task.key, f"{type(error).__name__}: {error}"))
        return
    emit(("done", task.key,
          _stats_delta(before_session, session.stats.as_dict()),
          _stats_delta(before_cache, session.cache_stats.as_dict())))


def _process_worker_main(worker_id: int, task_queue, result_queue,
                         cache_dir: Optional[str], version: str) -> None:
    """Worker process entry: one warm session, tasks until ``None``."""
    from ..api.session import Session

    session = Session(cache_dir=cache_dir, version=version)
    while True:
        task = task_queue.get()
        if task is None:
            return
        _execute_task(session, task, result_queue.put)


class ProcessWorkerPool:
    """Persistent process workers with liveness monitoring."""

    backend = "process"

    def __init__(self, size: int, cache_dir: Optional[str], version: str,
                 callbacks: PoolCallbacks) -> None:
        import multiprocessing

        self.size = size
        self._cache_dir = cache_dir
        self._version = version
        self._callbacks = callbacks
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()
        self._result_queue = None
        self._workers: List[_ProcessWorker] = []
        self._by_key: Dict[TaskKey, "_ProcessWorker"] = {}
        self._lock = threading.Lock()
        self._running = False
        self._pump: Optional[threading.Thread] = None
        self._next_worker_id = 0

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn the workers; raises ``OSError``/``PermissionError`` when the
        environment cannot create processes (callers fall back to threads)."""
        self._result_queue = self._ctx.Queue()
        self._running = True
        try:
            for _ in range(self.size):
                self._workers.append(self._spawn())
        except (OSError, PermissionError):
            self._running = False
            self.stop()
            raise
        self._pump = threading.Thread(target=self._pump_loop,
                                      name="repro-serve-pool", daemon=True)
        self._pump.start()

    def _spawn(self) -> "_ProcessWorker":
        self._next_worker_id += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(self._next_worker_id, task_queue, self._result_queue,
                  self._cache_dir, self._version),
            name=f"repro-serve-worker-{self._next_worker_id}", daemon=True)
        process.start()
        return _ProcessWorker(process=process, task_queue=task_queue)

    def stop(self) -> None:
        self._running = False
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        if self._pump is not None and self._pump is not threading.current_thread():
            self._pump.join(timeout=2.0)
        self._workers.clear()
        self._by_key.clear()

    # -- dispatch ------------------------------------------------------------------

    def has_capacity(self) -> bool:
        with self._lock:
            return any(worker.current is None and worker.process.is_alive()
                       for worker in self._workers)

    def dispatch(self, task: PoolTask) -> bool:
        with self._lock:
            for worker in self._workers:
                if worker.current is None and worker.process.is_alive():
                    worker.current = task
                    self._by_key[task.key] = worker
                    worker.task_queue.put(task)
                    return True
            return False

    def worker_pids(self) -> List[int]:
        """Live worker PIDs (ops surface: `repro serve status`, kill tests)."""
        with self._lock:
            return [worker.process.pid for worker in self._workers
                    if worker.process.is_alive()]

    def busy_pids(self) -> List[int]:
        with self._lock:
            return [worker.process.pid for worker in self._workers
                    if worker.process.is_alive() and worker.current is not None]

    # -- result pump + liveness monitor ---------------------------------------------

    def _pump_loop(self) -> None:
        while self._running:
            self._drain_results(block=True)
            self._check_liveness()

    def _drain_results(self, *, block: bool) -> None:
        assert self._result_queue is not None
        try:
            message = self._result_queue.get(
                timeout=_PUMP_INTERVAL_SECONDS if block else 0)
        except (stdlib_queue.Empty, OSError, ValueError):
            return
        while True:
            self._handle_message(message)
            try:
                message = self._result_queue.get_nowait()
            except (stdlib_queue.Empty, OSError, ValueError):
                return

    def _handle_message(self, message: Tuple[Any, ...]) -> None:
        kind, key = message[0], message[1]
        if kind == "row":
            self._callbacks.on_row(key, message[2], message[3])
            return
        with self._lock:
            worker = self._by_key.pop(key, None)
            if worker is not None and worker.current is not None \
                    and worker.current.key == key:
                worker.current = None
        if kind == "done":
            self._callbacks.on_stage_done(key, message[2], message[3])
        else:
            self._callbacks.on_stage_failed(key, message[2])

    def _check_liveness(self) -> None:
        """Replace dead workers; report their in-flight stage as a death.

        Results were drained first, so a worker that finished its stage and
        exited is never misread as a mid-stage death.
        """
        dead_tasks: List[PoolTask] = []
        with self._lock:
            for position, worker in enumerate(self._workers):
                if worker.process.is_alive():
                    continue
                if worker.current is not None:
                    dead_tasks.append(worker.current)
                    self._by_key.pop(worker.current.key, None)
                if self._running:
                    self._workers[position] = self._spawn()
        for task in dead_tasks:
            self._callbacks.on_worker_death(task.key)


@dataclass
class _ProcessWorker:
    process: Any
    task_queue: Any
    current: Optional[PoolTask] = None


class ThreadWorkerPool:
    """Thread-backed fallback pool: one shared warm session, serialized.

    Used when the environment cannot spawn processes (or when the daemon
    runs with ``backend="thread"``, e.g. memory-only stores in tests where
    every worker must share one in-process store).  Worker-death semantics
    do not exist here — threads cannot be killed — so ``on_worker_death``
    never fires.
    """

    backend = "thread"

    def __init__(self, size: int, cache_dir: Optional[str], version: str,
                 callbacks: PoolCallbacks, *, session=None) -> None:
        from ..api.session import Session

        self.size = max(1, size)
        self._callbacks = callbacks
        self._session = session if session is not None \
            else Session(cache_dir=cache_dir, version=version)
        self._session_lock = threading.Lock()
        self._tasks: "stdlib_queue.Queue[Optional[PoolTask]]" = \
            stdlib_queue.Queue()
        self._in_flight = 0
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._running = False

    @property
    def session(self):
        """The shared warm session (the server probes its store for resume)."""
        return self._session

    def start(self) -> None:
        self._running = True
        for index in range(self.size):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"repro-serve-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._running = False
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def has_capacity(self) -> bool:
        with self._lock:
            return self._in_flight < self.size

    def dispatch(self, task: PoolTask) -> bool:
        with self._lock:
            if self._in_flight >= self.size:
                return False
            self._in_flight += 1
        self._tasks.put(task)
        return True

    def worker_pids(self) -> List[int]:
        return [os.getpid()] if self._running else []

    def busy_pids(self) -> List[int]:
        with self._lock:
            return [os.getpid()] if self._in_flight else []

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            try:
                with self._session_lock:
                    _execute_task(self._session, task, self._emit)
            finally:
                with self._lock:
                    self._in_flight -= 1

    def _emit(self, message: Tuple[Any, ...]) -> None:
        kind, key = message[0], message[1]
        if kind == "row":
            self._callbacks.on_row(key, message[2], message[3])
        elif kind == "done":
            self._callbacks.on_stage_done(key, message[2], message[3])
        else:
            self._callbacks.on_stage_failed(key, message[2])


def make_pool(backend: str, size: int, cache_dir: Optional[str],
              version: str, callbacks: PoolCallbacks):
    """Build and *start* a pool: ``process``, ``thread`` or ``auto``.

    ``auto`` prefers processes (true parallelism, kill-tolerance) and falls
    back to threads when the environment cannot spawn them.  A memory-only
    store (``cache_dir=None``) forces threads: separate processes could not
    share artifacts at all.
    """
    if backend not in ("auto", "process", "thread"):
        raise ValueError(f"unknown pool backend {backend!r}")
    if backend in ("auto", "process") and cache_dir is not None:
        pool = ProcessWorkerPool(size, cache_dir, version, callbacks)
        try:
            pool.start()
            return pool
        except (OSError, PermissionError):
            if backend == "process":
                raise
    pool = ThreadWorkerPool(size, cache_dir, version, callbacks)
    pool.start()
    return pool
