"""The daemon's job queue: bounded admission, priorities, explicit backpressure.

A :class:`JobRecord` is one submitted ``RunSpec``/``GridSpec`` job, already
planned into shared-artifact *stages* (lists of
:class:`~repro.grid.spec.GridCell`); the scheduler dispatches one stage at a
time to one warm worker, and each completed cell appends one row to the
record, waking any streaming clients.

The :class:`JobQueue` enforces **admission control**: it holds at most
``limit`` non-terminal jobs, and a submit beyond that raises
:class:`AdmissionError` — which the server surfaces to the client as a
structured ``queue-full`` rejection.  Backpressure is therefore explicit and
immediate: the queue never blocks a submitter and never silently drops a
job, so a misbehaving client cannot deadlock the daemon.  A draining queue
(SIGTERM / ``shutdown``) rejects every submit with ``draining`` while
in-flight jobs run to completion.

Scheduling order is ``(-priority, submission sequence)``: strictly higher
priority first, FIFO within a priority.  Stages of distinct jobs interleave
freely across the pool; stages of one job run in plan order.

One lock-and-condition pair (:attr:`JobQueue.cond`) covers every record —
scheduler, pool callbacks and per-connection streaming threads all
synchronize on it, which is simple and ample at daemon scale (tens of jobs,
not millions; the millions are the *cells* inside the jobs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from ..grid.spec import GridCell


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"


#: States from which a job can never leave.
TERMINAL_STATES = frozenset(
    (JobState.DONE, JobState.FAILED, JobState.CANCELLED,
     JobState.QUARANTINED))

#: Stage lifecycle inside a running job.
_PENDING, _RUNNING, _DONE = "pending", "running", "done"


class AdmissionError(Exception):
    """A submit the queue rejected; ``code`` is a protocol error code."""

    def __init__(self, code: str, message: str, **details: Any) -> None:
        super().__init__(message)
        self.code = code
        self.details = details


@dataclass
class JobRecord:
    """One admitted job: its plan, its accumulated rows, its accounting."""

    id: str
    kind: str                       # "grid" | "cells" | "artifacts"
    namespace: str
    priority: int
    seq: int                        # admission order, the FIFO tiebreak
    stages: List[List[GridCell]]
    label: str = ""
    state: JobState = JobState.QUEUED
    error: Optional[Dict[str, Any]] = None
    rows: List[Dict[str, Any]] = field(default_factory=list)
    stage_state: List[str] = field(default_factory=list)
    stage_attempts: List[int] = field(default_factory=list)
    #: Worker accounting folded in per completed stage.
    session_stats: Dict[str, Any] = field(default_factory=dict)
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.stage_state:
            self.stage_state = [_PENDING] * len(self.stages)
        if not self.stage_attempts:
            self.stage_attempts = [0] * len(self.stages)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def cell_count(self) -> int:
        return sum(len(stage) for stage in self.stages)

    @property
    def cache_hit_rate(self) -> float:
        hits = (self.cache_stats.get("memory_hits", 0)
                + self.cache_stats.get("disk_hits", 0))
        lookups = hits + self.cache_stats.get("misses", 0)
        return hits / lookups if lookups else 0.0

    def merge_stats(self, session_stats: Dict[str, Any],
                    cache_stats: Dict[str, Any]) -> None:
        for key, value in session_stats.items():
            self.session_stats[key] = self.session_stats.get(key, 0) + value
        for key, value in cache_stats.items():
            self.cache_stats[key] = self.cache_stats.get(key, 0) + value

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly job snapshot (``poll``/``jobs`` responses)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "label": self.label,
            "namespace": self.namespace,
            "priority": self.priority,
            "state": self.state.value,
            "error": self.error,
            "cells": self.cell_count,
            "rows": len(self.rows),
            "stages": len(self.stages),
            "stages_done": sum(1 for s in self.stage_state if s == _DONE),
            "attempts": max(self.stage_attempts, default=0),
            "session_stats": dict(self.session_stats),
            "cache_stats": dict(self.cache_stats),
            "cache_hit_rate": self.cache_hit_rate,
            "queued_seconds": (self.started_at or time.monotonic())
                              - self.submitted_at,
            "wall_seconds": None if self.started_at is None
                            else (self.finished_at or time.monotonic())
                                 - self.started_at,
        }


class JobQueue:
    """Bounded, priority-ordered registry of jobs (live and terminal)."""

    def __init__(self, limit: int = 32) -> None:
        if limit <= 0:
            raise ValueError(f"queue limit must be positive, got {limit}")
        self.limit = limit
        self.cond = threading.Condition()
        self._jobs: Dict[str, JobRecord] = {}
        self._seq = 0
        self._draining = False

    # -- admission -----------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Reject all future submits; in-flight jobs keep running."""
        with self.cond:
            self._draining = True
            self.cond.notify_all()

    def active_count(self) -> int:
        with self.cond:
            return sum(1 for job in self._jobs.values() if not job.terminal)

    def submit(self, kind: str, namespace: str, priority: int,
               stages: List[List[GridCell]], *, label: str = "",
               rows: Optional[List[Dict[str, Any]]] = None) -> JobRecord:
        """Admit one job or raise :class:`AdmissionError` (never blocks).

        ``rows`` pre-populates the record — resume-served rows the server
        answered from the store before planning the remainder.
        """
        with self.cond:
            if self._draining:
                raise AdmissionError(
                    "draining", "daemon is draining; submit rejected")
            active = sum(1 for job in self._jobs.values() if not job.terminal)
            if active >= self.limit:
                raise AdmissionError(
                    "queue-full",
                    f"job queue is full ({active}/{self.limit} jobs); "
                    f"retry after a job completes",
                    active=active, limit=self.limit)
            self._seq += 1
            job = JobRecord(id=f"job-{self._seq:04d}", kind=kind,
                            namespace=namespace, priority=priority,
                            seq=self._seq, stages=stages, label=label,
                            rows=list(rows) if rows else [])
            if not stages:
                # A fully resume-served (or empty) job is born terminal.
                job.state = JobState.DONE
                job.started_at = job.finished_at = time.monotonic()
            self._jobs[job.id] = job
            self.cond.notify_all()
            return job

    # -- lookup --------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self.cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self.cond:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    def all_terminal(self) -> bool:
        with self.cond:
            return all(job.terminal for job in self._jobs.values())

    # -- scheduling ----------------------------------------------------------------

    def next_stage(self) -> Optional[Tuple[JobRecord, int]]:
        """Claim the next runnable ``(job, stage index)``, if any.

        Order: priority descending, then admission order.  The claimed
        stage is marked running; the caller must finish it via
        :meth:`stage_done` / :meth:`stage_failed` / :meth:`worker_died`.
        """
        with self.cond:
            runnable = sorted(
                (job for job in self._jobs.values()
                 if job.state in (JobState.QUEUED, JobState.RUNNING)
                 and _PENDING in job.stage_state),
                key=lambda job: (-job.priority, job.seq))
            for job in runnable:
                index = job.stage_state.index(_PENDING)
                job.stage_state[index] = _RUNNING
                job.stage_attempts[index] += 1
                if job.state is JobState.QUEUED:
                    job.state = JobState.RUNNING
                    job.started_at = time.monotonic()
                return job, index
            return None

    def release_stage(self, job: JobRecord, index: int) -> None:
        """Un-claim a stage the scheduler could not dispatch after all
        (pool race): back to pending, attempt uncounted."""
        with self.cond:
            if job.terminal:
                return
            job.stage_state[index] = _PENDING
            job.stage_attempts[index] = max(0, job.stage_attempts[index] - 1)
            self.cond.notify_all()

    # -- completion callbacks (invoked by the scheduler) ----------------------------

    def append_row(self, job: JobRecord, row: Dict[str, Any]) -> None:
        with self.cond:
            if job.terminal:
                return  # late row from a cancelled job's in-flight stage
            job.rows.append(row)
            self.cond.notify_all()

    def stage_done(self, job: JobRecord, index: int,
                   session_stats: Dict[str, Any],
                   cache_stats: Dict[str, Any]) -> None:
        with self.cond:
            job.merge_stats(session_stats, cache_stats)
            if job.terminal:
                return  # stage of a cancelled job ran to completion
            job.stage_state[index] = _DONE
            if all(state == _DONE for state in job.stage_state):
                job.state = JobState.DONE
                job.finished_at = time.monotonic()
            self.cond.notify_all()

    def stage_failed(self, job: JobRecord, index: int, message: str) -> None:
        """A stage raised in the worker: the whole job fails (no retry —
        a deterministic pipeline raises deterministically)."""
        with self.cond:
            if job.terminal:
                return
            job.stage_state[index] = _DONE
            job.state = JobState.FAILED
            job.error = {"code": "failed", "message": message, "stage": index}
            job.finished_at = time.monotonic()
            self.cond.notify_all()

    def worker_died(self, job: JobRecord, index: int) -> None:
        """The worker running this stage died (killed, OOM).

        First death: the stage is re-queued for one retry on a fresh
        worker.  Second death: the job is quarantined — a cell that kills
        two workers is poison and must not take the daemon down with
        endless respawns.
        """
        with self.cond:
            if job.terminal:
                return
            if job.stage_attempts[index] <= 1:
                job.stage_state[index] = _PENDING
            else:
                job.stage_state[index] = _DONE
                job.state = JobState.QUARANTINED
                job.error = {"code": "quarantined",
                             "message": f"stage {index} killed its worker "
                                        f"twice; job quarantined",
                             "stage": index,
                             "attempts": job.stage_attempts[index]}
                job.finished_at = time.monotonic()
            self.cond.notify_all()

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a job; returns the record, or ``None`` if unknown.

        Cancelling a terminal job is a no-op.  A running job's in-flight
        stage is left to finish in its worker (its late rows are dropped);
        pending stages never start.
        """
        with self.cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if not job.terminal:
                job.state = JobState.CANCELLED
                job.error = {"code": "cancelled", "message": "cancelled"}
                job.finished_at = time.monotonic()
                self.cond.notify_all()
            return job
