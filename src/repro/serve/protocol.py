"""Wire protocol of the ``repro serve`` daemon.

The daemon and its clients speak **newline-delimited JSON** over a local
stream socket (a Unix domain socket by default): every message is one JSON
object on one line, UTF-8 encoded.  A connection opens with a versioned
``hello`` handshake; after that the client sends request objects
(``op`` field) and the server answers each with exactly one response object
— except ``stream``, which dedicates the connection to a sequence of
``row`` messages terminated by one ``end`` message.

Requests
--------

========  =====================================================================
``op``    payload
========  =====================================================================
hello     ``protocol`` (int), optional ``namespace``/``client`` strings
submit    ``job`` (a job descriptor, below), optional ``priority`` (int,
          higher first) and ``resume`` (bool: serve cells whose row artifact
          is already stored without re-executing them)
poll      ``job_id``
jobs      (no payload) — list every job the daemon knows about
cancel    ``job_id``
stream    ``job_id``, optional ``from`` (row cursor, default 0)
status    (no payload) — daemon liveness/occupancy snapshot
shutdown  optional ``drain`` (bool, default true)
========  =====================================================================

Responses carry ``ok`` (bool) and echo ``op``; failures carry a structured
``error`` object ``{"code": ..., "message": ...}`` with one of the
:data:`ERROR_CODES`.  Backpressure is explicit: a submit against a full
queue is *rejected* with ``queue-full`` (never blocked or dropped), and a
draining daemon rejects with ``draining``.

Job descriptors
---------------

* ``{"kind": "grid", "grid": NAME, ...}`` — a named grid from the catalog
  (``benchmarks``/``budget``/``input`` override its defaults).  Expanded
  and planned server-side.
* ``{"kind": "cells", "cells_b64": ...}`` — pre-expanded grid cells
  (base64-pickled ``(index, point, RunSpec)`` triples) from
  ``repro.serve.client``; the server groups them into shared-artifact
  stages with the grid planner.
* ``{"kind": "artifacts", "specs_b64": ...}`` — base64-pickled
  ``RunSpec`` list; each result row carries the base64-pickled
  :class:`~repro.api.session.RunArtifacts` (``Session(remote=...)``'s
  transport).

Pickled payloads are accepted only because the socket is local and
filesystem-permission guarded (the socket file is created ``0o700``-dirred
by the daemon); this protocol is not designed for untrusted networks.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path
from typing import Any, BinaryIO, Dict, Optional

#: Bump on any incompatible message-shape change; the handshake rejects
#: mismatches with ``protocol-mismatch`` instead of mis-parsing mid-stream.
PROTOCOL_VERSION = 1

#: Structured rejection/failure codes carried in ``error.code``.
ERROR_CODES = (
    "protocol-mismatch",   # handshake version skew
    "bad-request",         # malformed message or unknown op
    "unknown-job",         # poll/cancel/stream of an id the daemon never saw
    "queue-full",          # admission control: bounded queue at capacity
    "draining",            # daemon is draining; no new jobs accepted
    "cancelled",           # job was cancelled before/while running
    "quarantined",         # job failed twice on worker death; not retried
    "failed",              # job raised in a worker
    "internal",            # unexpected server-side error
)

#: Largest accepted message line (a pickled artifact row can be large, a
#: runaway line should still be bounded).
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


class ProtocolError(ValueError):
    """Raised on malformed or oversized wire messages."""


def default_socket_path() -> Path:
    """Daemon socket: ``$REPRO_SERVE_SOCKET`` or ``<cache-dir>/serve.sock``."""
    env = os.environ.get("REPRO_SERVE_SOCKET")
    if env:
        return Path(env)
    from ..api.store import default_cache_dir
    return default_cache_dir() / "serve.sock"


def encode_message(message: Dict[str, Any]) -> bytes:
    """One NDJSON frame: compact JSON, newline-terminated."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got "
                            f"{type(message).__name__}")
    return message


class MessageStream:
    """Blocking NDJSON framing over one connected socket."""

    def __init__(self, sock) -> None:
        self._sock = sock
        self._reader: BinaryIO = sock.makefile("rb")
        self._writer: BinaryIO = sock.makefile("wb")

    def send(self, message: Dict[str, Any]) -> None:
        self._writer.write(encode_message(message))
        self._writer.flush()

    def recv(self) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` on a cleanly closed connection."""
        line = self._reader.readline(MAX_MESSAGE_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
        return decode_message(line)

    def close(self) -> None:
        # Shut the socket down before touching the buffered wrappers: a
        # thread blocked in ``readline`` holds the buffer lock, and
        # ``BufferedReader.close`` from another thread would deadlock on it.
        # Shutdown forces that read to return EOF and release the lock.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for closer in (self._reader.close, self._writer.close,
                       self._sock.close):
            try:
                closer()
            except OSError:
                pass


def error_response(op: str, code: str, message: str,
                   **details: Any) -> Dict[str, Any]:
    """A structured failure response (``code`` must be a known code)."""
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if details:
        error["details"] = details
    return {"ok": False, "op": op, "error": error}


def ok_response(op: str, **payload: Any) -> Dict[str, Any]:
    return {"ok": True, "op": op, **payload}
