"""Client library for the ``repro serve`` daemon.

:class:`ServeClient` wraps one NDJSON connection (handshake included) and
exposes the protocol ops as methods.  Job payloads that carry
:class:`~repro.api.spec.RunSpec` objects are pickled and base64-wrapped on
this side — the daemon listens on a local, trusted Unix socket owned by the
same user, which is the only reason pickle is acceptable as transport.

Grid submissions are **expanded on the client**: a
:class:`~repro.grid.spec.GridSpec` holds arbitrary build closures that must
never cross the wire, so :meth:`submit_grid` ships the expanded ``(index,
point, spec)`` cells and the daemon re-plans them into shared-artifact
stages with :func:`~repro.grid.planner.plan_cells`.  Catalog grids can
alternatively be submitted **by name** (:meth:`submit_named_grid`) and
expanded daemon-side.

Structured protocol errors surface as :class:`ServeError` with the error
``code`` (``queue-full``, ``draining``, ...) preserved for programmatic
handling — admission-control rejections are expected states, not crashes.
"""

from __future__ import annotations

import base64
import os
import pickle
import socket
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..api.spec import RunSpec
from ..grid.spec import GridCell, GridSpec
from . import protocol


class ServeError(Exception):
    """A structured daemon-side rejection or failure.

    ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES` (plus
    ``"connection"`` for transport-level failures raised client-side).
    """

    def __init__(self, code: str, message: str,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.details = details or {}


def _pickle_b64(value: Any) -> str:
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(blob).decode("ascii")


class ServeClient:
    """One connection to a serve daemon; usable as a context manager."""

    def __init__(self, socket_path: Optional[os.PathLike] = None, *,
                 namespace: str = "",
                 timeout: Optional[float] = 60.0,
                 retry_connect: float = 0.0) -> None:
        self.socket_path = str(socket_path if socket_path is not None
                               else protocol.default_socket_path())
        self.namespace = namespace
        self.server_info: Dict[str, Any] = {}
        self._stream = self._connect(timeout, retry_connect)
        self._hello()

    def _connect(self, timeout: Optional[float],
                 retry_connect: float) -> protocol.MessageStream:
        deadline = time.monotonic() + retry_connect
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(self.socket_path)
                return protocol.MessageStream(sock)
            except OSError as error:
                sock.close()
                if time.monotonic() >= deadline:
                    raise ServeError(
                        "connection",
                        f"cannot reach daemon at {self.socket_path}: {error}"
                    ) from None
                time.sleep(0.05)

    def _hello(self) -> None:
        self.server_info = self._request({
            "op": "hello", "protocol": protocol.PROTOCOL_VERSION,
            "namespace": self.namespace})

    # -- transport -----------------------------------------------------------------

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._stream.send(message)
        return self._read_response()

    def _read_response(self) -> Dict[str, Any]:
        try:
            response = self._stream.recv()
        except (OSError, protocol.ProtocolError) as error:
            raise ServeError("connection", str(error)) from None
        if response is None:
            raise ServeError("connection", "daemon closed the connection")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServeError(str(error.get("code", "internal")),
                             str(error.get("message", "daemon error")),
                             error.get("details"))
        return response

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submissions ---------------------------------------------------------------

    def submit_grid(self, grid: GridSpec, *, priority: int = 0,
                    resume: bool = True) -> Dict[str, Any]:
        """Submit a locally-built grid: expand here, plan daemon-side."""
        return self.submit_cells(grid.cells(), label=f"grid:{grid.name}",
                                 priority=priority, resume=resume)

    def submit_cells(self, cells: Iterable[GridCell], *, label: str = "cells",
                     priority: int = 0, resume: bool = True) -> Dict[str, Any]:
        triples = [(cell.index, cell.point, cell.spec) for cell in cells]
        return self._request({
            "op": "submit", "priority": priority, "resume": resume,
            "job": {"kind": "cells", "label": label,
                    "cells_b64": _pickle_b64(triples)}})

    def submit_named_grid(self, name: str, *,
                          benchmarks: Optional[Sequence[str]] = None,
                          budget: Optional[int] = None,
                          input_name: Optional[str] = None,
                          priority: int = 0,
                          resume: bool = True) -> Dict[str, Any]:
        """Submit a catalog grid by name; the daemon expands it."""
        job: Dict[str, Any] = {"kind": "grid", "grid": name}
        if benchmarks is not None:
            job["benchmarks"] = list(benchmarks)
        if budget is not None:
            job["budget"] = budget
        if input_name is not None:
            job["input"] = input_name
        return self._request({"op": "submit", "priority": priority,
                              "resume": resume, "job": job})

    def submit_specs(self, specs: Sequence[RunSpec], *, label: str = "artifacts",
                     priority: int = 0) -> Dict[str, Any]:
        """Submit bare specs whose full :class:`RunArtifacts` come back."""
        return self._request({
            "op": "submit", "priority": priority, "resume": False,
            "job": {"kind": "artifacts", "label": label,
                    "specs_b64": _pickle_b64(list(specs))}})

    # -- job management ------------------------------------------------------------

    def poll(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "poll", "job_id": job_id})["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request({"op": "jobs"})["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "cancel", "job_id": job_id})["job"]

    def status(self) -> Dict[str, Any]:
        return self._request({"op": "status"})["server"]

    def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        return self._request({"op": "shutdown", "drain": drain})

    # -- streaming -----------------------------------------------------------------

    def stream(self, job_id: str, *, start: int = 0
               ) -> Iterator[Dict[str, Any]]:
        """Yield the job's row dicts live, from row ``start``, until terminal.

        The connection is dedicated to the stream while iterating.  Raises
        :class:`ServeError` if the job failed, was cancelled, quarantined,
        or the daemon stopped mid-stream.
        """
        self._stream.send({"op": "stream", "job_id": job_id, "from": start})
        while True:
            response = self._read_response()
            op = response.get("op")
            if op == "row":
                yield response["row"]
            elif op == "end":
                state = response.get("state")
                if state != "done":
                    job = response.get("job") or {}
                    error = job.get("error") or {}
                    raise ServeError(
                        str(error.get("code", state)),
                        str(error.get("message", f"job ended {state}")))
                return
            else:
                raise ServeError("internal",
                                 f"unexpected stream message {op!r}")

    def run_to_completion(self, submit_response: Dict[str, Any]
                          ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Stream a submitted job to the end; returns (rows, final snapshot)."""
        job_id = submit_response["job_id"]
        rows = list(self.stream(job_id))
        return rows, self.poll(job_id)
