"""Machine configuration for the cycle-level timing model.

The defaults reproduce the paper's baseline processor (Section 6): a 6-wide,
dynamically scheduled, 15-stage superscalar with a 128-entry reorder buffer,
50-entry issue queue, 64-entry load/store queue, 164 physical registers and
the cache/predictor parameters listed in the evaluation setup.

Named constructors produce the exact configurations used by the figures:
the mini-graph configurations of Figure 6 (ALU pipelines, sliding-window
scheduler, pair-wise collapsing) and the reduced-resource configurations of
Figure 8 (smaller register files, 4-wide pipelines, 2-cycle scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        return max(1, sets)


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine.

    Width/capacity attributes follow the paper's baseline; the mini-graph
    attributes select which of the paper's mechanisms are present.
    """

    name: str = "baseline-6wide"

    # Pipeline widths (instructions or handles per cycle).
    fetch_width: int = 6
    rename_width: int = 6
    issue_width: int = 6
    retire_width: int = 6

    # Pipeline depth: the paper models 15 stages; the front end (fetch through
    # dispatch) accounts for most of the depth and sets the misprediction
    # redirect penalty.
    front_end_depth: int = 7
    register_read_latency: int = 2
    scheduler_latency: int = 1

    # Window capacities.
    rob_size: int = 128
    issue_queue_size: int = 50
    lsq_size: int = 64
    physical_registers: int = 164
    architected_registers: int = 64

    # Issue mix per cycle (maximum operations of each class).
    int_alu_units: int = 4
    fp_units: int = 2
    load_ports: int = 2
    store_ports: int = 1

    # Mini-graph hardware.
    alu_pipelines: int = 0            # how many plain ALUs are replaced by ALU pipelines
    alu_pipeline_depth: int = 4
    collapsing_alu_pipelines: bool = False
    sliding_window_scheduler: bool = False
    max_memory_handles_per_cycle: int = 1
    minigraph_replay_penalty: int = 3  # extra cycles to restart a replayed graph

    # Branch prediction.
    predictor_entries: int = 4096      # per component of the hybrid predictor (~12Kb total)
    btb_entries: int = 2048
    btb_associativity: int = 4
    # Extra redirect bubble charged at branch resolution; the front-end refill
    # itself is modelled by front_end_depth, so this stays small.
    misprediction_redirect_penalty: int = 2

    # Memory hierarchy.
    icache: CacheConfig = CacheConfig(32 * 1024, 2, 32, 1)
    dcache: CacheConfig = CacheConfig(32 * 1024, 2, 32, 2)
    l2cache: CacheConfig = CacheConfig(2 * 1024 * 1024, 4, 128, 10)
    memory_latency: int = 100

    # Memory dependence prediction / ordering.
    store_set_entries: int = 2048
    ordering_violation_penalty: int = 8

    # -- derived -----------------------------------------------------------------

    @property
    def plain_alu_units(self) -> int:
        """Integer ALUs that are not ALU pipelines."""
        return max(0, self.int_alu_units - self.alu_pipelines)

    @property
    def in_flight_registers(self) -> int:
        """Physical registers available for in-flight (renamed) values."""
        return self.physical_registers - self.architected_registers

    # -- named variants -----------------------------------------------------------

    def with_name(self, name: str) -> "MachineConfig":
        return replace(self, name=name)

    def with_minigraph_alu_pipelines(self, count: int = 2, *,
                                     collapsing: bool = False) -> "MachineConfig":
        """Replace ``count`` plain ALUs with ALU pipelines (Figure 6 "int")."""
        suffix = "-collapse" if collapsing else ""
        return replace(self, alu_pipelines=count,
                       collapsing_alu_pipelines=collapsing,
                       name=f"{self.name}+ap{count}{suffix}")

    def with_sliding_window(self) -> "MachineConfig":
        """Add the sliding-window scheduler (Figure 6 "int-mem")."""
        return replace(self, sliding_window_scheduler=True,
                       name=f"{self.name}+slide")

    def with_physical_registers(self, total: int) -> "MachineConfig":
        """Shrink/grow the physical register file (Figure 8 top)."""
        return replace(self, physical_registers=total,
                       name=f"{self.name}-prf{total}")

    def with_issue_queue(self, entries: int) -> "MachineConfig":
        """Change the scheduler capacity (Section 6.3)."""
        return replace(self, issue_queue_size=entries,
                       name=f"{self.name}-iq{entries}")

    def with_width(self, width: int, *, execute_width: Optional[int] = None,
                   load_ports: Optional[int] = None) -> "MachineConfig":
        """Reduce pipeline bandwidth (Figure 8 bottom).

        ``execute_width`` optionally keeps a wider execute stage (the paper's
        "4-wide + 6-exec" configuration); ``load_ports`` adjusts load issue
        bandwidth alongside it.
        """
        execute = execute_width if execute_width is not None else width
        int_units = max(1, execute - 2)
        loads = load_ports if load_ports is not None else max(1, execute // 3)
        return replace(
            self,
            fetch_width=width, rename_width=width, retire_width=width,
            issue_width=execute,
            int_alu_units=int_units,
            load_ports=loads,
            name=f"{self.name}-{width}wide{execute}exec",
        )

    def with_scheduler_latency(self, latency: int) -> "MachineConfig":
        """Pipeline the scheduler (Figure 8 bottom, "2-cycle schedule")."""
        return replace(self, scheduler_latency=latency,
                       name=f"{self.name}-sched{latency}")


def baseline_config() -> MachineConfig:
    """The paper's baseline 6-wide processor."""
    return MachineConfig()


def integer_minigraph_config(*, collapsing: bool = False) -> MachineConfig:
    """Figure 6 "int": two ALUs replaced with 4-stage ALU pipelines."""
    return baseline_config().with_minigraph_alu_pipelines(2, collapsing=collapsing)


def integer_memory_minigraph_config(*, collapsing: bool = False) -> MachineConfig:
    """Figure 6 "int-mem": ALU pipelines plus a sliding-window scheduler."""
    return integer_minigraph_config(collapsing=collapsing).with_sliding_window()
