"""Machine configuration for the cycle-level timing model.

The defaults reproduce the paper's baseline processor (Section 6): a 6-wide,
dynamically scheduled, 15-stage superscalar with a 128-entry reorder buffer,
50-entry issue queue, 64-entry load/store queue, 164 physical registers and
the cache/predictor parameters listed in the evaluation setup.

Named constructors produce the exact configurations used by the figures:
the mini-graph configurations of Figure 6 (ALU pipelines, sliding-window
scheduler, pair-wise collapsing) and the reduced-resource configurations of
Figure 8 (smaller register files, 4-wide pipelines, 2-cycle scheduler).
The full catalog of named figure machines lives in
:mod:`repro.uarch.catalog`.

Both config dataclasses validate their geometry on construction
(:class:`ConfigError` with an actionable message, instead of silent
downstream misbehaviour), and :meth:`MachineConfig.resolve` reduces a config
to its canonical :class:`MachineSpec` — a *name-free* machine shape with the
derived fields normalized in, whose stable key is what the artifact cache
folds into timing keys.  Two differently-named configs with the same
geometry therefore share one timing artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple


class ConfigError(ValueError):
    """Raised for malformed machine or cache geometries."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    Construction validates the geometry: every dimension must be positive,
    the capacity must divide evenly into ``associativity * line_bytes`` ways,
    and the resulting set count must be a power of two (the index function
    is a bit slice; a 384-set cache cannot be built).
    """

    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        for name in ("size_bytes", "associativity", "line_bytes", "hit_latency"):
            value = getattr(self, name)
            _require(isinstance(value, int) and value > 0,
                     f"CacheConfig.{name} must be a positive integer, "
                     f"got {value!r}")
        way_bytes = self.associativity * self.line_bytes
        _require(self.size_bytes % way_bytes == 0,
                 f"CacheConfig: size_bytes ({self.size_bytes}) must be a "
                 f"multiple of associativity * line_bytes ({way_bytes})")
        sets = self.size_bytes // way_bytes
        _require(sets & (sets - 1) == 0,
                 f"CacheConfig: geometry {self.size_bytes}B / "
                 f"{self.associativity}-way / {self.line_bytes}B lines gives "
                 f"{sets} sets, which is not a power of two; adjust "
                 f"size_bytes or associativity")

    @property
    def num_sets(self) -> int:
        # __post_init__ guarantees an exact, power-of-two quotient >= 1.
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True, eq=False)
class MachineSpec:
    """Canonical, name-free machine shape produced by :meth:`MachineConfig.resolve`.

    Equality and hashing are by :attr:`key` — the validated geometry with
    derived fields (plain ALUs, in-flight registers, cache set counts)
    normalized in and the display ``name`` stripped — so two configs that
    describe the same machine are the same spec, and timing artifacts are
    cached per machine *shape* rather than per figure label.
    """

    config: "MachineConfig" = field(repr=False)
    key: Tuple[Any, ...] = ()

    @property
    def name(self) -> str:
        """Display name of the config this spec was resolved from."""
        return self.config.name

    @property
    def machine_hash(self) -> str:
        """Stable hex digest of the canonical key (process-independent)."""
        cached = self.__dict__.get("_machine_hash")
        if cached is None:
            digest = hashlib.sha256(repr(self.key).encode("utf-8"))
            cached = digest.hexdigest()[:24]
            object.__setattr__(self, "_machine_hash", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MachineSpec):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine.

    Width/capacity attributes follow the paper's baseline; the mini-graph
    attributes select which of the paper's mechanisms are present.
    """

    name: str = "baseline-6wide"

    # Pipeline widths (instructions or handles per cycle).
    fetch_width: int = 6
    rename_width: int = 6
    issue_width: int = 6
    retire_width: int = 6

    # Pipeline depth: the paper models 15 stages; the front end (fetch through
    # dispatch) accounts for most of the depth and sets the misprediction
    # redirect penalty.
    front_end_depth: int = 7
    register_read_latency: int = 2
    scheduler_latency: int = 1

    # Window capacities.
    rob_size: int = 128
    issue_queue_size: int = 50
    lsq_size: int = 64
    physical_registers: int = 164
    architected_registers: int = 64

    # Issue mix per cycle (maximum operations of each class).
    int_alu_units: int = 4
    fp_units: int = 2
    load_ports: int = 2
    store_ports: int = 1

    # Mini-graph hardware.
    alu_pipelines: int = 0            # how many plain ALUs are replaced by ALU pipelines
    alu_pipeline_depth: int = 4
    collapsing_alu_pipelines: bool = False
    sliding_window_scheduler: bool = False
    max_memory_handles_per_cycle: int = 1
    minigraph_replay_penalty: int = 3  # extra cycles to restart a replayed graph

    # Branch prediction.
    predictor_entries: int = 4096      # per component of the hybrid predictor (~12Kb total)
    btb_entries: int = 2048
    btb_associativity: int = 4
    # Extra redirect bubble charged at branch resolution; the front-end refill
    # itself is modelled by front_end_depth, so this stays small.
    misprediction_redirect_penalty: int = 2

    # Memory hierarchy.
    icache: CacheConfig = CacheConfig(32 * 1024, 2, 32, 1)
    dcache: CacheConfig = CacheConfig(32 * 1024, 2, 32, 2)
    l2cache: CacheConfig = CacheConfig(2 * 1024 * 1024, 4, 128, 10)
    memory_latency: int = 100

    # Memory dependence prediction / ordering.
    store_set_entries: int = 2048
    ordering_violation_penalty: int = 8

    # -- validation ----------------------------------------------------------------

    def __post_init__(self) -> None:
        positive = (
            "fetch_width", "rename_width", "issue_width", "retire_width",
            "front_end_depth", "scheduler_latency",
            "rob_size", "issue_queue_size", "lsq_size",
            "physical_registers", "architected_registers",
            "int_alu_units", "load_ports", "store_ports",
            "alu_pipeline_depth", "max_memory_handles_per_cycle",
            "predictor_entries", "btb_entries", "btb_associativity",
            "memory_latency", "store_set_entries",
        )
        for name in positive:
            value = getattr(self, name)
            _require(isinstance(value, int) and value > 0,
                     f"MachineConfig.{name} must be a positive integer, "
                     f"got {value!r}")
        non_negative = (
            "register_read_latency", "fp_units", "alu_pipelines",
            "minigraph_replay_penalty", "misprediction_redirect_penalty",
            "ordering_violation_penalty",
        )
        for name in non_negative:
            value = getattr(self, name)
            _require(isinstance(value, int) and value >= 0,
                     f"MachineConfig.{name} must be a non-negative integer, "
                     f"got {value!r}")
        _require(self.physical_registers > self.architected_registers,
                 f"MachineConfig: physical_registers "
                 f"({self.physical_registers}) must exceed "
                 f"architected_registers ({self.architected_registers}); "
                 f"a machine with no in-flight registers cannot rename")
        _require(self.alu_pipelines <= self.int_alu_units,
                 f"MachineConfig: alu_pipelines ({self.alu_pipelines}) "
                 f"cannot exceed int_alu_units ({self.int_alu_units}); "
                 f"ALU pipelines replace plain integer ALUs")
        # Joint front-end geometry constraints.  The predictor and BTB
        # constructors enforce these shapes themselves, but with plain
        # ValueErrors deep inside TimingSimulator construction; validating
        # here turns an off-shape geometry into the same ConfigError every
        # other bad dimension produces.  (Found by the geometry fuzz oracle:
        # see tests/test_fuzz.py quarantined-geometry regressions.)
        _require(self.predictor_entries & (self.predictor_entries - 1) == 0,
                 f"MachineConfig: predictor_entries "
                 f"({self.predictor_entries}) must be a power of two; the "
                 f"hybrid predictor indexes its tables with a bit slice")
        _require(self.btb_entries % self.btb_associativity == 0,
                 f"MachineConfig: btb_entries ({self.btb_entries}) must be "
                 f"a multiple of btb_associativity "
                 f"({self.btb_associativity}); the BTB is a set-associative "
                 f"array of whole sets")
        unit_mix = (self.int_alu_units + self.fp_units
                    + self.load_ports + self.store_ports)
        _require(self.issue_width <= unit_mix,
                 f"MachineConfig: issue_width ({self.issue_width}) exceeds "
                 f"the total execution unit mix ({unit_mix} = "
                 f"{self.int_alu_units} int + {self.fp_units} fp + "
                 f"{self.load_ports} load + {self.store_ports} store); "
                 f"the machine could never sustain its stated issue width")
        for name in ("icache", "dcache", "l2cache"):
            value = getattr(self, name)
            _require(isinstance(value, CacheConfig),
                     f"MachineConfig.{name} must be a CacheConfig, "
                     f"got {type(value).__name__}")

    # -- derived -----------------------------------------------------------------

    @property
    def plain_alu_units(self) -> int:
        """Integer ALUs that are not ALU pipelines."""
        return max(0, self.int_alu_units - self.alu_pipelines)

    @property
    def in_flight_registers(self) -> int:
        """Physical registers available for in-flight (renamed) values."""
        return self.physical_registers - self.architected_registers

    # -- resolution ---------------------------------------------------------------

    def resolve(self) -> MachineSpec:
        """The canonical :class:`MachineSpec` of this (validated) config.

        The spec's key is built from every dataclass field *except* ``name``
        (driven by :func:`dataclasses.fields`, so a new knob automatically
        changes the key) with the derived quantities — plain ALUs, in-flight
        registers, per-cache set counts — normalized in.  The result is
        memoized on the instance (configs are frozen, so it can never
        change).
        """
        cached = self.__dict__.get("_resolved")
        if cached is None:
            geometry = tuple(
                (f.name, _canonical_field(getattr(self, f.name)))
                for f in dataclasses.fields(self) if f.name != "name")
            derived = (("plain_alu_units", self.plain_alu_units),
                       ("in_flight_registers", self.in_flight_registers))
            cached = MachineSpec(config=self,
                                 key=("MachineSpec",) + geometry + derived)
            object.__setattr__(self, "_resolved", cached)
        return cached

    # -- named variants -----------------------------------------------------------

    def with_name(self, name: str) -> "MachineConfig":
        return replace(self, name=name)

    def with_minigraph_alu_pipelines(self, count: int = 2, *,
                                     collapsing: bool = False) -> "MachineConfig":
        """Replace ``count`` plain ALUs with ALU pipelines (Figure 6 "int")."""
        suffix = "-collapse" if collapsing else ""
        return replace(self, alu_pipelines=count,
                       collapsing_alu_pipelines=collapsing,
                       name=f"{self.name}+ap{count}{suffix}")

    def with_sliding_window(self) -> "MachineConfig":
        """Add the sliding-window scheduler (Figure 6 "int-mem")."""
        return replace(self, sliding_window_scheduler=True,
                       name=f"{self.name}+slide")

    def with_physical_registers(self, total: int) -> "MachineConfig":
        """Shrink/grow the physical register file (Figure 8 top)."""
        return replace(self, physical_registers=total,
                       name=f"{self.name}-prf{total}")

    def with_issue_queue(self, entries: int) -> "MachineConfig":
        """Change the scheduler capacity (Section 6.3)."""
        return replace(self, issue_queue_size=entries,
                       name=f"{self.name}-iq{entries}")

    def with_width(self, width: int, *, execute_width: Optional[int] = None,
                   load_ports: Optional[int] = None) -> "MachineConfig":
        """Reduce pipeline bandwidth (Figure 8 bottom).

        ``execute_width`` optionally keeps a wider execute stage (the paper's
        "4-wide + 6-exec" configuration); ``load_ports`` adjusts load issue
        bandwidth alongside it.
        """
        execute = execute_width if execute_width is not None else width
        int_units = max(1, execute - 2)
        loads = load_ports if load_ports is not None else max(1, execute // 3)
        return replace(
            self,
            fetch_width=width, rename_width=width, retire_width=width,
            issue_width=execute,
            int_alu_units=int_units,
            load_ports=loads,
            name=f"{self.name}-{width}wide{execute}exec",
        )

    def with_scheduler_latency(self, latency: int) -> "MachineConfig":
        """Pipeline the scheduler (Figure 8 bottom, "2-cycle schedule")."""
        return replace(self, scheduler_latency=latency,
                       name=f"{self.name}-sched{latency}")


def _canonical_field(value: Any) -> Any:
    """One machine-spec key element: caches carry their resolved set count."""
    if isinstance(value, CacheConfig):
        return ("CacheConfig", value.size_bytes, value.associativity,
                value.line_bytes, value.hit_latency, value.num_sets)
    return value


def baseline_config() -> MachineConfig:
    """The paper's baseline 6-wide processor."""
    return MachineConfig()


def integer_minigraph_config(*, collapsing: bool = False) -> MachineConfig:
    """Figure 6 "int": two ALUs replaced with 4-stage ALU pipelines."""
    return baseline_config().with_minigraph_alu_pipelines(2, collapsing=collapsing)


def integer_memory_minigraph_config(*, collapsing: bool = False) -> MachineConfig:
    """Figure 6 "int-mem": ALU pipelines plus a sliding-window scheduler."""
    return integer_minigraph_config(collapsing=collapsing).with_sliding_window()
