"""Interned decode metadata for the timing pipeline.

The timing model replays one committed trace entry per fetched slot, and a
static instruction typically recurs thousands of times in a trace (loop
bodies).  Re-deriving operand lists, opcode class, latency and MGT headers
from the :class:`~repro.isa.instruction.Instruction` on every dynamic
instance dominated the old fetch/issue path.

This module interns all of that per *static* instruction (plus its MGT row
for handles) into a :class:`DecodedOp`: a flat ``__slots__`` record the
pipeline reads with plain attribute loads.  Decode tables are cached per
``(program, mgt)`` pair in process-wide weak maps, so every simulation of the
same program — across machine configurations, across
:class:`~repro.api.session.Session` stages, and across the specs of one
:meth:`~repro.api.session.Session.sweep` — shares one decode pass.  The same
cache also interns the *trace feed*: the per-trace list of ``DecodedOp``
references the fetch stage consumes in one batched lookup instead of
re-dispatching ``program.at(pc)`` one entry at a time.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..minigraph.mgt import MgtEntry, MiniGraphTable
from ..program.program import Program
from ..program.weakcache import PerProgramCache
from ..sim.trace import Trace

#: Issue-path discriminator codes (``DecodedOp.kind``).
KIND_INT = 0        #: plain ALU / MUL / control / nop / halt — integer issue port
KIND_FP = 1         #: floating-point issue port
KIND_LOAD = 2       #: load port + data-cache latency
KIND_STORE = 3      #: store port, single-cycle address/data computation
KIND_HANDLE = 4     #: mini-graph handle — MGHT-driven scheduling
KIND_UNISSUABLE = 5 #: no issue path — reported when (if ever) it reaches select


class DecodeError(RuntimeError):
    """Raised when a trace entry cannot be decoded (e.g. handle without MGT)."""


class DecodedOp:
    """Everything the pipeline needs to know about one static instruction.

    One instance exists per (static instruction, MGT row) and is shared by
    every dynamic instance; all fields are immutable after construction.
    """

    __slots__ = (
        "index", "static", "mgt_entry", "op", "kind", "latency",
        "renamed_sources", "dest", "needs_destination",
        "is_conditional_branch",
        # Handle-only scheduling metadata (None / 0 for singletons).
        "execution_cycles", "header_lat", "fu0", "fubmp",
        "integer_only", "has_load", "has_interior_load", "has_store",
        "out_is_last",
    )

    def __init__(self, index: int, static: Instruction,
                 mgt_entry: Optional[MgtEntry]) -> None:
        self.index = index
        self.static = static
        self.mgt_entry = mgt_entry
        self.op = static.op
        spec = static.spec

        sources = static.source_registers()
        self.renamed_sources: Tuple[Optional[int], Optional[int]] = (
            sources[0] if len(sources) > 0 else None,
            sources[1] if len(sources) > 1 else None,
        )
        self.dest = static.destination_register()

        if mgt_entry is not None:
            template = mgt_entry.template
            header = mgt_entry.header
            self.kind = KIND_HANDLE
            self.latency = header.total_latency
            self.needs_destination = (template.out_index is not None
                                      and self.dest is not None)
            self.is_conditional_branch = template.has_branch
            self.execution_cycles = len(mgt_entry.banks)
            self.header_lat = header.lat
            self.fu0 = header.fu0
            self.fubmp = header.fubmp
            self.integer_only = template.is_integer_only
            self.has_load = template.has_load
            self.has_interior_load = template.has_interior_load
            self.has_store = template.has_store
            self.out_is_last = template.out_index == template.size - 1
            return

        self.needs_destination = self.dest is not None
        self.is_conditional_branch = static.is_branch
        self.execution_cycles = 0
        self.header_lat = 0
        self.fu0 = None
        self.fubmp = ()
        self.integer_only = False
        self.has_load = False
        self.has_interior_load = False
        self.has_store = False
        self.out_is_last = False

        if spec.is_load:
            self.kind = KIND_LOAD
            self.latency = spec.latency
        elif spec.is_store:
            self.kind = KIND_STORE
            self.latency = 1
        elif spec.is_fp:
            self.kind = KIND_FP
            self.latency = spec.latency
        elif spec.op_class in (OpClass.ALU, OpClass.MUL) or spec.is_control \
                or spec.op_class is OpClass.NOP or spec.op_class is OpClass.HALT:
            self.kind = KIND_INT
            self.latency = max(1, spec.latency)
        else:
            # No issue path; reported lazily so the error surfaces at the same
            # point (select) it did before decode interning.
            self.kind = KIND_UNISSUABLE
            self.latency = 1


class DecodeTable:
    """Lazily-populated ``index -> DecodedOp`` map for one (program, MGT)."""

    def __init__(self, program: Program, mgt: Optional[MiniGraphTable]) -> None:
        self._instructions = program.instructions
        self._mgt = mgt
        self._ops: List[Optional[DecodedOp]] = [None] * len(program.instructions)
        # Trace feeds interned per trace (weakly, so traces can be collected).
        self._feeds: "weakref.WeakKeyDictionary[Trace, List[DecodedOp]]" = \
            weakref.WeakKeyDictionary()

    def op_at(self, index: int) -> DecodedOp:
        """The interned decode record for the instruction at ``index``."""
        decoded = self._ops[index]
        if decoded is None:
            static = self._instructions[index]
            mgt_entry: Optional[MgtEntry] = None
            if static.spec.op_class is OpClass.MG:
                if self._mgt is None:
                    raise DecodeError(
                        "trace contains handles but no MGT was supplied")
                mgt_entry = self._mgt.lookup(static.mgid)
            decoded = DecodedOp(index, static, mgt_entry)
            self._ops[index] = decoded
        return decoded

    def trace_feed(self, trace: Trace) -> List[DecodedOp]:
        """Decode records for every trace entry, in trace order.

        The feed is computed once per trace and shared by every simulator
        replaying it (e.g. one trace timed on many machine configurations).
        It is built straight from the trace's packed index column: one decode
        per *unique* static index, then a C-level gather over the column —
        no per-entry materialization.
        """
        feed = self._feeds.get(trace)
        if feed is None:
            index_column = trace.columns().index
            ops = self._ops
            op_at = self.op_at
            for index in set(index_column):
                if ops[index] is None:
                    op_at(index)
            feed = list(map(ops.__getitem__, index_column))
            self._feeds[trace] = feed
        return feed


class _NoMgt:
    """Identity placeholder: the decode-table key for 'no MGT'."""

_NO_MGT = _NoMgt()

#: ``program -> (mgt -> DecodeTable)``.  The outer level is the shared weak
#: per-program cache (decode state dies with its program); the inner
#: WeakKeyDictionary is keyed by MGT, so holding a table never pins an MGT.
#: DecodeTable holds the program's instruction list, not the program itself,
#: so the cache cannot keep programs alive.
_TABLES: PerProgramCache["weakref.WeakKeyDictionary"] = \
    PerProgramCache(lambda program: weakref.WeakKeyDictionary())


def decode_table(program: Program, mgt: Optional[MiniGraphTable]) -> DecodeTable:
    """The process-wide interned decode table for ``(program, mgt)``."""
    per_program = _TABLES.get(program)
    key = mgt if mgt is not None else _NO_MGT
    table = per_program.get(key)
    if table is None:
        table = DecodeTable(program, mgt)
        per_program[key] = table
    return table
