"""Dynamic instruction records used by the timing pipeline.

A :class:`DynInst` is one in-flight entity: either a singleton instruction or
a mini-graph handle.  It pairs the dynamic facts of the trace row it was
fetched from (control outcome, next PC, effective address) with the interned
:class:`~repro.uarch.decode.DecodedOp` for its static instruction, and
carries the renamed register identifiers, the per-stage timestamps and the
wakeup bookkeeping the event-driven scheduler fills in as the entity flows
through the machine.

The class is ``__slots__``-backed: tens of thousands of instances are created
per simulation and the per-instance dict plus property dispatch of the old
dataclass were a measurable share of simulation time.  Static facts
(operands, opcode class, latency, MGT header) live on the shared decode
record; the trace row's dynamic facts are copied in as plain scalars (``pc``,
``size``, ``next_pc``, the :mod:`repro.sim.trace` flags byte and the
normalized effective address) straight from the columnar trace, so fetching
never materializes a :class:`~repro.sim.trace.TraceEntry`; only genuinely
per-instance state lives here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.instruction import Instruction
from ..minigraph.mgt import MgtEntry
from ..sim.trace import (
    TF_CONTROL,
    TF_HAS_MGID,
    TF_LOAD,
    TF_MEMORY,
    TF_STORE,
    TF_TAKEN,
    TF_TAKEN_KNOWN,
    TraceEntry,
    entry_from_row,
    pack_flags,
)
from .decode import DecodedOp

#: Sentinel cycle value meaning "has not happened yet".
NEVER = -1

#: Sentinel ready-cycle meaning "producer has not broadcast yet".
FOREVER = 1 << 62


class DynInst:
    """One in-flight instruction or handle.

    Attributes:
        sequence: global dynamic sequence number (age ordering).
        decoded: interned static metadata (shared across dynamic instances).
        pc / size / next_pc / flags / effective_address: the dynamic facts of
            the trace row this entity was fetched from (``flags`` is the
            :mod:`repro.sim.trace` ``TF_*`` bitfield).
        source_physical: physical registers of the (up to two) sources.
        destination_physical: allocated physical destination, or None.
        previous_physical: physical register previously mapped to the
            destination architectural register (freed at retire).
        pending_sources: source operands whose producer has not broadcast
            yet (scheduler wakeup bookkeeping).
        wake_cycle: earliest cycle the scheduler may consider this entity
            for selection once ``pending_sources`` reaches zero.
    """

    __slots__ = (
        "sequence", "decoded",
        "pc", "size", "next_pc", "flags", "effective_address",
        "source_physical", "destination_physical", "previous_physical",
        "predicted_taken", "predicted_target", "mispredicted",
        "fetch_cycle", "rename_cycle", "issue_cycle", "complete_cycle",
        "retire_cycle", "output_ready_cycle",
        "replayed", "caused_ordering_violation",
        "pending_sources", "wake_cycle",
    )

    def __init__(self, sequence: int, decoded: DecodedOp, pc: int, size: int,
                 next_pc: int, flags: int,
                 effective_address: Optional[int]) -> None:
        self.sequence = sequence
        self.decoded = decoded
        self.pc = pc
        self.size = size
        self.next_pc = next_pc
        self.flags = flags
        self.effective_address = effective_address
        self.source_physical: Tuple[Optional[int], Optional[int]] = (None, None)
        self.destination_physical: Optional[int] = None
        self.previous_physical: Optional[int] = None
        self.predicted_taken: Optional[bool] = None
        self.predicted_target: Optional[int] = None
        self.mispredicted = False
        self.fetch_cycle = NEVER
        self.rename_cycle = NEVER
        self.issue_cycle = NEVER
        self.complete_cycle = NEVER
        self.retire_cycle = NEVER
        self.output_ready_cycle = NEVER
        self.replayed = False
        self.caused_ordering_violation = False
        self.pending_sources = 0
        self.wake_cycle = NEVER

    @classmethod
    def from_entry(cls, sequence: int, entry: TraceEntry,
                   decoded: DecodedOp) -> "DynInst":
        """Build an instance from a materialized :class:`TraceEntry`."""
        return cls(sequence, decoded, entry.pc, entry.size, entry.next_pc,
                   pack_flags(entry.is_control, entry.taken, entry.is_load,
                              entry.is_store,
                              entry.effective_address is not None,
                              entry.mgid is not None),
                   entry.effective_address)

    @classmethod
    def from_static(cls, sequence: int, trace: TraceEntry, static: Instruction,
                    mgt_entry: Optional[MgtEntry] = None,
                    index: Optional[int] = None) -> "DynInst":
        """Build a standalone instance (tests, debugging) without a table.

        ``index`` defaults to the trace entry's own layout index so that the
        ``trace`` property round-trips the entry it was built from.
        """
        if index is None:
            index = trace.index
        return cls.from_entry(sequence, trace, DecodedOp(index, static, mgt_entry))

    # -- static views (delegate to the interned decode record) ---------------------

    @property
    def static(self) -> Instruction:
        return self.decoded.static

    @property
    def mgt_entry(self) -> Optional[MgtEntry]:
        return self.decoded.mgt_entry

    @property
    def is_handle(self) -> bool:
        return self.decoded.mgt_entry is not None

    @property
    def is_conditional_branch(self) -> bool:
        return self.decoded.is_conditional_branch

    @property
    def needs_destination(self) -> bool:
        """Does this entity allocate a physical destination register?

        Following the paper's baseline, stores and branches are not allocated
        registers; a handle allocates one register only if its mini-graph has
        an interface output.
        """
        return self.decoded.needs_destination

    def source_registers(self) -> Tuple[int, ...]:
        """Architectural source registers (handles expose the interface only)."""
        return self.decoded.static.source_registers()

    # -- dynamic views (from the packed trace-row scalars) -------------------------

    @property
    def trace(self) -> TraceEntry:
        """The trace entry this entity was fetched from (materialized lazily)."""
        effective_address = self.effective_address
        mgid = self.decoded.static.mgid if self.flags & TF_HAS_MGID else -1
        return entry_from_row(
            self.pc, self.decoded.index, self.size, self.next_pc, self.flags,
            effective_address if effective_address is not None else 0, mgid)

    @property
    def is_load(self) -> bool:
        return bool(self.flags & TF_LOAD)

    @property
    def is_store(self) -> bool:
        return bool(self.flags & TF_STORE)

    @property
    def is_memory(self) -> bool:
        return bool(self.flags & TF_MEMORY)

    @property
    def is_control(self) -> bool:
        return bool(self.flags & TF_CONTROL)

    @property
    def original_instructions(self) -> int:
        """Original program instructions represented (handles expand)."""
        return self.size

    @property
    def actual_taken(self) -> Optional[bool]:
        if self.flags & TF_TAKEN_KNOWN:
            return bool(self.flags & TF_TAKEN)
        return None

    @property
    def actual_target(self) -> int:
        return self.next_pc

    # -- status --------------------------------------------------------------------

    @property
    def issued(self) -> bool:
        return self.issue_cycle != NEVER

    @property
    def completed(self) -> bool:
        return self.complete_cycle != NEVER

    def describe(self) -> str:
        """Readable one-liner for debugging and trace dumps."""
        kind = f"mg[{self.static.mgid}]" if self.is_handle else self.static.op
        return (f"#{self.sequence} pc={self.pc:#x} {kind} "
                f"fetch={self.fetch_cycle} issue={self.issue_cycle} "
                f"complete={self.complete_cycle} retire={self.retire_cycle}")
