"""Dynamic instruction records used by the timing pipeline.

A :class:`DynInst` is one in-flight entity: either a singleton instruction or
a mini-graph handle.  It carries the static instruction, the trace entry that
produced it (control outcome, effective address), renamed register
identifiers and the per-stage timestamps the pipeline fills in as the entity
flows through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction
from ..minigraph.mgt import MgtEntry
from ..sim.trace import TraceEntry

#: Sentinel cycle value meaning "has not happened yet".
NEVER = -1


@dataclass
class DynInst:
    """One in-flight instruction or handle.

    Attributes:
        sequence: global dynamic sequence number (age ordering).
        trace: the trace entry this entity was fetched from.
        static: the static instruction (a handle for mini-graphs).
        mgt_entry: MGT row for handles, None for singletons.
        source_physical: physical registers of the (up to two) sources.
        destination_physical: allocated physical destination, or None.
        previous_physical: physical register previously mapped to the
            destination architectural register (freed at retire).
    """

    sequence: int
    trace: TraceEntry
    static: Instruction
    mgt_entry: Optional[MgtEntry] = None

    # Renaming.
    source_physical: Tuple[Optional[int], Optional[int]] = (None, None)
    destination_physical: Optional[int] = None
    previous_physical: Optional[int] = None

    # Branch prediction state.
    predicted_taken: Optional[bool] = None
    predicted_target: Optional[int] = None
    mispredicted: bool = False

    # Per-stage timestamps (cycles).
    fetch_cycle: int = NEVER
    rename_cycle: int = NEVER
    issue_cycle: int = NEVER
    complete_cycle: int = NEVER
    retire_cycle: int = NEVER

    # Execution bookkeeping.
    output_ready_cycle: int = NEVER
    memory_latency: int = 0
    replayed: bool = False
    caused_ordering_violation: bool = False

    # -- classification -----------------------------------------------------------

    @property
    def is_handle(self) -> bool:
        return self.mgt_entry is not None

    @property
    def is_load(self) -> bool:
        return self.trace.is_load

    @property
    def is_store(self) -> bool:
        return self.trace.is_store

    @property
    def is_memory(self) -> bool:
        return self.trace.is_load or self.trace.is_store

    @property
    def is_control(self) -> bool:
        return self.trace.is_control

    @property
    def is_conditional_branch(self) -> bool:
        if self.is_handle:
            return self.mgt_entry.template.has_branch
        return self.static.is_branch

    @property
    def original_instructions(self) -> int:
        """Original program instructions represented (handles expand)."""
        return self.trace.size

    @property
    def pc(self) -> int:
        return self.trace.pc

    @property
    def effective_address(self) -> Optional[int]:
        return self.trace.effective_address

    @property
    def actual_taken(self) -> Optional[bool]:
        return self.trace.taken

    @property
    def actual_target(self) -> int:
        return self.trace.next_pc

    @property
    def needs_destination(self) -> bool:
        """Does this entity allocate a physical destination register?

        Following the paper's baseline, stores and branches are not allocated
        registers; a handle allocates one register only if its mini-graph has
        an interface output.
        """
        if self.is_handle:
            return self.mgt_entry.template.out_index is not None \
                and self.static.destination_register() is not None
        return self.static.destination_register() is not None

    @property
    def issued(self) -> bool:
        return self.issue_cycle != NEVER

    @property
    def completed(self) -> bool:
        return self.complete_cycle != NEVER

    def source_registers(self) -> Tuple[int, ...]:
        """Architectural source registers (handles expose the interface only)."""
        return self.static.source_registers()

    def describe(self) -> str:
        """Readable one-liner for debugging and trace dumps."""
        kind = f"mg[{self.static.mgid}]" if self.is_handle else self.static.op
        return (f"#{self.sequence} pc={self.pc:#x} {kind} "
                f"fetch={self.fetch_cycle} issue={self.issue_cycle} "
                f"complete={self.complete_cycle} retire={self.retire_cycle}")
