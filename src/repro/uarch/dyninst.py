"""Dynamic instruction records used by the timing pipeline.

A :class:`DynInst` is one in-flight entity: either a singleton instruction or
a mini-graph handle.  It pairs the trace entry that produced it (control
outcome, effective address) with the interned
:class:`~repro.uarch.decode.DecodedOp` for its static instruction, and
carries the renamed register identifiers, the per-stage timestamps and the
wakeup bookkeeping the event-driven scheduler fills in as the entity flows
through the machine.

The class is ``__slots__``-backed: tens of thousands of instances are created
per simulation and the per-instance dict plus property dispatch of the old
dataclass were a measurable share of simulation time.  Static facts
(operands, opcode class, latency, MGT header) live on the shared decode
record; only genuinely per-instance state lives here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.instruction import Instruction
from ..minigraph.mgt import MgtEntry
from ..sim.trace import TraceEntry
from .decode import DecodedOp

#: Sentinel cycle value meaning "has not happened yet".
NEVER = -1

#: Sentinel ready-cycle meaning "producer has not broadcast yet".
FOREVER = 1 << 62


class DynInst:
    """One in-flight instruction or handle.

    Attributes:
        sequence: global dynamic sequence number (age ordering).
        trace: the trace entry this entity was fetched from.
        decoded: interned static metadata (shared across dynamic instances).
        source_physical: physical registers of the (up to two) sources.
        destination_physical: allocated physical destination, or None.
        previous_physical: physical register previously mapped to the
            destination architectural register (freed at retire).
        pending_sources: source operands whose producer has not broadcast
            yet (scheduler wakeup bookkeeping).
        wake_cycle: earliest cycle the scheduler may consider this entity
            for selection once ``pending_sources`` reaches zero.
    """

    __slots__ = (
        "sequence", "trace", "decoded",
        "source_physical", "destination_physical", "previous_physical",
        "predicted_taken", "predicted_target", "mispredicted",
        "fetch_cycle", "rename_cycle", "issue_cycle", "complete_cycle",
        "retire_cycle", "output_ready_cycle",
        "replayed", "caused_ordering_violation",
        "pending_sources", "wake_cycle",
    )

    def __init__(self, sequence: int, trace: TraceEntry, decoded: DecodedOp) -> None:
        self.sequence = sequence
        self.trace = trace
        self.decoded = decoded
        self.source_physical: Tuple[Optional[int], Optional[int]] = (None, None)
        self.destination_physical: Optional[int] = None
        self.previous_physical: Optional[int] = None
        self.predicted_taken: Optional[bool] = None
        self.predicted_target: Optional[int] = None
        self.mispredicted = False
        self.fetch_cycle = NEVER
        self.rename_cycle = NEVER
        self.issue_cycle = NEVER
        self.complete_cycle = NEVER
        self.retire_cycle = NEVER
        self.output_ready_cycle = NEVER
        self.replayed = False
        self.caused_ordering_violation = False
        self.pending_sources = 0
        self.wake_cycle = NEVER

    @classmethod
    def from_static(cls, sequence: int, trace: TraceEntry, static: Instruction,
                    mgt_entry: Optional[MgtEntry] = None,
                    index: int = 0) -> "DynInst":
        """Build a standalone instance (tests, debugging) without a table."""
        return cls(sequence, trace, DecodedOp(index, static, mgt_entry))

    # -- static views (delegate to the interned decode record) ---------------------

    @property
    def static(self) -> Instruction:
        return self.decoded.static

    @property
    def mgt_entry(self) -> Optional[MgtEntry]:
        return self.decoded.mgt_entry

    @property
    def is_handle(self) -> bool:
        return self.decoded.mgt_entry is not None

    @property
    def is_conditional_branch(self) -> bool:
        return self.decoded.is_conditional_branch

    @property
    def needs_destination(self) -> bool:
        """Does this entity allocate a physical destination register?

        Following the paper's baseline, stores and branches are not allocated
        registers; a handle allocates one register only if its mini-graph has
        an interface output.
        """
        return self.decoded.needs_destination

    def source_registers(self) -> Tuple[int, ...]:
        """Architectural source registers (handles expose the interface only)."""
        return self.decoded.static.source_registers()

    # -- dynamic views (from the trace entry) --------------------------------------

    @property
    def is_load(self) -> bool:
        return self.trace.is_load

    @property
    def is_store(self) -> bool:
        return self.trace.is_store

    @property
    def is_memory(self) -> bool:
        return self.trace.is_load or self.trace.is_store

    @property
    def is_control(self) -> bool:
        return self.trace.is_control

    @property
    def original_instructions(self) -> int:
        """Original program instructions represented (handles expand)."""
        return self.trace.size

    @property
    def pc(self) -> int:
        return self.trace.pc

    @property
    def effective_address(self) -> Optional[int]:
        return self.trace.effective_address

    @property
    def actual_taken(self) -> Optional[bool]:
        return self.trace.taken

    @property
    def actual_target(self) -> int:
        return self.trace.next_pc

    # -- status --------------------------------------------------------------------

    @property
    def issued(self) -> bool:
        return self.issue_cycle != NEVER

    @property
    def completed(self) -> bool:
        return self.complete_cycle != NEVER

    def describe(self) -> str:
        """Readable one-liner for debugging and trace dumps."""
        kind = f"mg[{self.static.mgid}]" if self.is_handle else self.static.op
        return (f"#{self.sequence} pc={self.pc:#x} {kind} "
                f"fetch={self.fetch_cycle} issue={self.issue_cycle} "
                f"complete={self.complete_cycle} retire={self.retire_cycle}")
