"""Branch direction prediction and target buffering.

The paper's baseline models a 12Kb hybrid direction predictor and a 2K-entry,
4-way set-associative branch target buffer.  The hybrid predictor here is the
classic bimodal + gshare pair with a chooser table, all of 2-bit saturating
counters.  When a mini-graph terminates in a branch, the *handle* PC stands
in for the branch PC for prediction and update (Section 4.1), which simply
means callers pass the handle PC — nothing in the predictor changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _saturating_update(counter: int, taken: bool, maximum: int = 3) -> int:
    if taken:
        return min(maximum, counter + 1)
    return max(0, counter - 1)


@dataclass
class PredictorStats:
    """Aggregate direction/target prediction statistics."""

    direction_lookups: int = 0
    direction_mispredictions: int = 0
    btb_lookups: int = 0
    btb_misses: int = 0

    @property
    def direction_accuracy(self) -> float:
        if self.direction_lookups == 0:
            return 1.0
        return 1.0 - self.direction_mispredictions / self.direction_lookups


class HybridBranchPredictor:
    """Bimodal/gshare hybrid with a chooser, indexed by (handle) PC."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("predictor entries must be a positive power of two")
        self._entries = entries
        self._mask = entries - 1
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._bimodal = [2] * entries
        self._gshare = [2] * entries
        self._chooser = [2] * entries
        self._history = 0
        self.stats = PredictorStats()

    def _indices(self, pc: int) -> Tuple[int, int]:
        base = (pc >> 2) & self._mask
        hashed = ((pc >> 2) ^ self._history) & self._mask
        return base, hashed

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""
        self.stats.direction_lookups += 1
        base, hashed = self._indices(pc)
        use_gshare = self._chooser[base] >= 2
        counter = self._gshare[hashed] if use_gshare else self._bimodal[base]
        return counter >= 2

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train the predictor with the resolved outcome."""
        base, hashed = self._indices(pc)
        bimodal_correct = (self._bimodal[base] >= 2) == taken
        gshare_correct = (self._gshare[hashed] >= 2) == taken
        if bimodal_correct != gshare_correct:
            self._chooser[base] = _saturating_update(self._chooser[base], gshare_correct)
        self._bimodal[base] = _saturating_update(self._bimodal[base], taken)
        self._gshare[hashed] = _saturating_update(self._gshare[hashed], taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        if predicted != taken:
            self.stats.direction_mispredictions += 1


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, entries: int = 2048, associativity: int = 4) -> None:
        if entries % associativity:
            raise ValueError("BTB entries must be a multiple of the associativity")
        self._sets = entries // associativity
        self._associativity = associativity
        # Each set is an ordered list of (tag, target); front is most recent.
        self._table: List[List[Tuple[int, int]]] = [[] for _ in range(self._sets)]
        self.stats = PredictorStats()

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self._sets

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target of the control transfer at ``pc``."""
        self.stats.btb_lookups += 1
        entries = self._table[self._set_index(pc)]
        for position, (tag, target) in enumerate(entries):
            if tag == pc:
                entries.insert(0, entries.pop(position))
                return target
        self.stats.btb_misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for the control transfer at ``pc``."""
        entries = self._table[self._set_index(pc)]
        for position, (tag, _) in enumerate(entries):
            if tag == pc:
                entries.pop(position)
                break
        entries.insert(0, (pc, target))
        while len(entries) > self._associativity:
            entries.pop()


@dataclass
class BranchPrediction:
    """Result of a front-end prediction for one control transfer."""

    taken: bool
    target: Optional[int]


class FrontEndPredictor:
    """Bundles the direction predictor and BTB the way the fetch stage uses them."""

    def __init__(self, *, predictor_entries: int = 4096, btb_entries: int = 2048,
                 btb_associativity: int = 4) -> None:
        self.direction = HybridBranchPredictor(predictor_entries)
        self.btb = BranchTargetBuffer(btb_entries, btb_associativity)

    def predict(self, pc: int, *, is_conditional: bool) -> BranchPrediction:
        """Predict one control transfer at fetch time."""
        target = self.btb.lookup(pc)
        if is_conditional:
            taken = self.direction.predict(pc)
        else:
            taken = True
        if taken and target is None:
            # Without a BTB target the front end cannot redirect; treat as a
            # (mis)prediction of not-taken, which costs the full redirect.
            taken = False
        return BranchPrediction(taken=taken, target=target)

    def update(self, pc: int, *, is_conditional: bool, taken: bool,
               target: Optional[int], predicted_taken: bool) -> None:
        """Train both structures with the resolved outcome."""
        if is_conditional:
            self.direction.update(pc, taken, predicted_taken)
        if taken and target is not None:
            self.btb.update(pc, target)

    def mispredictions(self) -> int:
        return self.direction.stats.direction_mispredictions
