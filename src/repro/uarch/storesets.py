"""Store-sets memory dependence predictor.

The baseline schedules loads with a store-sets predictor (Chrysos & Emer,
ISCA-25): loads and stores that have conflicted in the past are placed in the
same *store set* and the load is made to wait for the store.  The
implementation here keeps the two classic tables:

* the store-set identifier table (SSIT), indexed by instruction PC, and
* the last-fetched-store table (LFST), indexed by store-set id, recording the
  most recent in-flight store of that set.

When loads and stores are embedded in mini-graphs, the *handle* PC identifies
them (Section 4.3), so callers simply pass handle PCs — the predictor does
not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class StoreSetStats:
    """Predictor activity counters."""

    load_lookups: int = 0
    predicted_dependences: int = 0
    trainings: int = 0


class StoreSetPredictor:
    """PC-indexed store-set predictor (SSIT + LFST)."""

    def __init__(self, entries: int = 2048) -> None:
        if entries <= 0:
            raise ValueError("store-set table needs at least one entry")
        self._entries = entries
        self._ssit: Dict[int, int] = {}
        self._lfst: Dict[int, int] = {}
        self._next_set_id = 0
        self.stats = StoreSetStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self._entries

    # -- prediction -------------------------------------------------------------

    def predicted_store_for(self, load_pc: int) -> Optional[int]:
        """Sequence number of the in-flight store this load should wait for."""
        self.stats.load_lookups += 1
        set_id = self._ssit.get(self._index(load_pc))
        if set_id is None:
            return None
        store_seq = self._lfst.get(set_id)
        if store_seq is not None:
            self.stats.predicted_dependences += 1
        return store_seq

    def store_dispatched(self, store_pc: int, sequence: int) -> None:
        """Record an in-flight store so later loads of its set can wait for it."""
        set_id = self._ssit.get(self._index(store_pc))
        if set_id is not None:
            self._lfst[set_id] = sequence

    def store_completed(self, store_pc: int, sequence: int) -> None:
        """Clear the LFST entry once the store has executed."""
        set_id = self._ssit.get(self._index(store_pc))
        if set_id is not None and self._lfst.get(set_id) == sequence:
            del self._lfst[set_id]

    # -- training ---------------------------------------------------------------

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the load and store into one store set after an ordering violation."""
        self.stats.trainings += 1
        load_index = self._index(load_pc)
        store_index = self._index(store_pc)
        load_set = self._ssit.get(load_index)
        store_set = self._ssit.get(store_index)
        if load_set is None and store_set is None:
            set_id = self._allocate_set()
            self._ssit[load_index] = set_id
            self._ssit[store_index] = set_id
        elif load_set is None:
            self._ssit[load_index] = store_set
        elif store_set is None:
            self._ssit[store_index] = load_set
        else:
            # Merge by adopting the smaller id (the classic heuristic).
            winner = min(load_set, store_set)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner

    def _allocate_set(self) -> int:
        set_id = self._next_set_id
        self._next_set_id += 1
        return set_id
