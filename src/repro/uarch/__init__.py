"""Cycle-level out-of-order superscalar timing model with mini-graph support."""

from .config import (
    CacheConfig,
    ConfigError,
    MachineConfig,
    MachineSpec,
    baseline_config,
    integer_memory_minigraph_config,
    integer_minigraph_config,
)
from .catalog import (
    MACHINE_CATALOG,
    CatalogEntry,
    machine_catalog,
    machine_config,
    machine_names,
    register_machine,
)
from .bpred import (
    BranchPrediction,
    BranchTargetBuffer,
    FrontEndPredictor,
    HybridBranchPredictor,
    PredictorStats,
)
from .caches import Cache, CacheStats, MemoryHierarchy
from .storesets import StoreSetPredictor, StoreSetStats
from .funits import FunctionalUnitPool, FunctionalUnitStats
from .decode import DecodedOp, DecodeTable, decode_table
from .dyninst import NEVER, DynInst
from .stats import PipelineStats
from .pipeline import FetchLayout, TimingError, TimingSimulator, simulate_program

__all__ = [
    "CacheConfig",
    "ConfigError",
    "MachineConfig",
    "MachineSpec",
    "MACHINE_CATALOG",
    "CatalogEntry",
    "machine_catalog",
    "machine_config",
    "machine_names",
    "register_machine",
    "baseline_config",
    "integer_memory_minigraph_config",
    "integer_minigraph_config",
    "BranchPrediction",
    "BranchTargetBuffer",
    "FrontEndPredictor",
    "HybridBranchPredictor",
    "PredictorStats",
    "Cache",
    "CacheStats",
    "MemoryHierarchy",
    "StoreSetPredictor",
    "StoreSetStats",
    "FunctionalUnitPool",
    "FunctionalUnitStats",
    "DecodedOp",
    "DecodeTable",
    "decode_table",
    "NEVER",
    "DynInst",
    "PipelineStats",
    "FetchLayout",
    "TimingError",
    "TimingSimulator",
    "simulate_program",
]
