"""The machine catalog: every named figure configuration as a registry entry.

The paper's evaluation (Section 6) names a small machine space: the 6-wide
baseline, the four Figure 6 mini-graph machines (ALU pipelines, pair-wise
collapsing, sliding-window scheduler) and the Figure 8 reduced-resource
variants (shrunken register files, narrower pipelines, a pipelined
scheduler).  This module registers each of them under a stable name so that
grid axes, the CLI and tests can refer to machines declaratively instead of
re-deriving ad-hoc constructor chains.

Entries are factories (configs are cheap frozen values); look one up with
:func:`machine_config` and enumerate the space with :func:`machine_names`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .config import ConfigError, MachineConfig, baseline_config, \
    integer_memory_minigraph_config, integer_minigraph_config

MachineFactory = Callable[[], MachineConfig]


@dataclass(frozen=True)
class CatalogEntry:
    """One named machine in the catalog."""

    name: str
    factory: MachineFactory
    description: str
    figure: str  # which part of the evaluation introduces it

    def build(self) -> MachineConfig:
        return self.factory()


#: Registration order is meaningful: it is the order catalogs and docs list.
MACHINE_CATALOG: Dict[str, CatalogEntry] = {}


def register_machine(name: str, factory: MachineFactory, *,
                     description: str, figure: str) -> CatalogEntry:
    """Register a named machine; duplicate names are an error."""
    if name in MACHINE_CATALOG:
        raise ConfigError(f"machine {name!r} is already registered")
    entry = CatalogEntry(name=name, factory=factory,
                         description=description, figure=figure)
    MACHINE_CATALOG[name] = entry
    return entry


def machine_names() -> List[str]:
    """All registered machine names, in registration order."""
    return list(MACHINE_CATALOG)


def machine_config(name: str) -> MachineConfig:
    """Build the named machine configuration."""
    try:
        entry = MACHINE_CATALOG[name]
    except KeyError:
        known = ", ".join(MACHINE_CATALOG)
        raise ConfigError(f"unknown machine {name!r}; catalog has: {known}") \
            from None
    return entry.build()


def machine_catalog() -> List[Tuple[str, str, str]]:
    """(name, figure, description) rows for listings."""
    return [(entry.name, entry.figure, entry.description)
            for entry in MACHINE_CATALOG.values()]


# -- the paper's machine space ------------------------------------------------------

register_machine(
    "baseline", baseline_config, figure="§6 baseline",
    description="6-wide, 128 ROB, 50 IQ, 64 LSQ, 164 registers")
register_machine(
    "int", lambda: integer_minigraph_config(), figure="Figure 6",
    description="two plain ALUs replaced with 4-stage ALU pipelines")
register_machine(
    "int+collapse", lambda: integer_minigraph_config(collapsing=True),
    figure="Figure 6",
    description="ALU pipelines with pair-wise collapsing")
register_machine(
    "int-mem", lambda: integer_memory_minigraph_config(), figure="Figure 6",
    description="ALU pipelines plus the sliding-window scheduler")
register_machine(
    "int-mem+collapse",
    lambda: integer_memory_minigraph_config(collapsing=True),
    figure="Figure 6",
    description="sliding-window scheduler with collapsing ALU pipelines")

for _registers in (164, 144, 124, 104):
    register_machine(
        f"prf{_registers}",
        (lambda registers: lambda:
         baseline_config().with_physical_registers(registers))(_registers),
        figure="Figure 8 (top)",
        description=f"baseline with a {_registers}-entry physical register "
                    f"file ({_registers - 64} in-flight)")

register_machine(
    "6-wide", baseline_config, figure="Figure 8 (bottom)",
    description="the full-bandwidth baseline (reference point)")
register_machine(
    "4-wide",
    lambda: baseline_config().with_width(4, execute_width=4, load_ports=1),
    figure="Figure 8 (bottom)",
    description="4-wide fetch/rename/retire, 4 execution slots, 1 load port")
register_machine(
    "4-wide+6-exec",
    lambda: baseline_config().with_width(4, execute_width=6, load_ports=2),
    figure="Figure 8 (bottom)",
    description="4-wide front end keeping six execution units, 2 load ports")
register_machine(
    "2-cycle-sched",
    lambda: baseline_config().with_scheduler_latency(2),
    figure="Figure 8 (bottom)",
    description="baseline with a pipelined 2-cycle wake-up/select scheduler")
