"""Cycle-level out-of-order superscalar timing model with mini-graph support.

The model is *functional-first, timing-directed*: the functional simulator
produces the committed-path trace (control outcomes and effective addresses)
and this pipeline re-plays it through a detailed out-of-order machine with a
real branch predictor, BTB, cache hierarchy, store-sets predictor, register
renaming, ROB/issue-queue/LSQ capacities and per-class issue ports.

Handles (mini-graphs) are processed as singleton instructions at every stage
except execution, where the MGHT header drives scheduling (FU0/FUBMP/LAT) and
the MGST bank count drives execution occupancy — exactly the division of
labour described in Section 4 of the paper.

Two modelling simplifications (documented in DESIGN.md) keep the Python model
tractable while preserving the relative effects the paper measures:

* wrong-path instructions are not fetched: a mispredicted control transfer
  stalls fetch until it resolves and then pays the front-end redirect
  penalty, which charges the same latency as a squash-and-refetch without
  modelling wrong-path contention;
* memory-ordering violations are charged as a fetch-redirect penalty at the
  offending load (plus store-set training) rather than by rolling back
  renamed state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..minigraph.mgt import FU_LOAD, FU_STORE, MgtEntry, MiniGraphTable
from ..program.program import Program
from ..sim.trace import Trace, TraceEntry
from .bpred import FrontEndPredictor
from .caches import MemoryHierarchy
from .config import MachineConfig
from .dyninst import NEVER, DynInst
from .funits import FunctionalUnitPool
from .stats import PipelineStats
from .storesets import StoreSetPredictor


class TimingError(RuntimeError):
    """Raised for inconsistent timing-model configurations."""


@dataclass
class _LsqEntry:
    """One load/store queue entry."""

    sequence: int
    is_store: bool
    pc: int
    address: Optional[int]
    issued: bool = False
    completed: bool = False


@dataclass
class FetchLayout:
    """Maps instruction PCs to the addresses the instruction cache sees.

    In the paper's default setup mini-graph interiors are replaced by nops, so
    the static layout (and hence instruction-cache behaviour) is unchanged;
    the compression experiment removes them.  ``compressed=True`` models the
    compressed layout by renumbering every non-nop instruction densely.
    """

    program: Program
    compressed: bool = False
    _dense_index: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.compressed:
            dense = 0
            for index, insn in enumerate(self.program.instructions):
                if not insn.is_nop:
                    self._dense_index[index] = dense
                    dense += 1

    def fetch_address(self, pc: int) -> int:
        if not self.compressed:
            return pc
        index = self.program.index_of(pc)
        dense = self._dense_index.get(index, index)
        return self.program.text_base + dense * 4


class TimingSimulator:
    """Out-of-order pipeline model for one program/trace pair."""

    def __init__(self, program: Program, trace: Trace, config: MachineConfig, *,
                 mgt: Optional[MiniGraphTable] = None,
                 compressed_layout: bool = False) -> None:
        self._program = program
        self._trace = trace
        self._config = config
        self._mgt = mgt
        self.stats = PipelineStats()

        self._predictor = FrontEndPredictor(
            predictor_entries=config.predictor_entries,
            btb_entries=config.btb_entries,
            btb_associativity=config.btb_associativity)
        self._memory = MemoryHierarchy(config)
        self._store_sets = StoreSetPredictor(config.store_set_entries)
        self._funits = FunctionalUnitPool(config)
        self._layout = FetchLayout(program, compressed=compressed_layout)

        # Renaming state: architectural register -> physical register.
        self._rename_map: Dict[int, int] = {reg: reg for reg in range(config.architected_registers)}
        self._free_list: Deque[int] = deque(range(config.architected_registers,
                                                  config.physical_registers))
        # Earliest cycle at which a consumer of the physical register may issue.
        self._ready_cycle: Dict[int, int] = {reg: 0 for reg in range(config.architected_registers)}

        # Pipeline structures.
        self._front_end: Deque[DynInst] = deque()   # fetched, waiting to rename
        self._rob: Deque[DynInst] = deque()
        self._issue_queue: List[DynInst] = []
        self._iq_busy_until: List[int] = []          # handles hold entries while executing
        self._lsq: Deque[_LsqEntry] = deque()
        self._executing: List[DynInst] = []

        # Fetch state.
        self._fetch_index = 0
        self._fetch_stalled_until = 0
        self._fetch_blocked_on: Optional[int] = None  # sequence of unresolved mispredict
        self._next_sequence = 0

    # ------------------------------------------------------------------ run --

    def run(self, *, max_cycles: int = 5_000_000) -> PipelineStats:
        """Simulate until the whole trace has retired; returns the statistics."""
        total_entries = len(self._trace)
        retired_entries = 0
        cycle = 0
        while retired_entries < total_entries:
            if cycle > max_cycles:
                raise TimingError(
                    f"{self._program.name}: exceeded {max_cycles} cycles "
                    f"({retired_entries}/{total_entries} entries retired); "
                    f"the pipeline is probably deadlocked")
            self._funits.begin_cycle(cycle)
            retired_entries += self._retire(cycle)
            self._complete(cycle)
            self._issue(cycle)
            self._rename(cycle)
            self._fetch(cycle)
            self._account_occupancy(cycle)
            cycle += 1
        self.stats.cycles = cycle
        self.stats.branch_mispredictions = self._predictor.mispredictions()
        self.stats.icache_misses = self._memory.icache.stats.misses
        self.stats.dcache_accesses = self._memory.dcache.stats.accesses
        self.stats.dcache_misses = self._memory.dcache.stats.misses
        return self.stats

    # ---------------------------------------------------------------- retire --

    def _retire(self, cycle: int) -> int:
        retired = 0
        while self._rob and retired < self._config.retire_width:
            head = self._rob[0]
            if not head.completed or head.complete_cycle > cycle:
                break
            self._rob.popleft()
            head.retire_cycle = cycle
            if head.previous_physical is not None:
                self._free_list.append(head.previous_physical)
            if head.is_memory and self._lsq and self._lsq[0].sequence == head.sequence:
                self._lsq.popleft()
            self.stats.committed_instructions += head.original_instructions
            self.stats.committed_slots += 1
            if head.is_handle:
                self.stats.committed_handles += 1
            retired += 1
        return retired

    # -------------------------------------------------------------- complete --

    def _complete(self, cycle: int) -> None:
        still_running: List[DynInst] = []
        for inst in self._executing:
            if inst.complete_cycle > cycle:
                still_running.append(inst)
                continue
            # Control resolution: train the predictor and release a blocked
            # front end (redirect penalty charged from the resolution cycle).
            if inst.is_control:
                self._predictor.update(
                    inst.pc,
                    is_conditional=inst.is_conditional_branch,
                    taken=bool(inst.actual_taken),
                    target=inst.actual_target if inst.actual_taken else None,
                    predicted_taken=bool(inst.predicted_taken))
                if self._fetch_blocked_on == inst.sequence:
                    self._fetch_blocked_on = None
                    self._fetch_stalled_until = max(
                        self._fetch_stalled_until,
                        cycle + self._config.misprediction_redirect_penalty)
            if inst.is_memory:
                self._mark_lsq_completed(inst.sequence)
                if inst.is_store:
                    self._store_sets.store_completed(inst.pc, inst.sequence)
        self._executing = still_running

    def _mark_lsq_completed(self, sequence: int) -> None:
        for entry in self._lsq:
            if entry.sequence == sequence:
                entry.completed = True
                return

    # ----------------------------------------------------------------- issue --

    def _issue(self, cycle: int) -> None:
        issued = 0
        remaining: List[DynInst] = []
        # Age-ordered select: the issue queue list is kept in dispatch order.
        for inst in self._issue_queue:
            if issued >= self._config.issue_width:
                remaining.append(inst)
                continue
            if not self._sources_ready(inst, cycle):
                remaining.append(inst)
                continue
            if inst.is_memory and not self._memory_dependence_allows_issue(inst):
                remaining.append(inst)
                continue
            issue_outcome = self._try_issue(inst, cycle)
            if issue_outcome == "issued":
                issued += 1
                self.stats.issue_slots_used += 1
            elif issue_outcome == "slot_lost":
                # A sliding-window reservation conflict consumes the issue slot
                # without issuing anything (Section 4.3).
                issued += 1
                self.stats.sliding_window_conflicts += 1
                remaining.append(inst)
            else:
                remaining.append(inst)
        self._issue_queue = remaining

    def _sources_ready(self, inst: DynInst, cycle: int) -> bool:
        for physical in inst.source_physical:
            if physical is None:
                continue
            if self._ready_cycle.get(physical, 0) > cycle:
                return False
        return True

    def _memory_dependence_allows_issue(self, inst: DynInst) -> bool:
        """Store-sets scheduling plus in-order store address availability."""
        if inst.is_store:
            return True
        predicted = self._store_sets.predicted_store_for(inst.pc)
        if predicted is None:
            return True
        # The LFST is updated at dispatch but consulted at issue, so it can
        # name a store *younger* than the load; waiting on it would deadlock
        # once the ROB fills behind the load.  Only older stores can forward.
        if predicted >= inst.sequence:
            return True
        for entry in self._lsq:
            if entry.sequence == predicted and entry.is_store and not entry.completed:
                return False
        return True

    def _try_issue(self, inst: DynInst, cycle: int) -> str:
        """Attempt to issue; returns "issued", "blocked" or "slot_lost"."""
        if inst.is_handle:
            return self._try_issue_handle(inst, cycle)
        spec = inst.static.spec
        if spec.is_load:
            if not self._funits.can_issue_load():
                return "blocked"
            self._funits.issue_load()
            self._issue_load(inst, cycle)
            return "issued"
        if spec.is_store:
            if not self._funits.can_issue_store():
                return "blocked"
            self._funits.issue_store()
            self._issue_store(inst, cycle)
            return "issued"
        if spec.is_fp:
            if not self._funits.can_issue_fp():
                return "blocked"
            self._funits.issue_fp()
            self._finish_issue(inst, cycle, latency=spec.latency)
            return "issued"
        if spec.op_class in (OpClass.ALU, OpClass.MUL) or spec.is_control \
                or spec.op_class is OpClass.NOP or spec.op_class is OpClass.HALT:
            if not self._funits.can_issue_int():
                return "blocked"
            self._funits.issue_int()
            self._finish_issue(inst, cycle, latency=max(1, spec.latency))
            return "issued"
        raise TimingError(f"cannot issue opcode {inst.static.op}")

    # -- singleton issue helpers ---------------------------------------------------

    def _finish_issue(self, inst: DynInst, cycle: int, *, latency: int,
                      output_latency: Optional[int] = None) -> None:
        inst.issue_cycle = cycle
        execute_start = cycle + self._config.register_read_latency
        inst.complete_cycle = execute_start + latency
        if inst.destination_physical is not None:
            visible = output_latency if output_latency is not None else latency
            wakeup = max(visible, self._config.scheduler_latency)
            inst.output_ready_cycle = cycle + wakeup
            self._ready_cycle[inst.destination_physical] = inst.output_ready_cycle
        self._executing.append(inst)

    def _issue_load(self, inst: DynInst, cycle: int) -> None:
        address = inst.effective_address or 0
        latency = self._memory.data_latency(address)
        self.stats.loads_executed += 1
        self._check_ordering_violation(inst, cycle)
        self._mark_lsq_issued(inst.sequence, address)
        self._finish_issue(inst, cycle, latency=latency)

    def _issue_store(self, inst: DynInst, cycle: int) -> None:
        self.stats.stores_executed += 1
        self._mark_lsq_issued(inst.sequence, inst.effective_address)
        # Stores write the data cache at retirement; for scheduling purposes
        # the store executes (computes its address, forwards data) in one cycle.
        self._finish_issue(inst, cycle, latency=1)

    def _mark_lsq_issued(self, sequence: int, address: Optional[int]) -> None:
        for entry in self._lsq:
            if entry.sequence == sequence:
                entry.issued = True
                entry.address = address
                return

    def _check_ordering_violation(self, inst: DynInst, cycle: int) -> None:
        """Detect a load issuing before an older conflicting store has executed."""
        address = inst.effective_address
        if address is None:
            return
        for entry in self._lsq:
            if entry.sequence >= inst.sequence:
                break
            if not entry.is_store or entry.completed:
                continue
            if entry.address is not None and entry.issued:
                continue
            # The older store has not executed yet; its eventual address comes
            # from its own trace entry (entry.address is filled at dispatch).
            if entry.address == address:
                self.stats.ordering_violations += 1
                inst.caused_ordering_violation = True
                self._store_sets.train_violation(inst.pc, entry.pc)
                self._fetch_stalled_until = max(
                    self._fetch_stalled_until,
                    cycle + self._config.ordering_violation_penalty)
                return

    # -- handle issue helpers --------------------------------------------------------

    def _try_issue_handle(self, inst: DynInst, cycle: int) -> str:
        entry = inst.mgt_entry
        template = entry.template
        header = entry.header
        if template.is_integer_only and self._config.alu_pipelines > 0:
            if not self._funits.can_issue_integer_handle():
                return "blocked"
            self._funits.issue_integer_handle()
        else:
            if not self._config.sliding_window_scheduler and not template.is_integer_only:
                raise TimingError(
                    "integer-memory handles require the sliding-window scheduler; "
                    f"config {self._config.name!r} does not enable it")
            if not self._funits.can_issue_memory_handle(header.fu0, header.fubmp):
                return "slot_lost"
            self._funits.issue_memory_handle(header.fu0, header.fubmp)

        execution_cycles = len(entry.banks)
        output_latency = header.lat
        extra_memory = 0
        if template.has_load:
            address = inst.effective_address or 0
            latency = self._memory.data_latency(address)
            self.stats.loads_executed += 1
            self._check_ordering_violation(inst, cycle)
            self._mark_lsq_issued(inst.sequence, address)
            extra_memory = max(0, latency - self._config.dcache.hit_latency)
            if extra_memory > 0 and template.has_interior_load:
                # An interior load missed: the whole mini-graph is replayed
                # once the miss returns (Section 4.3).
                self.stats.minigraph_replays += 1
                inst.replayed = True
                extra_memory += self._config.minigraph_replay_penalty + execution_cycles
                output_latency = execution_cycles + extra_memory
            elif extra_memory > 0:
                output_latency += extra_memory if template.out_index == template.size - 1 else 0
        elif template.has_store:
            self.stats.stores_executed += 1
            self._mark_lsq_issued(inst.sequence, inst.effective_address)

        total_latency = execution_cycles + extra_memory
        self._finish_issue(inst, cycle, latency=total_latency,
                           output_latency=output_latency)
        # The MGST sequencer frees the scheduler entry only when the terminal
        # instruction issues, so the handle holds its entry while executing.
        self._iq_busy_until.append(cycle + execution_cycles)
        return "issued"

    # ---------------------------------------------------------------- rename --

    def _rename(self, cycle: int) -> None:
        renamed = 0
        while self._front_end and renamed < self._config.rename_width:
            inst = self._front_end[0]
            if inst.fetch_cycle + self._config.front_end_depth > cycle:
                break
            if len(self._rob) >= self._config.rob_size:
                self.stats.stall_rob_full += 1
                break
            if self._issue_queue_occupancy(cycle) >= self._config.issue_queue_size:
                self.stats.stall_iq_full += 1
                break
            if inst.is_memory and len(self._lsq) >= self._config.lsq_size:
                self.stats.stall_lsq_full += 1
                break
            if inst.needs_destination and not self._free_list:
                self.stats.stall_no_physical_register += 1
                break
            self._front_end.popleft()
            self._rename_one(inst, cycle)
            renamed += 1
        if renamed == 0 and self._front_end:
            self.stats.rename_stall_cycles += 1

    def _issue_queue_occupancy(self, cycle: int) -> int:
        self._iq_busy_until = [until for until in self._iq_busy_until if until > cycle]
        return len(self._issue_queue) + len(self._iq_busy_until)

    def _rename_one(self, inst: DynInst, cycle: int) -> None:
        inst.rename_cycle = cycle
        sources = inst.source_registers()
        physical_sources: List[Optional[int]] = [None, None]
        for position, reg in enumerate(sources[:2]):
            physical_sources[position] = self._rename_map.get(reg)
        inst.source_physical = (physical_sources[0], physical_sources[1])

        destination = inst.static.destination_register()
        if inst.needs_destination and destination is not None:
            physical = self._free_list.popleft()
            inst.previous_physical = self._rename_map.get(destination)
            self._rename_map[destination] = physical
            inst.destination_physical = physical
            self._ready_cycle[physical] = float("inf")  # not ready until issue computes it

        self._rob.append(inst)
        self._issue_queue.append(inst)
        if inst.is_memory:
            self._lsq.append(_LsqEntry(
                sequence=inst.sequence, is_store=inst.is_store, pc=inst.pc,
                address=inst.effective_address if inst.is_store else None))
            if inst.is_store:
                self._store_sets.store_dispatched(inst.pc, inst.sequence)

    # ----------------------------------------------------------------- fetch --

    def _fetch(self, cycle: int) -> None:
        if self._fetch_blocked_on is not None or cycle < self._fetch_stalled_until:
            self.stats.fetch_stall_cycles += 1
            return
        if self._fetch_index >= len(self._trace):
            return
        if len(self._front_end) >= self._config.fetch_width * self._config.front_end_depth:
            self.stats.fetch_stall_cycles += 1
            return

        fetched = 0
        current_line: Optional[int] = None
        while fetched < self._config.fetch_width and self._fetch_index < len(self._trace):
            entry = self._trace[self._fetch_index]
            address = self._layout.fetch_address(entry.pc)
            line = self._memory.line_address(address, instruction=True)
            if line != current_line:
                latency = self._memory.instruction_latency(address)
                if latency > self._config.icache.hit_latency:
                    # Instruction cache miss: charge the miss latency and stop
                    # fetching this cycle.
                    self._fetch_stalled_until = max(self._fetch_stalled_until,
                                                    cycle + latency)
                    if fetched == 0:
                        self.stats.fetch_stall_cycles += 1
                    break
                current_line = line
            inst = self._make_dyninst(entry, cycle)
            self._front_end.append(inst)
            self._fetch_index += 1
            fetched += 1
            self.stats.fetched_slots += 1

            if entry.is_control:
                self.stats.branch_lookups += 1
                prediction = self._predictor.predict(
                    entry.pc, is_conditional=inst.is_conditional_branch)
                inst.predicted_taken = prediction.taken
                inst.predicted_target = prediction.target
                actual_taken = bool(entry.taken)
                target_correct = (not actual_taken) or (prediction.target == entry.next_pc)
                if prediction.taken != actual_taken or not target_correct:
                    inst.mispredicted = True
                    self._fetch_blocked_on = inst.sequence
                    break
                if actual_taken:
                    # Correctly predicted taken branches still end the fetch group.
                    break

    def _make_dyninst(self, entry: TraceEntry, cycle: int) -> DynInst:
        static = self._program.at(entry.pc)
        mgt_entry: Optional[MgtEntry] = None
        if entry.is_handle:
            if self._mgt is None:
                raise TimingError("trace contains handles but no MGT was supplied")
            mgt_entry = self._mgt.lookup(entry.mgid)
        inst = DynInst(sequence=self._next_sequence, trace=entry, static=static,
                       mgt_entry=mgt_entry)
        inst.fetch_cycle = cycle
        self._next_sequence += 1
        return inst

    # ------------------------------------------------------------- accounting --

    def _account_occupancy(self, cycle: int) -> None:
        self.stats.rob_occupancy_sum += len(self._rob)
        self.stats.iq_occupancy_sum += self._issue_queue_occupancy(cycle)
        in_use = self._config.physical_registers - len(self._free_list)
        self.stats.physical_registers_in_use_sum += in_use


def simulate_program(program: Program, trace: Trace, config: MachineConfig, *,
                     mgt: Optional[MiniGraphTable] = None,
                     compressed_layout: bool = False) -> PipelineStats:
    """Convenience wrapper: build a :class:`TimingSimulator` and run it."""
    simulator = TimingSimulator(program, trace, config, mgt=mgt,
                                compressed_layout=compressed_layout)
    return simulator.run()
