"""Cycle-level out-of-order superscalar timing model with mini-graph support.

The model is *functional-first, timing-directed*: the functional simulator
produces the committed-path trace (control outcomes and effective addresses)
and this pipeline re-plays it through a detailed out-of-order machine with a
real branch predictor, BTB, cache hierarchy, store-sets predictor, register
renaming, ROB/issue-queue/LSQ capacities and per-class issue ports.

Handles (mini-graphs) are processed as singleton instructions at every stage
except execution, where the MGHT header drives scheduling (FU0/FUBMP/LAT) and
the MGST bank count drives execution occupancy — exactly the division of
labour described in Section 4 of the paper.

Scheduling is *event-driven*: instead of rescanning the whole issue queue
every cycle (quadratic in window occupancy), the scheduler mirrors hardware
wakeup/select.  At rename each entity counts the source operands whose
producers have not broadcast yet; producers, at issue, push their waiting
consumers into a per-cycle wakeup bucket keyed by the operand-broadcast
cycle.  The select stage pops the bucket for the current cycle into an
age-ordered ready heap and issues from it, so per-cycle work is proportional
to the number of *ready* entities, not to window size.  The selection order —
oldest ready first, structural conflicts retried, sliding-window reservation
conflicts consuming an issue slot — is bit-identical to the exhaustive scan
it replaced (enforced by the golden-stats equivalence test).

Static per-instruction metadata (operands, opcode class, latency, MGT
headers) is interned once per program in :mod:`repro.uarch.decode` and shared
across every simulation of that program.

Two modelling simplifications keep the Python model tractable while
preserving the relative effects the paper measures:

* wrong-path instructions are not fetched: a mispredicted control transfer
  stalls fetch until it resolves and then pays the front-end redirect
  penalty, which charges the same latency as a squash-and-refetch without
  modelling wrong-path contention;
* memory-ordering violations are charged as a fetch-redirect penalty at the
  offending load (plus store-set training) rather than by rolling back
  renamed state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Tuple

from ..minigraph.mgt import MiniGraphTable
from ..program.program import Program
from ..sim.trace import (
    TF_CONTROL,
    TF_HAS_EA,
    TF_MEMORY,
    TF_STORE,
    TF_TAKEN,
    Trace,
)
from .bpred import FrontEndPredictor
from .caches import MemoryHierarchy
from .config import ConfigError, MachineConfig
from .decode import (
    KIND_FP,
    KIND_HANDLE,
    KIND_INT,
    KIND_LOAD,
    KIND_STORE,
    DecodeError,
    decode_table,
)
from .dyninst import FOREVER, NEVER, DynInst
from .funits import FunctionalUnitPool
from .stats import PipelineStats
from .storesets import StoreSetPredictor

#: Issue outcomes (integer codes keep the select loop allocation-free).
_ISSUED = 0
_BLOCKED = 1
_SLOT_LOST = 2


def fp_admission_error(config: MachineConfig, program: Program) -> ConfigError:
    """The admission error for an FP trace on a machine with no FP units.

    Shared between the scalar simulator and the batched kernel so a lane
    rejected at batch construction raises exactly the scalar error.
    """
    return ConfigError(
        f"machine {config.name!r} has fp_units=0 but the trace for "
        f"{program.name!r} contains floating-point instructions; "
        f"they could never issue")


class TimingError(RuntimeError):
    """Raised for inconsistent timing-model configurations."""


@dataclass
class _LsqEntry:
    """One load/store queue entry."""

    sequence: int
    is_store: bool
    pc: int
    address: Optional[int]
    issued: bool = False
    completed: bool = False


@dataclass
class FetchLayout:
    """Maps instruction PCs to the addresses the instruction cache sees.

    In the paper's default setup mini-graph interiors are replaced by nops, so
    the static layout (and hence instruction-cache behaviour) is unchanged;
    the compression experiment removes them.  ``compressed=True`` models the
    compressed layout by renumbering every non-nop instruction densely.
    """

    program: Program
    compressed: bool = False
    _dense_index: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.compressed:
            dense = 0
            for index, insn in enumerate(self.program.instructions):
                if not insn.is_nop:
                    self._dense_index[index] = dense
                    dense += 1

    def fetch_address(self, pc: int) -> int:
        if not self.compressed:
            return pc
        index = self.program.index_of(pc)
        return self.address_for_index(index)

    def address_for_index(self, index: int) -> int:
        """Fetch address for a known layout index (skips the PC lookup)."""
        if not self.compressed:
            return self.program.text_base + index * 4
        dense = self._dense_index.get(index, index)
        return self.program.text_base + dense * 4


class TimingSimulator:
    """Out-of-order pipeline model for one program/trace pair."""

    def __init__(self, program: Program, trace: Trace, config: MachineConfig, *,
                 mgt: Optional[MiniGraphTable] = None,
                 compressed_layout: bool = False,
                 record_timeline: bool = False) -> None:
        self._program = program
        self._trace = trace
        self._config = config
        self._mgt = mgt
        self.stats = PipelineStats()
        #: Retired entities in commit order (populated when
        #: ``record_timeline=True``; used by scheduler regression tests).
        self.timeline: Optional[List[DynInst]] = [] if record_timeline else None

        self._predictor = FrontEndPredictor(
            predictor_entries=config.predictor_entries,
            btb_entries=config.btb_entries,
            btb_associativity=config.btb_associativity)
        self._memory = MemoryHierarchy(config)
        self._store_sets = StoreSetPredictor(config.store_set_entries)
        self._funits = FunctionalUnitPool(config)
        self._layout = FetchLayout(program, compressed=compressed_layout)

        # Interned decode metadata and the batched trace feed: one DecodedOp
        # per trace entry, shared with every other simulation of this program.
        self._decode = decode_table(program, mgt)
        try:
            self._feed = self._decode.trace_feed(trace)
        except DecodeError as error:
            raise TimingError(str(error)) from None
        # Admission check: an FP instruction on a machine with no FP units
        # can never issue, so the scheduler spins until the cycle watchdog
        # fires.  Reject the pairing up front with the same error class as
        # any other impossible geometry.  (Found by the geometry fuzz
        # oracle: see tests/test_fuzz.py quarantined-geometry regressions.)
        if config.fp_units == 0 and any(op.kind == KIND_FP
                                        for op in self._feed):
            raise fp_admission_error(config, program)
        # The packed trace columns, read directly by the fetch stage — no
        # per-entry record is ever materialized on the replay path.
        columns = trace.columns()
        self._pc_col = columns.pc
        self._index_col = columns.index
        self._size_col = columns.size
        self._next_pc_col = columns.next_pc
        self._flags_col = columns.flags
        self._ea_col = columns.effective_address

        # Renaming state: architectural register -> physical register.
        self._rename_map: Dict[int, int] = {reg: reg for reg in range(config.architected_registers)}
        self._free_list: Deque[int] = deque(range(config.architected_registers,
                                                  config.physical_registers))
        # Earliest cycle at which a consumer of the physical register may
        # issue; FOREVER until the producer has issued and broadcast.
        self._ready_cycle: Dict[int, int] = {reg: 0 for reg in range(config.architected_registers)}

        # Pipeline structures.
        self._front_end: Deque[DynInst] = deque()   # fetched, waiting to rename
        self._rob: Deque[DynInst] = deque()
        self._lsq: Deque[_LsqEntry] = deque()
        self._lsq_by_seq: Dict[int, _LsqEntry] = {}

        # Event-driven scheduler state.
        self._ready_heap: List[Tuple[int, DynInst]] = []      # (sequence, inst)
        self._wake_buckets: Dict[int, List[DynInst]] = {}     # cycle -> wakeups
        self._reg_waiters: Dict[int, List[DynInst]] = {}      # phys reg -> consumers
        self._complete_buckets: Dict[int, List[DynInst]] = {} # cycle -> completions
        self._iq_count = 0                                    # waiting + ready entries
        self._busy_heap: List[int] = []  # scheduler entries held by executing handles

        # Fetch state.
        self._fetch_index = 0
        self._fetch_stalled_until = 0
        self._fetch_blocked_on: Optional[int] = None  # sequence of unresolved mispredict
        self._next_sequence = 0

        # Hoisted config scalars: the per-cycle loops only touch plain ints.
        self._fetch_width = config.fetch_width
        self._rename_width = config.rename_width
        self._issue_width = config.issue_width
        self._retire_width = config.retire_width
        self._front_end_depth = config.front_end_depth
        self._fetch_buffer_limit = config.fetch_width * config.front_end_depth
        self._rob_size = config.rob_size
        self._iq_size = config.issue_queue_size
        self._lsq_size = config.lsq_size
        self._register_read_latency = config.register_read_latency
        self._scheduler_latency = config.scheduler_latency
        self._physical_registers = config.physical_registers
        self._icache_hit_latency = config.icache.hit_latency
        self._dcache_hit_latency = config.dcache.hit_latency
        self._alu_pipelines = config.alu_pipelines
        self._sliding_window = config.sliding_window_scheduler

    # ------------------------------------------------------------------ run --

    def run(self, *, max_cycles: int = 5_000_000) -> PipelineStats:
        """Simulate until the whole trace has retired; returns the statistics."""
        total_entries = len(self._flags_col)
        retired_entries = 0
        cycle = 0
        begin_cycle = self._funits.begin_cycle
        retire = self._retire
        complete = self._complete
        issue = self._issue
        rename = self._rename
        fetch = self._fetch
        stats = self.stats
        rob = self._rob
        front_end = self._front_end
        free_list = self._free_list
        ready_heap = self._ready_heap
        wake_buckets = self._wake_buckets
        complete_buckets = self._complete_buckets
        busy_heap = self._busy_heap
        physical_registers = self._physical_registers
        # Each stage call is guarded by the event state that could make it do
        # work, so idle stages cost nothing; the guards replicate each
        # stage's own early-out exactly.  The functional-unit pool only
        # matters while selecting, so its per-cycle reset runs just before
        # an actual issue attempt (handles reserve only future cycles, so a
        # skipped reset can never hide a reservation).
        while retired_entries < total_entries:
            if cycle > max_cycles:
                raise TimingError(
                    f"{self._program.name}: exceeded {max_cycles} cycles "
                    f"({retired_entries}/{total_entries} entries retired); "
                    f"the pipeline is probably deadlocked")
            if rob:
                head_complete = rob[0].complete_cycle
                if head_complete != NEVER and head_complete <= cycle:
                    retired_entries += retire(cycle)
            finishing = complete_buckets.pop(cycle, None)
            if finishing:
                complete(cycle, finishing)
            woken = wake_buckets.pop(cycle, None)
            if woken or ready_heap:
                begin_cycle(cycle)
                issue(cycle, woken)
            if front_end:
                rename(cycle)
            if self._fetch_index < total_entries \
                    or self._fetch_blocked_on is not None \
                    or cycle < self._fetch_stalled_until:
                fetch(cycle)
            stats.rob_occupancy_sum += len(rob)
            while busy_heap and busy_heap[0] <= cycle:
                heappop(busy_heap)
            stats.iq_occupancy_sum += self._iq_count + len(busy_heap)
            stats.physical_registers_in_use_sum += \
                physical_registers - len(free_list)
            cycle += 1
        self.stats.cycles = cycle
        self.stats.branch_mispredictions = self._predictor.mispredictions()
        self.stats.icache_misses = self._memory.icache.stats.misses
        self.stats.dcache_accesses = self._memory.dcache.stats.accesses
        self.stats.dcache_misses = self._memory.dcache.stats.misses
        return self.stats

    # ---------------------------------------------------------------- retire --

    def _retire(self, cycle: int) -> int:
        rob = self._rob
        if not rob:
            return 0
        head = rob[0]
        complete_cycle = head.complete_cycle
        if complete_cycle == NEVER or complete_cycle > cycle:
            return 0
        retired = 0
        stats = self.stats
        free_list = self._free_list
        lsq = self._lsq
        width = self._retire_width
        while rob and retired < width:
            head = rob[0]
            complete_cycle = head.complete_cycle
            if complete_cycle == NEVER or complete_cycle > cycle:
                break
            rob.popleft()
            head.retire_cycle = cycle
            if head.previous_physical is not None:
                free_list.append(head.previous_physical)
            if (head.flags & TF_MEMORY) and lsq \
                    and lsq[0].sequence == head.sequence:
                lsq.popleft()
                del self._lsq_by_seq[head.sequence]
            stats.committed_instructions += head.size
            stats.committed_slots += 1
            if head.decoded.mgt_entry is not None:
                stats.committed_handles += 1
            if self.timeline is not None:
                self.timeline.append(head)
            retired += 1
        return retired

    # -------------------------------------------------------------- complete --

    def _complete(self, cycle: int, finishing: List[DynInst]) -> None:
        for inst in finishing:
            flags = inst.flags
            # Control resolution: train the predictor and release a blocked
            # front end (redirect penalty charged from the resolution cycle).
            if flags & TF_CONTROL:
                taken = bool(flags & TF_TAKEN)
                self._predictor.update(
                    inst.pc,
                    is_conditional=inst.decoded.is_conditional_branch,
                    taken=taken,
                    target=inst.next_pc if taken else None,
                    predicted_taken=bool(inst.predicted_taken))
                if self._fetch_blocked_on == inst.sequence:
                    self._fetch_blocked_on = None
                    self._fetch_stalled_until = max(
                        self._fetch_stalled_until,
                        cycle + self._config.misprediction_redirect_penalty)
            if flags & TF_MEMORY:
                lsq_entry = self._lsq_by_seq.get(inst.sequence)
                if lsq_entry is not None:
                    lsq_entry.completed = True
                if flags & TF_STORE:
                    self._store_sets.store_completed(inst.pc, inst.sequence)

    # ----------------------------------------------------------------- issue --

    def _issue(self, cycle: int, woken: Optional[List[DynInst]] = None) -> None:
        heap = self._ready_heap
        if woken:
            for inst in woken:
                heappush(heap, (inst.sequence, inst))
        if not heap:
            return
        issued = 0
        width = self._issue_width
        stats = self.stats
        deferred: List[DynInst] = []
        # Age-ordered select over the *ready* entities only; anything that
        # cannot issue this cycle (port conflict, memory dependence, lost
        # sliding-window slot) is deferred and retried next cycle.
        while heap and issued < width:
            inst = heappop(heap)[1]
            if (inst.flags & TF_MEMORY) \
                    and not self._memory_dependence_allows_issue(inst):
                deferred.append(inst)
                continue
            outcome = self._try_issue(inst, cycle)
            if outcome == _ISSUED:
                issued += 1
                stats.issue_slots_used += 1
            elif outcome == _SLOT_LOST:
                # A sliding-window reservation conflict consumes the issue slot
                # without issuing anything (Section 4.3).
                issued += 1
                stats.sliding_window_conflicts += 1
                deferred.append(inst)
            else:
                deferred.append(inst)
        for inst in deferred:
            heappush(heap, (inst.sequence, inst))

    def _memory_dependence_allows_issue(self, inst: DynInst) -> bool:
        """Store-sets scheduling plus in-order store address availability."""
        if inst.flags & TF_STORE:
            return True
        predicted = self._store_sets.predicted_store_for(inst.pc)
        if predicted is None:
            return True
        # The LFST is updated at dispatch but consulted at issue, so it can
        # name a store *younger* than the load; waiting on it would deadlock
        # once the ROB fills behind the load.  Only older stores can forward.
        if predicted >= inst.sequence:
            return True
        entry = self._lsq_by_seq.get(predicted)
        if entry is not None and entry.is_store and not entry.completed:
            return False
        return True

    def _try_issue(self, inst: DynInst, cycle: int) -> int:
        """Attempt to issue; returns ``_ISSUED``, ``_BLOCKED`` or ``_SLOT_LOST``."""
        decoded = inst.decoded
        kind = decoded.kind
        funits = self._funits
        if kind == KIND_INT:
            if not funits.take_int():
                return _BLOCKED
            self._finish_issue(inst, cycle, latency=decoded.latency)
            return _ISSUED
        if kind == KIND_LOAD:
            if not funits.take_load():
                return _BLOCKED
            self._issue_load(inst, cycle)
            return _ISSUED
        if kind == KIND_STORE:
            if not funits.take_store():
                return _BLOCKED
            self._issue_store(inst, cycle)
            return _ISSUED
        if kind == KIND_FP:
            if not funits.take_fp():
                return _BLOCKED
            self._finish_issue(inst, cycle, latency=decoded.latency)
            return _ISSUED
        if kind == KIND_HANDLE:
            return self._try_issue_handle(inst, cycle)
        raise TimingError(f"cannot issue opcode {decoded.op}")

    # -- singleton issue helpers ---------------------------------------------------

    def _finish_issue(self, inst: DynInst, cycle: int, *, latency: int,
                      output_latency: Optional[int] = None) -> None:
        inst.issue_cycle = cycle
        self._iq_count -= 1
        complete_cycle = cycle + self._register_read_latency + latency
        inst.complete_cycle = complete_cycle
        bucket = self._complete_buckets.get(complete_cycle)
        if bucket is None:
            self._complete_buckets[complete_cycle] = [inst]
        else:
            bucket.append(inst)
        dest = inst.destination_physical
        if dest is not None:
            visible = output_latency if output_latency is not None else latency
            scheduler_latency = self._scheduler_latency
            broadcast = cycle + (visible if visible > scheduler_latency
                                 else scheduler_latency)
            inst.output_ready_cycle = broadcast
            self._ready_cycle[dest] = broadcast
            waiters = self._reg_waiters.pop(dest, None)
            if waiters:
                wake_buckets = self._wake_buckets
                for consumer in waiters:
                    consumer.pending_sources -= 1
                    if consumer.wake_cycle < broadcast:
                        consumer.wake_cycle = broadcast
                    if consumer.pending_sources == 0:
                        wake = wake_buckets.get(consumer.wake_cycle)
                        if wake is None:
                            wake_buckets[consumer.wake_cycle] = [consumer]
                        else:
                            wake.append(consumer)

    def _issue_load(self, inst: DynInst, cycle: int) -> None:
        address = inst.effective_address or 0
        latency = self._memory.data_latency(address)
        self.stats.loads_executed += 1
        self._check_ordering_violation(inst, cycle)
        self._mark_lsq_issued(inst.sequence, address)
        self._finish_issue(inst, cycle, latency=latency)

    def _issue_store(self, inst: DynInst, cycle: int) -> None:
        self.stats.stores_executed += 1
        self._mark_lsq_issued(inst.sequence, inst.effective_address)
        # Stores write the data cache at retirement; for scheduling purposes
        # the store executes (computes its address, forwards data) in one cycle.
        self._finish_issue(inst, cycle, latency=1)

    def _mark_lsq_issued(self, sequence: int, address: Optional[int]) -> None:
        entry = self._lsq_by_seq.get(sequence)
        if entry is not None:
            entry.issued = True
            entry.address = address

    def _check_ordering_violation(self, inst: DynInst, cycle: int) -> None:
        """Detect a load issuing before an older conflicting store has executed."""
        address = inst.effective_address
        if address is None:
            return
        sequence = inst.sequence
        for entry in self._lsq:
            if entry.sequence >= sequence:
                break
            if not entry.is_store or entry.completed:
                continue
            if entry.address is not None and entry.issued:
                continue
            # The older store has not executed yet; its eventual address comes
            # from its own trace entry (entry.address is filled at dispatch).
            if entry.address == address:
                self.stats.ordering_violations += 1
                inst.caused_ordering_violation = True
                self._store_sets.train_violation(inst.pc, entry.pc)
                self._fetch_stalled_until = max(
                    self._fetch_stalled_until,
                    cycle + self._config.ordering_violation_penalty)
                return

    # -- handle issue helpers --------------------------------------------------------

    def _try_issue_handle(self, inst: DynInst, cycle: int) -> int:
        decoded = inst.decoded
        if decoded.integer_only and self._alu_pipelines > 0:
            if not self._funits.take_integer_handle():
                return _BLOCKED
        else:
            if not self._sliding_window and not decoded.integer_only:
                raise TimingError(
                    "integer-memory handles require the sliding-window scheduler; "
                    f"config {self._config.name!r} does not enable it")
            if not self._funits.can_issue_memory_handle(decoded.fu0, decoded.fubmp):
                return _SLOT_LOST
            self._funits.issue_memory_handle(decoded.fu0, decoded.fubmp)

        execution_cycles = decoded.execution_cycles
        output_latency = decoded.header_lat
        extra_memory = 0
        if decoded.has_load:
            address = inst.effective_address or 0
            latency = self._memory.data_latency(address)
            self.stats.loads_executed += 1
            self._check_ordering_violation(inst, cycle)
            self._mark_lsq_issued(inst.sequence, address)
            extra_memory = max(0, latency - self._dcache_hit_latency)
            if extra_memory > 0 and decoded.has_interior_load:
                # An interior load missed: the whole mini-graph is replayed
                # once the miss returns (Section 4.3).
                self.stats.minigraph_replays += 1
                inst.replayed = True
                extra_memory += self._config.minigraph_replay_penalty + execution_cycles
                output_latency = execution_cycles + extra_memory
            elif extra_memory > 0:
                output_latency += extra_memory if decoded.out_is_last else 0
        elif decoded.has_store:
            self.stats.stores_executed += 1
            self._mark_lsq_issued(inst.sequence, inst.effective_address)

        total_latency = execution_cycles + extra_memory
        self._finish_issue(inst, cycle, latency=total_latency,
                           output_latency=output_latency)
        # The MGST sequencer frees the scheduler entry only when the terminal
        # instruction issues, so the handle holds its entry while executing.
        heappush(self._busy_heap, cycle + execution_cycles)
        return _ISSUED

    # ---------------------------------------------------------------- rename --

    def _rename(self, cycle: int) -> None:
        front_end = self._front_end
        if not front_end:
            return
        renamed = 0
        stats = self.stats
        rob = self._rob
        lsq = self._lsq
        free_list = self._free_list
        rob_size = self._rob_size
        iq_size = self._iq_size
        lsq_size = self._lsq_size
        horizon = cycle - self._front_end_depth
        while front_end and renamed < self._rename_width:
            inst = front_end[0]
            if inst.fetch_cycle > horizon:
                break
            if len(rob) >= rob_size:
                stats.stall_rob_full += 1
                break
            if self._issue_queue_occupancy(cycle) >= iq_size:
                stats.stall_iq_full += 1
                break
            if (inst.flags & TF_MEMORY) and len(lsq) >= lsq_size:
                stats.stall_lsq_full += 1
                break
            if inst.decoded.needs_destination and not free_list:
                stats.stall_no_physical_register += 1
                break
            front_end.popleft()
            self._rename_one(inst, cycle)
            renamed += 1
        if renamed == 0 and front_end:
            stats.rename_stall_cycles += 1

    def _issue_queue_occupancy(self, cycle: int) -> int:
        busy = self._busy_heap
        while busy and busy[0] <= cycle:
            heappop(busy)
        return self._iq_count + len(busy)

    def _rename_one(self, inst: DynInst, cycle: int) -> None:
        inst.rename_cycle = cycle
        decoded = inst.decoded
        rename_map = self._rename_map
        source0, source1 = decoded.renamed_sources
        physical0 = rename_map.get(source0) if source0 is not None else None
        physical1 = rename_map.get(source1) if source1 is not None else None
        inst.source_physical = (physical0, physical1)

        ready_cycle = self._ready_cycle
        if decoded.needs_destination:
            physical = self._free_list.popleft()
            inst.previous_physical = rename_map.get(decoded.dest)
            rename_map[decoded.dest] = physical
            inst.destination_physical = physical
            ready_cycle[physical] = FOREVER  # not ready until issue computes it

        # Wakeup registration: count outstanding producers; if all sources
        # have broadcast, schedule straight into the earliest legal select
        # cycle (the cycle after rename, or the latest operand-ready cycle).
        pending = 0
        wake = cycle + 1
        for physical in (physical0, physical1):
            if physical is None:
                continue
            broadcast = ready_cycle.get(physical, 0)
            if broadcast >= FOREVER:
                pending += 1
                waiters = self._reg_waiters.get(physical)
                if waiters is None:
                    self._reg_waiters[physical] = [inst]
                else:
                    waiters.append(inst)
            elif broadcast > wake:
                wake = broadcast
        if pending:
            inst.pending_sources = pending
            inst.wake_cycle = wake
        else:
            bucket = self._wake_buckets.get(wake)
            if bucket is None:
                self._wake_buckets[wake] = [inst]
            else:
                bucket.append(inst)
        self._iq_count += 1

        self._rob.append(inst)
        flags = inst.flags
        if flags & TF_MEMORY:
            is_store = bool(flags & TF_STORE)
            lsq_entry = _LsqEntry(
                sequence=inst.sequence, is_store=is_store, pc=inst.pc,
                address=inst.effective_address if is_store else None)
            self._lsq.append(lsq_entry)
            self._lsq_by_seq[inst.sequence] = lsq_entry
            if is_store:
                self._store_sets.store_dispatched(inst.pc, inst.sequence)

    # ----------------------------------------------------------------- fetch --

    def _fetch(self, cycle: int) -> None:
        if self._fetch_blocked_on is not None or cycle < self._fetch_stalled_until:
            self.stats.fetch_stall_cycles += 1
            return
        flags_col = self._flags_col
        index = self._fetch_index
        total = len(flags_col)
        if index >= total:
            return
        front_end = self._front_end
        if len(front_end) >= self._fetch_buffer_limit:
            self.stats.fetch_stall_cycles += 1
            return

        fetched = 0
        current_line: Optional[int] = None
        feed = self._feed
        memory = self._memory
        layout = self._layout
        stats = self.stats
        icache_hit = self._icache_hit_latency
        width = self._fetch_width
        compressed = layout.compressed
        pc_col = self._pc_col
        index_col = self._index_col
        size_col = self._size_col
        next_pc_col = self._next_pc_col
        ea_col = self._ea_col
        # Each slot is read straight out of the packed columns; no trace
        # record is materialized.
        while fetched < width and index < total:
            flags = flags_col[index]
            pc = pc_col[index]
            address = layout.address_for_index(index_col[index]) if compressed \
                else pc
            line = memory.line_address(address, instruction=True)
            if line != current_line:
                latency = memory.instruction_latency(address)
                if latency > icache_hit:
                    # Instruction cache miss: charge the miss latency and stop
                    # fetching this cycle.
                    self._fetch_stalled_until = max(self._fetch_stalled_until,
                                                    cycle + latency)
                    if fetched == 0:
                        stats.fetch_stall_cycles += 1
                    break
                current_line = line
            decoded = feed[index]
            next_pc = next_pc_col[index]
            inst = DynInst(self._next_sequence, decoded, pc, size_col[index],
                           next_pc, flags,
                           ea_col[index] if flags & TF_HAS_EA else None)
            inst.fetch_cycle = cycle
            self._next_sequence += 1
            front_end.append(inst)
            index += 1
            fetched += 1
            stats.fetched_slots += 1

            if flags & TF_CONTROL:
                stats.branch_lookups += 1
                prediction = self._predictor.predict(
                    pc, is_conditional=decoded.is_conditional_branch)
                inst.predicted_taken = prediction.taken
                inst.predicted_target = prediction.target
                actual_taken = bool(flags & TF_TAKEN)
                target_correct = (not actual_taken) or (prediction.target == next_pc)
                if prediction.taken != actual_taken or not target_correct:
                    inst.mispredicted = True
                    self._fetch_blocked_on = inst.sequence
                    break
                if actual_taken:
                    # Correctly predicted taken branches still end the fetch group.
                    break
        self._fetch_index = index


def simulate_program(program: Program, trace: Trace, config: MachineConfig, *,
                     mgt: Optional[MiniGraphTable] = None,
                     compressed_layout: bool = False) -> PipelineStats:
    """Convenience wrapper: build a :class:`TimingSimulator` and run it."""
    simulator = TimingSimulator(program, trace, config, mgt=mgt,
                                compressed_layout=compressed_layout)
    return simulator.run()
