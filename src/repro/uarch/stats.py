"""Statistics collected by the timing pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PipelineStats:
    """Counters and derived metrics for one timing simulation run.

    ``committed_instructions`` counts *original* program instructions (a
    retired handle adds its mini-graph size), so IPC is directly comparable
    between baseline and mini-graph runs: both execute the same work.
    ``committed_slots`` counts retired entities (handles count once), which is
    what the pipeline bandwidth actually processed.
    """

    cycles: int = 0
    committed_instructions: int = 0
    committed_slots: int = 0
    committed_handles: int = 0

    fetched_slots: int = 0
    fetch_stall_cycles: int = 0
    rename_stall_cycles: int = 0
    issue_slots_used: int = 0

    branch_lookups: int = 0
    branch_mispredictions: int = 0

    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0

    loads_executed: int = 0
    stores_executed: int = 0
    ordering_violations: int = 0
    minigraph_replays: int = 0
    sliding_window_conflicts: int = 0

    # Structural stall breakdown (cycles in which rename was blocked by ...).
    stall_rob_full: int = 0
    stall_iq_full: int = 0
    stall_lsq_full: int = 0
    stall_no_physical_register: int = 0

    # Occupancy integrals (sum over cycles; divide by cycles for averages).
    rob_occupancy_sum: int = 0
    iq_occupancy_sum: int = 0
    physical_registers_in_use_sum: int = 0

    @property
    def ipc(self) -> float:
        """Committed original instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def slot_ipc(self) -> float:
        """Committed pipeline slots (handles count once) per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_slots / self.cycles

    @property
    def dynamic_coverage(self) -> float:
        """Fraction of original instructions absorbed into handles."""
        if self.committed_instructions == 0:
            return 0.0
        absorbed = self.committed_instructions - self.committed_slots
        return absorbed / self.committed_instructions

    @property
    def branch_misprediction_rate(self) -> float:
        if self.branch_lookups == 0:
            return 0.0
        return self.branch_mispredictions / self.branch_lookups

    @property
    def dcache_miss_rate(self) -> float:
        if self.dcache_accesses == 0:
            return 0.0
        return self.dcache_misses / self.dcache_accesses

    @property
    def average_rob_occupancy(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.rob_occupancy_sum / self.cycles

    @property
    def average_iq_occupancy(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.iq_occupancy_sum / self.cycles

    @property
    def average_registers_in_use(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.physical_registers_in_use_sum / self.cycles

    def as_dict(self) -> Dict[str, float]:
        """Flatten counters and derived metrics for reports."""
        return {
            "cycles": float(self.cycles),
            "committed_instructions": float(self.committed_instructions),
            "committed_slots": float(self.committed_slots),
            "committed_handles": float(self.committed_handles),
            "ipc": self.ipc,
            "slot_ipc": self.slot_ipc,
            "dynamic_coverage": self.dynamic_coverage,
            "branch_misprediction_rate": self.branch_misprediction_rate,
            "dcache_miss_rate": self.dcache_miss_rate,
            "ordering_violations": float(self.ordering_violations),
            "minigraph_replays": float(self.minigraph_replays),
            "sliding_window_conflicts": float(self.sliding_window_conflicts),
            "average_rob_occupancy": self.average_rob_occupancy,
            "average_iq_occupancy": self.average_iq_occupancy,
            "average_registers_in_use": self.average_registers_in_use,
            "stall_rob_full": float(self.stall_rob_full),
            "stall_iq_full": float(self.stall_iq_full),
            "stall_lsq_full": float(self.stall_lsq_full),
            "stall_no_physical_register": float(self.stall_no_physical_register),
        }
