"""Functional-unit pool: per-cycle issue ports, ALU pipelines and the
sliding-window resource reservation bitmap.

The baseline issues up to 4 integer, 2 floating-point, 2 load and 1 store
operations per cycle.  A mini-graph processor replaces some plain ALUs with
*ALU pipelines* (single-entry, single-exit chains of ALUs): each pipeline
accepts one operation or handle per cycle at its input but performs one
constituent operation per stage per cycle internally, amplifying execution
bandwidth without adding bypass paths.  Singleton ALU operations may also use
an ALU pipeline's input with no penalty (the output mux selects the unlatched
first-stage result), so substituting pipelines for ALUs does not hurt
programs without mini-graphs.

The *sliding-window scheduler* extends the conventional write-port
reservation bitmap in both dimensions (resources x future cycles) so that an
integer-memory handle can reserve all the functional units its constituent
instructions will need before it issues (Section 4.3).  The same mechanism is
reused as a fallback to execute handles on machines without ALU pipelines by
reserving a plain ALU for each execution cycle of the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..minigraph.mgt import FU_ALU, FU_ALU_PIPELINE, FU_BRANCH, FU_LOAD, FU_STORE
from .config import MachineConfig


@dataclass
class FunctionalUnitStats:
    """Issue-port utilisation counters."""

    int_issues: int = 0
    fp_issues: int = 0
    load_issues: int = 0
    store_issues: int = 0
    handle_issues: int = 0
    structural_stalls: int = 0
    reservation_conflicts: int = 0


class FunctionalUnitPool:
    """Per-cycle issue port tracking plus the sliding-window bitmap."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self.stats = FunctionalUnitStats()
        self._cycle = -1
        self._plain_used = 0
        self._pipeline_used = 0
        self._fp_used = 0
        self._load_used = 0
        self._store_used = 0
        self._memory_handles_issued = 0
        # Future reservations made by in-flight handles: cycle -> unit -> count.
        self._reservations: Dict[int, Dict[str, int]] = {}
        # Hoisted config scalars (plain_alu_units is a computed property) and
        # the current cycle's reservation counts, cached by begin_cycle so the
        # per-issue availability checks are pure integer arithmetic.
        self._plain_alu_units = config.plain_alu_units
        self._alu_pipelines = config.alu_pipelines
        self._fp_units = config.fp_units
        self._load_ports = config.load_ports
        self._store_ports = config.store_ports
        self._now_alu = 0
        self._now_pipeline = 0
        self._now_load = 0
        self._now_store = 0

    # -- per-cycle bookkeeping ---------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle port usage and drop stale reservations."""
        self._cycle = cycle
        self._plain_used = 0
        self._pipeline_used = 0
        self._fp_used = 0
        self._load_used = 0
        self._store_used = 0
        self._memory_handles_issued = 0
        reservations = self._reservations
        now: Optional[Dict[str, int]] = None
        if reservations:
            for key in [key for key in reservations if key < cycle]:
                del reservations[key]
            now = reservations.get(cycle)
        if now:
            # Handles only reserve *future* cycles (offsets start at 1), so
            # this cycle's bucket cannot grow once the cycle has begun.
            self._now_alu = now.get(FU_ALU, 0)
            self._now_pipeline = now.get(FU_ALU_PIPELINE, 0)
            self._now_load = now.get(FU_LOAD, 0)
            self._now_store = now.get(FU_STORE, 0)
        else:
            self._now_alu = 0
            self._now_pipeline = 0
            self._now_load = 0
            self._now_store = 0

    def _reserved(self, cycle: int, unit: str) -> int:
        return self._reservations.get(cycle, {}).get(unit, 0)

    def _reserve(self, cycle: int, unit: str, count: int = 1) -> None:
        bucket = self._reservations.setdefault(cycle, {})
        bucket[unit] = bucket.get(unit, 0) + count

    def _plain_free(self) -> int:
        return self._plain_alu_units - self._plain_used - self._now_alu

    def _pipeline_free(self) -> int:
        return self._alu_pipelines - self._pipeline_used - self._now_pipeline

    # -- singleton issue -----------------------------------------------------------

    def can_issue_int(self) -> bool:
        """Can another singleton integer operation issue this cycle?"""
        return self._plain_free() > 0 or self._pipeline_free() > 0

    def issue_int(self) -> bool:
        """Issue one singleton integer operation (plain ALU preferred)."""
        if self.take_int():
            return True
        self.stats.structural_stalls += 1
        return False

    # -- combined claim helpers (hot path: one check-and-consume call) ------------
    #
    # take_* is the single source of truth for issue arbitration; the
    # can_issue_*/issue_* pairs below are the legacy interface (issue_*
    # additionally counts a structural stall on failure, which the pipeline's
    # check-first callers never hit).

    def take_int(self) -> bool:
        """Claim one integer issue slot (plain ALU preferred), if any is free."""
        if self._plain_free() > 0:
            self._plain_used += 1
        elif self._pipeline_free() > 0:
            self._pipeline_used += 1
        else:
            return False
        self.stats.int_issues += 1
        return True

    def take_fp(self) -> bool:
        """Claim one floating-point issue slot this cycle, if free."""
        if self._fp_used >= self._fp_units:
            return False
        self._fp_used += 1
        self.stats.fp_issues += 1
        return True

    def take_load(self) -> bool:
        """Claim one load port this cycle, if free."""
        if self._load_used + self._now_load >= self._load_ports:
            return False
        self._load_used += 1
        self.stats.load_issues += 1
        return True

    def take_store(self) -> bool:
        """Claim one store port this cycle, if free."""
        if self._store_used + self._now_store >= self._store_ports:
            return False
        self._store_used += 1
        self.stats.store_issues += 1
        return True

    def take_integer_handle(self) -> bool:
        """Claim one ALU-pipeline input for an integer-only handle, if free."""
        if self._pipeline_free() <= 0:
            return False
        self._pipeline_used += 1
        self.stats.handle_issues += 1
        return True

    def can_issue_fp(self) -> bool:
        return self._fp_used < self._fp_units

    def issue_fp(self) -> bool:
        if self.take_fp():
            return True
        self.stats.structural_stalls += 1
        return False

    def can_issue_load(self) -> bool:
        return self._load_used + self._now_load < self._load_ports

    def issue_load(self) -> bool:
        if self.take_load():
            return True
        self.stats.structural_stalls += 1
        return False

    def can_issue_store(self) -> bool:
        return self._store_used + self._now_store < self._store_ports

    def issue_store(self) -> bool:
        if self.take_store():
            return True
        self.stats.structural_stalls += 1
        return False

    # -- handle issue ----------------------------------------------------------------

    @staticmethod
    def _normalise_unit(unit: str) -> str:
        if unit.startswith(FU_ALU_PIPELINE):
            return FU_ALU_PIPELINE
        if unit == FU_BRANCH:
            return FU_ALU
        return unit

    def can_issue_integer_handle(self) -> bool:
        """Integer-only handles execute on an ALU pipeline (one input per cycle)."""
        return self._pipeline_free() > 0

    def issue_integer_handle(self) -> bool:
        if self.take_integer_handle():
            return True
        self.stats.structural_stalls += 1
        return False

    def can_issue_memory_handle(self, fu0: str, fubmp: Tuple[Optional[str], ...]) -> bool:
        """Check first-cycle availability and the sliding-window reservation.

        At most ``max_memory_handles_per_cycle`` integer-memory handles issue
        per cycle because cross-checking candidate FUBMPs against one another
        is too expensive (Section 4.3).
        """
        if self._memory_handles_issued >= self._config.max_memory_handles_per_cycle:
            return False
        if not self._unit_available_now(self._normalise_unit(fu0)):
            return False
        for offset, unit in enumerate(fubmp, start=1):
            if unit is None:
                continue
            if not self._unit_available_future(self._cycle + offset,
                                               self._normalise_unit(unit)):
                return False
        return True

    def issue_memory_handle(self, fu0: str, fubmp: Tuple[Optional[str], ...]) -> bool:
        """Issue an integer-memory handle, reserving its future functional units."""
        if not self.can_issue_memory_handle(fu0, fubmp):
            self.stats.reservation_conflicts += 1
            return False
        self._consume_unit_now(self._normalise_unit(fu0))
        for offset, unit in enumerate(fubmp, start=1):
            if unit is None:
                continue
            self._reserve(self._cycle + offset, self._normalise_unit(unit))
        self._memory_handles_issued += 1
        self.stats.handle_issues += 1
        return True

    # -- unit availability -------------------------------------------------------

    def _unit_available_now(self, unit: str) -> bool:
        if unit == FU_LOAD:
            return self.can_issue_load()
        if unit == FU_STORE:
            return self.can_issue_store()
        if unit == FU_ALU_PIPELINE:
            return self._pipeline_free() > 0
        return self.can_issue_int()

    def _consume_unit_now(self, unit: str) -> None:
        if unit == FU_LOAD:
            self.issue_load()
        elif unit == FU_STORE:
            self.issue_store()
        elif unit == FU_ALU_PIPELINE:
            self._pipeline_used += 1
        else:
            self.issue_int()

    def _unit_available_future(self, cycle: int, unit: str) -> bool:
        if unit == FU_LOAD:
            return self._reserved(cycle, FU_LOAD) < self._config.load_ports
        if unit == FU_STORE:
            return self._reserved(cycle, FU_STORE) < self._config.store_ports
        if unit == FU_ALU_PIPELINE:
            return self._reserved(cycle, FU_ALU_PIPELINE) < max(1, self._config.alu_pipelines)
        capacity = max(1, self._config.plain_alu_units + self._config.alu_pipelines)
        return self._reserved(cycle, FU_ALU) < capacity
