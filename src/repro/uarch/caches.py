"""Set-associative cache models and the two-level memory hierarchy.

The timing model only needs access latencies (it does not move data), so a
cache here is a tag store with LRU replacement.  The hierarchy mirrors the
paper's: split 32KB L1 instruction and data caches, a unified 2MB L2 and a
100-cycle main memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import CacheConfig, MachineConfig


@dataclass
class CacheStats:
    """Access/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A set-associative tag store with LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self._config = config
        self._name = name
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.stats = CacheStats()

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> CacheConfig:
        return self._config

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self._config.line_bytes
        return line % self._config.num_sets, line

    def access(self, address: int) -> bool:
        """Access ``address``; returns True on a hit (and updates LRU state)."""
        self.stats.accesses += 1
        set_index, tag = self._locate(address)
        entries = self._sets[set_index]
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            return True
        self.stats.misses += 1
        entries.insert(0, tag)
        while len(entries) > self._config.associativity:
            entries.pop()
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 and main memory.

    ``instruction_latency``/``data_latency`` return the complete access
    latency in cycles for one reference, walking the hierarchy and updating
    all levels (a miss installs the line everywhere, i.e. inclusive caches).
    """

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self.icache = Cache(config.icache, "L1I")
        self.dcache = Cache(config.dcache, "L1D")
        self.l2 = Cache(config.l2cache, "L2")

    def instruction_latency(self, address: int) -> int:
        """Latency of fetching the line containing ``address``."""
        if self.icache.access(address):
            return self._config.icache.hit_latency
        if self.l2.access(address):
            return self._config.icache.hit_latency + self._config.l2cache.hit_latency
        return (self._config.icache.hit_latency + self._config.l2cache.hit_latency
                + self._config.memory_latency)

    def data_latency(self, address: int) -> int:
        """Latency of a data access to ``address``."""
        if self.dcache.access(address):
            return self._config.dcache.hit_latency
        if self.l2.access(address):
            return self._config.dcache.hit_latency + self._config.l2cache.hit_latency
        return (self._config.dcache.hit_latency + self._config.l2cache.hit_latency
                + self._config.memory_latency)

    def data_hits_in_l1(self, address: int) -> bool:
        """Non-destructive check used by replay accounting."""
        return self.dcache.probe(address)

    def line_address(self, address: int, *, instruction: bool = True) -> int:
        line_bytes = (self._config.icache.line_bytes if instruction
                      else self._config.dcache.line_bytes)
        return address - (address % line_bytes)
