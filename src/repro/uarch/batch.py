"""Batched multi-machine timing kernel: one fused pass drives M lanes.

Grid campaigns time committed traces on many machine shapes — the planner
already dedups the functional profile and the front-end compile, so the
per-cell cost left is the scalar :class:`~repro.uarch.pipeline.
TimingSimulator` interpreter loop, repeated once per machine even though the
decode facts, the trace columns and the fetch addresses never change.

:class:`BatchedTimingSimulator` restructures that work as structure-of-arrays
*lanes*.  A lane is one machine configuration over one decoded trace, and
lanes of a pass need **not** share the trace: each lane carries a *trace
cursor* — its interned :class:`TraceFacts` (trace identity, decoded-column
views, length) plus its commit position while it runs — so a fig6/fig8-style
pass can interleave a 40k-entry workload's machines with the leftover lanes
of much smaller benchmarks instead of under-filling per-trace passes:

* everything derived from a (program, trace, MGT, layout) quadruple is
  computed once into a shared, immutable :class:`TraceFacts` — packed trace
  columns, decode columns (kind, latency, renamed sources, destination),
  fetch addresses and the instruction-cache line column — and broadcast to
  every lane over that trace, whichever passes those lanes ride in;
* per-machine state lives in flat per-sequence arrays (complete cycles,
  pending-source counts, physical-register maps, LSQ flags) rather than
  per-entry ``DynInst`` objects: the replayed trace has no wrong path, so a
  dynamic entity's sequence number *is* its trace index and every "object"
  becomes an array slot;
* event scheduling is shared *structurally* (the same wakeup-bucket /
  ready-heap / completion-bucket machinery runs in every lane over that
  lane's columns) and diverges per lane only where configs differ — widths,
  unit mixes, cache and predictor geometry.  Lanes whose trace cursor *and*
  configuration are indistinguishable (:func:`lane_behavior_key` — e.g. two
  machines differing only in ``fp_units`` on an integer-only trace) simulate
  once and share the resulting statistics;
* lanes are architecturally independent (nothing mutable is shared), so the
  pass retires each lane from its active set the moment the lane commits its
  last trace entry — a one-entry trace batched with a 40k-entry trace costs
  one entry, never padding to the longest lane — and a retired lane's
  per-sequence arrays are released before the next lane's are built, keeping
  peak memory at one live lane plus the pass's shared trace facts.

The cache hierarchy is deliberately *not* shared across lanes even though
fetch addresses are: the unified L2 sees both instruction and data misses in
a timing-dependent interleaving, so instruction-cache behaviour is a
per-lane function of the whole simulation, not of the trace.

The kernel also skips provably idle cycle spans (no ready entities, no
wakeup/completion event, retirement blocked, fetch and rename unable to
progress) by jumping straight to the next scheduled event and bulk-charging
the occupancy integrals and stall counters for the span — the per-cycle
accounting is replicated exactly, so skipped spans are bit-identical to
stepped ones.

Every lane's :class:`~repro.uarch.stats.PipelineStats` is bit-identical to
``simulate_program`` for the same machine (enforced by
``tests/test_batch_timing.py`` and the ``batch`` fuzz oracle).
"""

from __future__ import annotations

import weakref
from collections import deque
from copy import copy
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..minigraph.mgt import (
    FU_ALU,
    FU_ALU_PIPELINE,
    FU_BRANCH,
    FU_LOAD,
    FU_STORE,
    MiniGraphTable,
)
from ..program.program import Program
from ..sim.trace import (
    TF_CONTROL,
    TF_HAS_EA,
    TF_LOAD,
    TF_MEMORY,
    TF_STORE,
    TF_TAKEN,
    Trace,
)
from .config import CacheConfig, ConfigError, MachineConfig
from .decode import (
    KIND_FP,
    KIND_HANDLE,
    DecodeError,
    decode_table,
)
from .dyninst import FOREVER, NEVER
from .pipeline import FetchLayout, TimingError, fp_admission_error
from .stats import PipelineStats

#: Default lane-partition width: how many machines one batched pass holds.
#: Each lane owns ~10 per-sequence arrays plus its cache/predictor models
#: (a few MB at grid budgets), so the partition bounds peak memory while
#: still amortizing the shared trace facts over a full pass.
DEFAULT_MAX_LANES = 8


class TraceFacts:
    """Shared, immutable per-(program, trace, MGT, layout) columns.

    One instance is interned per quadruple (weakly, keyed by the trace) and
    broadcast to every lane of every batched pass over that trace.
    """

    __slots__ = (
        "program", "trace", "feed", "compressed", "total",
        # Packed trace columns (straight from Trace.columns()).
        "pc", "index", "size", "next_pc", "flags", "ea",
        # Decode columns gathered from the interned DecodedOp feed.
        "kind", "latency", "src0", "src1", "dest", "needs_dest",
        "is_cond", "is_handle",
        # Fetch-address column (layout-resolved once for all lanes).
        "addr",
        # Trace-content summary flags driving lane-compatibility keying.
        "has_fp", "has_control", "has_load", "has_store", "has_handles",
        "_line_cols", "__weakref__",
    )

    def __init__(self, program: Program, trace: Trace,
                 mgt: Optional[MiniGraphTable], compressed: bool) -> None:
        self.program = program
        self.trace = trace
        self.compressed = compressed
        table = decode_table(program, mgt)
        try:
            feed = table.trace_feed(trace)
        except DecodeError as error:
            raise TimingError(str(error)) from None
        self.feed = feed
        self.total = len(feed)

        columns = trace.columns()
        self.pc = columns.pc
        self.index = columns.index
        self.size = columns.size
        self.next_pc = columns.next_pc
        self.flags = columns.flags
        self.ea = columns.effective_address

        self.kind = [op.kind for op in feed]
        self.latency = [op.latency for op in feed]
        src0: List[int] = []
        src1: List[int] = []
        for op in feed:
            s0, s1 = op.renamed_sources
            src0.append(-1 if s0 is None else s0)
            src1.append(-1 if s1 is None else s1)
        self.src0 = src0
        self.src1 = src1
        self.dest = [-1 if op.dest is None else op.dest for op in feed]
        self.needs_dest = bytearray(
            1 if op.needs_destination else 0 for op in feed)
        self.is_cond = bytearray(
            1 if op.is_conditional_branch else 0 for op in feed)
        self.is_handle = bytearray(
            1 if op.mgt_entry is not None else 0 for op in feed)

        if compressed:
            layout = FetchLayout(program, compressed=True)
            address_for_index = layout.address_for_index
            self.addr = [address_for_index(i) for i in columns.index]
        else:
            self.addr = columns.pc

        union = 0
        for value in columns.flags:
            union |= value
        self.has_control = bool(union & TF_CONTROL)
        self.has_load = bool(union & TF_LOAD)
        self.has_store = bool(union & TF_STORE)
        kinds = self.kind
        self.has_fp = KIND_FP in kinds
        self.has_handles = KIND_HANDLE in kinds
        self._line_cols: Dict[int, List[int]] = {}

    def line_col(self, line_bytes: int) -> List[int]:
        """Instruction-cache line tag (``address // line_bytes``) per entry.

        Line geometry is per-lane config, but in practice a handful of line
        sizes cover a whole grid; the column is memoized per size so sibling
        lanes share it.
        """
        col = self._line_cols.get(line_bytes)
        if col is None:
            col = [address // line_bytes for address in self.addr]
            self._line_cols[line_bytes] = col
        return col


#: ``trace -> {(decode table, compressed) -> TraceFacts}``.  Weak on the
#: trace so facts die with it; the decode table key keeps (program, MGT)
#: variants of one trace distinct.
_FACTS: "weakref.WeakKeyDictionary[Trace, Dict]" = weakref.WeakKeyDictionary()


def trace_facts(program: Program, trace: Trace,
                mgt: Optional[MiniGraphTable] = None,
                compressed_layout: bool = False) -> TraceFacts:
    """The process-wide shared :class:`TraceFacts` for one quadruple."""
    per_trace = _FACTS.get(trace)
    if per_trace is None:
        per_trace = {}
        _FACTS[trace] = per_trace
    key = (decode_table(program, mgt), compressed_layout)
    facts = per_trace.get(key)
    if facts is None:
        facts = TraceFacts(program, trace, mgt, compressed_layout)
        per_trace[key] = facts
    return facts


def _cache_geometry(cache: CacheConfig) -> Tuple[int, int, int, int]:
    return (cache.size_bytes, cache.associativity, cache.line_bytes,
            cache.hit_latency)


def lane_behavior_key(config: MachineConfig, facts: TraceFacts) -> Tuple:
    """Timing-relevant identity of ``config`` *on this trace*.

    Two lanes with equal keys are indistinguishable to the kernel — every
    config field that the trace cannot exercise is dropped (``fp_units``
    without FP entries, predictor geometry without control transfers, memory
    ports without loads/stores, the ALU-pipeline split without handles) —
    so they simulate once and share the statistics.  Fields a handle-bearing
    trace can reach indirectly (FUBMP reservations touch load/store ports
    and the data cache) are kept whenever handles are present.
    """
    key: List = [
        config.fetch_width, config.rename_width, config.issue_width,
        config.retire_width, config.front_end_depth,
        config.register_read_latency, config.scheduler_latency,
        config.rob_size, config.issue_queue_size, config.lsq_size,
        config.physical_registers, config.architected_registers,
        _cache_geometry(config.icache), _cache_geometry(config.l2cache),
        config.memory_latency,
    ]
    if facts.has_fp:
        key.append(config.fp_units)
    if facts.has_control:
        key.append((config.predictor_entries, config.btb_entries,
                    config.btb_associativity,
                    config.misprediction_redirect_penalty))
    if facts.has_handles:
        key.append((config.plain_alu_units, config.alu_pipelines,
                    config.sliding_window_scheduler,
                    config.max_memory_handles_per_cycle,
                    config.minigraph_replay_penalty,
                    config.load_ports, config.store_ports,
                    _cache_geometry(config.dcache),
                    config.store_set_entries,
                    config.ordering_violation_penalty))
    else:
        key.append(config.int_alu_units)
        if facts.has_load:
            key.append((config.load_ports, _cache_geometry(config.dcache)))
        if facts.has_store:
            key.append(config.store_ports)
        if facts.has_load and facts.has_store:
            key.append((config.store_set_entries,
                        config.ordering_violation_penalty))
    return tuple(key)


class TimingLane:
    """One lane of a batched pass: a machine config over a decoded trace.

    The quadruple ``(program, trace, mgt, compressed_layout)`` names the
    lane's trace cursor — it resolves (via :func:`trace_facts` interning) to
    the shared :class:`TraceFacts` the lane iterates, so two lanes over the
    same quadruple share columns even when their configs differ.
    """

    __slots__ = ("program", "trace", "config", "mgt", "compressed_layout")

    def __init__(self, program: Program, trace: Trace,
                 config: MachineConfig, *,
                 mgt: Optional[MiniGraphTable] = None,
                 compressed_layout: bool = False) -> None:
        self.program = program
        self.trace = trace
        self.config = config
        self.mgt = mgt
        self.compressed_layout = compressed_layout


class BatchedTimingSimulator:
    """Simulate many (decoded trace, machine configuration) lanes at once.

    The positional constructor is the shared-trace form — one trace, many
    machines; :meth:`from_lanes` is the general cross-trace form, where each
    :class:`TimingLane` carries its own trace cursor and one pass mixes
    lanes over different traces.

    Construction performs the same per-machine admission checks as the
    scalar :class:`~repro.uarch.pipeline.TimingSimulator` — but *per lane*,
    against that lane's own trace facts, so one inadmissible machine (e.g.
    ``fp_units=0`` against an FP trace) lands in :attr:`lane_errors` without
    poisoning its sibling lanes (including siblings over other traces).
    :meth:`run` likewise records per-lane runtime errors (deadlock watchdog,
    scheduler misconfiguration) instead of aborting the pass; callers that
    want scalar semantics use :func:`simulate_many`, which re-raises the
    first lane error.
    """

    def __init__(self, program: Program, trace: Trace,
                 configs: Sequence[MachineConfig], *,
                 mgt: Optional[MiniGraphTable] = None,
                 compressed_layout: bool = False) -> None:
        facts = trace_facts(program, trace, mgt, compressed_layout)
        self._bind([facts] * len(configs), list(configs))

    @classmethod
    def from_lanes(cls, lanes: Sequence[TimingLane]
                   ) -> "BatchedTimingSimulator":
        """The cross-trace constructor: one pass over heterogeneous lanes."""
        self = cls.__new__(cls)
        self._bind([trace_facts(lane.program, lane.trace, lane.mgt,
                                lane.compressed_layout) for lane in lanes],
                   [lane.config for lane in lanes])
        return self

    def _bind(self, facts: List[TraceFacts],
              configs: List[MachineConfig]) -> None:
        # Structure-of-arrays lane state: parallel per-lane lists.  A lane's
        # trace cursor is its interned TraceFacts (trace identity, decoded
        # column views, length); its commit position lives inside _run_lane
        # while the lane is active.
        self._facts = facts
        self._configs = configs
        #: Distinct decoded traces across the pass's lanes.
        self.trace_count = len({id(lane_facts) for lane_facts in facts})
        #: Whether this pass mixes lanes over different decoded traces.
        self.cross_trace = self.trace_count > 1
        #: lane index -> the error that lane would raise under the scalar
        #: path (admission errors at construction, runtime errors after run).
        self.lane_errors: Dict[int, Exception] = {}
        #: Lanes served by a behavior-identical sibling's simulation.
        self.deduped_lanes = 0
        for lane, (lane_facts, config) in enumerate(zip(facts, configs)):
            if lane_facts.has_fp and config.fp_units == 0:
                self.lane_errors[lane] = fp_admission_error(
                    config, lane_facts.program)

    @property
    def lanes(self) -> int:
        return len(self._configs)

    def run(self, *, max_cycles: int = 5_000_000
            ) -> List[Optional[PipelineStats]]:
        """Simulate every admissible lane; returns per-lane statistics.

        The result list is parallel to the constructor's lane sequence;
        errored lanes hold ``None`` and their exception sits in
        :attr:`lane_errors`.

        Lanes dedup per ``(trace facts, behavior key)`` — facts are interned,
        so identity distinguishes traces — and the active set retires whole
        lanes in deterministic first-lane order: lanes are architecturally
        independent, so a lane ends the moment it commits its last trace
        entry, and short-trace lanes never pad to the pass's longest lane.
        """
        results: List[Optional[PipelineStats]] = [None] * len(self._configs)
        groups: Dict[Tuple, List[int]] = {}
        for lane, (lane_facts, config) in enumerate(zip(self._facts,
                                                        self._configs)):
            if lane in self.lane_errors:
                continue
            groups.setdefault((lane_facts, lane_behavior_key(config,
                                                             lane_facts)),
                              []).append(lane)
        self.deduped_lanes = sum(len(lanes) - 1 for lanes in groups.values())
        for (facts, _), lanes in groups.items():
            try:
                stats = _run_lane(facts, self._configs[lanes[0]], max_cycles)
            except (ConfigError, TimingError) as error:
                self.lane_errors[lanes[0]] = error
                if self._configs[lanes[0]].name in str(error):
                    # The message embeds the representative's config name, so
                    # sibling lanes must produce their own (they fail the same
                    # way, and such raises happen early in the simulation).
                    for lane in lanes[1:]:
                        try:
                            _run_lane(facts, self._configs[lane], max_cycles)
                        except (ConfigError, TimingError) as sibling_error:
                            self.lane_errors[lane] = sibling_error
                else:
                    for lane in lanes[1:]:
                        self.lane_errors[lane] = error
                continue
            results[lanes[0]] = stats
            for lane in lanes[1:]:
                results[lane] = copy(stats)
        return results


def simulate_many(program: Program, trace: Trace,
                  configs: Sequence[MachineConfig], *,
                  mgt: Optional[MiniGraphTable] = None,
                  compressed_layout: bool = False,
                  max_cycles: int = 5_000_000) -> List[PipelineStats]:
    """Batched ``simulate_program``: scalar error semantics, many machines."""
    batch = BatchedTimingSimulator(program, trace, configs, mgt=mgt,
                                   compressed_layout=compressed_layout)
    results = batch.run(max_cycles=max_cycles)
    if batch.lane_errors:
        raise batch.lane_errors[min(batch.lane_errors)]
    return results  # type: ignore[return-value]


def _run_lane(facts: TraceFacts, config: MachineConfig,
              max_cycles: int) -> PipelineStats:
    """The fused per-lane kernel: one machine over the shared trace facts.

    This is the scalar pipeline's stage sequence (retire → complete → issue
    → rename → fetch → occupancy accounting) flattened into one function
    over flat arrays, with all state in locals.  Every branch mirrors
    ``TimingSimulator`` exactly — the golden-equivalence tests compare the
    two bit for bit — plus the idle-span jump described in the module
    docstring.
    """
    # -- shared trace columns (read-only broadcast state) ----------------------
    flags_col = facts.flags
    pc_col = facts.pc
    size_col = facts.size
    next_pc_col = facts.next_pc
    ea_col = facts.ea
    kind_col = facts.kind
    latency_col = facts.latency
    src0_col = facts.src0
    src1_col = facts.src1
    dest_col = facts.dest
    needs_dest_col = facts.needs_dest
    is_cond_col = facts.is_cond
    is_handle_col = facts.is_handle
    addr_col = facts.addr
    line_col = facts.line_col(config.icache.line_bytes)
    feed = facts.feed
    total = facts.total

    # -- per-lane models, inlined as local state (cache/predictor state is
    # timing-dependent, so none of it can be shared across lanes; see the
    # module docstring).  Each mirrors its repro.uarch class exactly — the
    # golden-equivalence tests pin the flattened forms to the originals.
    #
    # Hybrid direction predictor (bimodal + gshare + chooser) and BTB.
    predictor_entries = config.predictor_entries
    if predictor_entries <= 0 or predictor_entries & (predictor_entries - 1):
        raise ValueError("predictor entries must be a positive power of two")
    pred_mask = predictor_entries - 1
    history_mask = (1 << 12) - 1
    bimodal = [2] * predictor_entries
    gshare = [2] * predictor_entries
    chooser = [2] * predictor_entries
    history = 0
    mispredictions = 0
    if config.btb_entries % config.btb_associativity:
        raise ValueError("BTB entries must be a multiple of the associativity")
    btb_sets = config.btb_entries // config.btb_associativity
    btb_assoc = config.btb_associativity
    btb_table: List[List[Tuple[int, int]]] = [[] for _ in range(btb_sets)]
    # L1I + L1D + unified L2 tag stores with LRU replacement.
    i_line_bytes = config.icache.line_bytes
    i_num_sets = config.icache.num_sets
    i_assoc = config.icache.associativity
    i_sets: List[List[int]] = [[] for _ in range(i_num_sets)]
    icache_misses = 0
    d_line_bytes = config.dcache.line_bytes
    d_num_sets = config.dcache.num_sets
    d_assoc = config.dcache.associativity
    d_sets: List[List[int]] = [[] for _ in range(d_num_sets)]
    dcache_accesses = 0
    dcache_misses = 0
    l2_line_bytes = config.l2cache.line_bytes
    l2_num_sets = config.l2cache.num_sets
    l2_assoc = config.l2cache.associativity
    l2_sets: List[List[int]] = [[] for _ in range(l2_num_sets)]
    l2_hit = config.l2cache.hit_latency
    memory_latency = config.memory_latency
    # Store-sets predictor: SSIT (pc index -> set id) + LFST (set -> seq).
    store_set_entries = config.store_set_entries
    if store_set_entries <= 0:
        raise ValueError("store-set table needs at least one entry")
    ssit: Dict[int, int] = {}
    lfst: Dict[int, int] = {}
    next_set_id = 0

    # -- hoisted config scalars ------------------------------------------------
    fetch_width = config.fetch_width
    rename_width = config.rename_width
    issue_width = config.issue_width
    retire_width = config.retire_width
    front_end_depth = config.front_end_depth
    fetch_buffer_limit = fetch_width * front_end_depth
    rob_size = config.rob_size
    iq_size = config.issue_queue_size
    lsq_size = config.lsq_size
    register_read_latency = config.register_read_latency
    scheduler_latency = config.scheduler_latency
    physical_registers = config.physical_registers
    arch_registers = config.architected_registers
    icache_hit = config.icache.hit_latency
    dcache_hit = config.dcache.hit_latency
    redirect_penalty = config.misprediction_redirect_penalty
    ordering_penalty = config.ordering_violation_penalty
    replay_penalty = config.minigraph_replay_penalty
    plain_alu_units = config.plain_alu_units
    alu_pipelines = config.alu_pipelines
    fp_units = config.fp_units
    load_ports = config.load_ports
    store_ports = config.store_ports
    max_memory_handles = config.max_memory_handles_per_cycle
    sliding_window = config.sliding_window_scheduler
    pipeline_future_cap = alu_pipelines if alu_pipelines > 1 else 1
    alu_future_cap = plain_alu_units + alu_pipelines
    if alu_future_cap < 1:
        alu_future_cap = 1
    kind_int, kind_fp, kind_load, kind_store, kind_handle = 0, 1, 2, 3, 4

    # -- per-sequence SoA lanes (sequence number == trace index: the replayed
    # trace has no wrong path, so fetch order is trace order) ------------------
    complete_cycle = [NEVER] * total
    fetch_cycle_arr = [0] * total
    pending_arr = [0] * total
    wake_arr = [0] * total
    dest_phys = [-1] * total
    prev_phys = [-1] * total
    pred_taken = bytearray(total)
    lsq_present = bytearray(total)
    lsq_issued = bytearray(total)
    lsq_completed = bytearray(total)

    # -- renaming / scheduler / fetch state ------------------------------------
    rename_map = {reg: reg for reg in range(arch_registers)}
    free_list = deque(range(arch_registers, physical_registers))
    ready_cycle = {reg: 0 for reg in range(arch_registers)}
    reg_waiters: Dict[int, List[int]] = {}

    front_end: deque = deque()
    rob: deque = deque()
    lsq: deque = deque()
    ready_heap: List[int] = []
    wake_buckets: Dict[int, List[int]] = {}
    complete_buckets: Dict[int, List[int]] = {}
    busy_heap: List[int] = []
    reservations: Dict[int, Dict[str, int]] = {}
    iq_count = 0

    fetch_index = 0
    fetch_stalled_until = 0
    fetch_blocked_on = -1

    # -- statistics accumulators (finalized into PipelineStats at the end) -----
    fetched_slots = 0
    fetch_stall_cycles = 0
    rename_stall_cycles = 0
    issue_slots_used = 0
    branch_lookups = 0
    loads_executed = 0
    stores_executed = 0
    ordering_violations = 0
    minigraph_replays = 0
    sliding_window_conflicts = 0
    stall_rob_full = 0
    stall_iq_full = 0
    stall_lsq_full = 0
    stall_no_physical_register = 0
    rob_occupancy_sum = 0
    iq_occupancy_sum = 0
    registers_in_use_sum = 0
    committed_instructions = 0
    committed_slots = 0
    committed_handles = 0

    retired_entries = 0
    cycle = 0
    watchdog_limit = max_cycles + 1

    while retired_entries < total:
        if cycle > max_cycles:
            raise TimingError(
                f"{facts.program.name}: exceeded {max_cycles} cycles "
                f"({retired_entries}/{total} entries retired); "
                f"the pipeline is probably deadlocked")

        # ---- idle-span jump: if no stage can do work this cycle, charge the
        # per-cycle accounting for the whole quiet span and jump to the next
        # scheduled event.  Eligibility replicates each stage's own guards.
        if not ready_heap and cycle not in wake_buckets \
                and cycle not in complete_buckets:
            head_complete = complete_cycle[rob[0]] if rob else NEVER
            if head_complete == NEVER or head_complete > cycle:
                fetch_called = False
                fetch_stalls = False
                fetch_progress = False
                blocked = fetch_blocked_on >= 0
                stalled = cycle < fetch_stalled_until
                if fetch_index < total or blocked or stalled:
                    fetch_called = True
                    if blocked or stalled:
                        fetch_stalls = True
                    elif fetch_index >= total:
                        fetch_stalls = False
                    elif len(front_end) >= fetch_buffer_limit:
                        fetch_stalls = True
                    else:
                        fetch_progress = True
                if not fetch_progress:
                    rename_counter = 0
                    rename_progress = False
                    if front_end:
                        head = front_end[0]
                        while busy_heap and busy_heap[0] <= cycle:
                            heappop(busy_heap)
                        if fetch_cycle_arr[head] > cycle - front_end_depth:
                            rename_counter = 1    # not yet rename-eligible
                        elif len(rob) >= rob_size:
                            rename_counter = 2
                        elif iq_count + len(busy_heap) >= iq_size:
                            rename_counter = 3
                        elif (flags_col[head] & TF_MEMORY) \
                                and len(lsq) >= lsq_size:
                            rename_counter = 4
                        elif needs_dest_col[head] and not free_list:
                            rename_counter = 5
                        else:
                            rename_progress = True
                    if not rename_progress:
                        candidates = []
                        if rob and head_complete != NEVER:
                            candidates.append(head_complete)
                        if wake_buckets:
                            candidates.append(min(wake_buckets))
                        if complete_buckets:
                            candidates.append(min(complete_buckets))
                        if busy_heap:
                            candidates.append(busy_heap[0])
                        if fetch_stalled_until > cycle:
                            candidates.append(fetch_stalled_until)
                        if front_end:
                            eligible = fetch_cycle_arr[front_end[0]] \
                                + front_end_depth
                            if eligible > cycle:
                                candidates.append(eligible)
                        target = min(candidates) if candidates \
                            else watchdog_limit
                        if target <= cycle:
                            target = cycle + 1
                        elif target > watchdog_limit:
                            target = watchdog_limit
                        span = target - cycle
                        rob_occupancy_sum += len(rob) * span
                        while busy_heap and busy_heap[0] <= cycle:
                            heappop(busy_heap)
                        iq_occupancy_sum += (iq_count + len(busy_heap)) * span
                        registers_in_use_sum += \
                            (physical_registers - len(free_list)) * span
                        if fetch_called and fetch_stalls:
                            fetch_stall_cycles += span
                        if front_end:
                            if rename_counter == 2:
                                stall_rob_full += span
                            elif rename_counter == 3:
                                stall_iq_full += span
                            elif rename_counter == 4:
                                stall_lsq_full += span
                            elif rename_counter == 5:
                                stall_no_physical_register += span
                            rename_stall_cycles += span
                        cycle = target
                        continue

        # ---- retire ---------------------------------------------------------
        if rob:
            seq = rob[0]
            head_complete = complete_cycle[seq]
            if head_complete != NEVER and head_complete <= cycle:
                retired = 0
                while rob and retired < retire_width:
                    seq = rob[0]
                    head_complete = complete_cycle[seq]
                    if head_complete == NEVER or head_complete > cycle:
                        break
                    rob.popleft()
                    previous = prev_phys[seq]
                    if previous >= 0:
                        free_list.append(previous)
                    if (flags_col[seq] & TF_MEMORY) and lsq \
                            and lsq[0] == seq:
                        lsq.popleft()
                        lsq_present[seq] = 0
                    committed_instructions += size_col[seq]
                    committed_slots += 1
                    if is_handle_col[seq]:
                        committed_handles += 1
                    retired += 1
                retired_entries += retired

        # ---- complete -------------------------------------------------------
        finishing = complete_buckets.pop(cycle, None)
        if finishing:
            for seq in finishing:
                flags = flags_col[seq]
                if flags & TF_CONTROL:
                    # Control resolution: train the hybrid direction
                    # predictor and the BTB with the resolved outcome.
                    taken = bool(flags & TF_TAKEN)
                    pc = pc_col[seq]
                    shifted = pc >> 2
                    if is_cond_col[seq]:
                        base = shifted & pred_mask
                        hashed = (shifted ^ history) & pred_mask
                        bimodal_counter = bimodal[base]
                        gshare_counter = gshare[hashed]
                        bimodal_correct = (bimodal_counter >= 2) == taken
                        if bimodal_correct != ((gshare_counter >= 2) == taken):
                            counter = chooser[base]
                            if bimodal_correct:
                                if counter > 0:
                                    chooser[base] = counter - 1
                            elif counter < 3:
                                chooser[base] = counter + 1
                        if taken:
                            if bimodal_counter < 3:
                                bimodal[base] = bimodal_counter + 1
                            if gshare_counter < 3:
                                gshare[hashed] = gshare_counter + 1
                            history = ((history << 1) | 1) & history_mask
                        else:
                            if bimodal_counter > 0:
                                bimodal[base] = bimodal_counter - 1
                            if gshare_counter > 0:
                                gshare[hashed] = gshare_counter - 1
                            history = (history << 1) & history_mask
                        if bool(pred_taken[seq]) != taken:
                            mispredictions += 1
                    if taken:
                        bucket = btb_table[shifted % btb_sets]
                        for position, entry in enumerate(bucket):
                            if entry[0] == pc:
                                del bucket[position]
                                break
                        bucket.insert(0, (pc, next_pc_col[seq]))
                        if len(bucket) > btb_assoc:
                            del bucket[btb_assoc:]
                    if fetch_blocked_on == seq:
                        fetch_blocked_on = -1
                        resume = cycle + redirect_penalty
                        if resume > fetch_stalled_until:
                            fetch_stalled_until = resume
                if flags & TF_MEMORY:
                    lsq_completed[seq] = 1
                    if flags & TF_STORE:
                        set_id = ssit.get((pc_col[seq] >> 2)
                                          % store_set_entries)
                        if set_id is not None and lfst.get(set_id) == seq:
                            del lfst[set_id]

        # ---- issue ----------------------------------------------------------
        woken = wake_buckets.pop(cycle, None)
        if woken or ready_heap:
            # Functional-unit begin_cycle: reset per-cycle port usage, drop
            # stale reservations and cache this cycle's reserved counts.
            plain_used = 0
            pipeline_used = 0
            fp_used = 0
            load_used = 0
            store_used = 0
            memory_handles_issued = 0
            now = None
            if reservations:
                stale = [key for key in reservations if key < cycle]
                for key in stale:
                    del reservations[key]
                now = reservations.get(cycle)
            if now:
                now_alu = now.get(FU_ALU, 0)
                now_pipeline = now.get(FU_ALU_PIPELINE, 0)
                now_load = now.get(FU_LOAD, 0)
                now_store = now.get(FU_STORE, 0)
            else:
                now_alu = now_pipeline = now_load = now_store = 0

            if woken:
                for seq in woken:
                    heappush(ready_heap, seq)
            issued = 0
            deferred: List[int] = []
            while ready_heap and issued < issue_width:
                seq = heappop(ready_heap)
                flags = flags_col[seq]
                if flags & TF_MEMORY and not flags & TF_STORE:
                    # Store-sets scheduling: only *older* in-flight stores
                    # can hold a load back (the LFST may name younger ones).
                    set_id = ssit.get((pc_col[seq] >> 2) % store_set_entries)
                    predicted = None if set_id is None else lfst.get(set_id)
                    if predicted is not None and predicted < seq \
                            and lsq_present[predicted] \
                            and flags_col[predicted] & TF_STORE \
                            and not lsq_completed[predicted]:
                        deferred.append(seq)
                        continue
                kind = kind_col[seq]
                if kind == kind_int:
                    if plain_alu_units - plain_used - now_alu > 0:
                        plain_used += 1
                    elif alu_pipelines - pipeline_used - now_pipeline > 0:
                        pipeline_used += 1
                    else:
                        deferred.append(seq)
                        continue
                    latency = latency_col[seq]
                    output_latency = latency
                elif kind == kind_load:
                    if load_used + now_load >= load_ports:
                        deferred.append(seq)
                        continue
                    load_used += 1
                    address = ea_col[seq]
                    # Data access walks L1D then the unified L2 (inclusive:
                    # a miss installs the line at every level).
                    dcache_accesses += 1
                    tag = address // d_line_bytes
                    entries = d_sets[tag % d_num_sets]
                    if tag in entries:
                        if entries[0] != tag:
                            entries.remove(tag)
                            entries.insert(0, tag)
                        latency = dcache_hit
                    else:
                        dcache_misses += 1
                        entries.insert(0, tag)
                        if len(entries) > d_assoc:
                            del entries[d_assoc:]
                        tag = address // l2_line_bytes
                        entries = l2_sets[tag % l2_num_sets]
                        if tag in entries:
                            if entries[0] != tag:
                                entries.remove(tag)
                                entries.insert(0, tag)
                            latency = dcache_hit + l2_hit
                        else:
                            entries.insert(0, tag)
                            if len(entries) > l2_assoc:
                                del entries[l2_assoc:]
                            latency = dcache_hit + l2_hit + memory_latency
                    loads_executed += 1
                    if flags & TF_HAS_EA:
                        # Ordering check: an older conflicting store that has
                        # not executed means this load issued too early.
                        for other in lsq:
                            if other >= seq:
                                break
                            other_flags = flags_col[other]
                            if not other_flags & TF_STORE \
                                    or lsq_completed[other]:
                                continue
                            has_address = other_flags & TF_HAS_EA
                            if has_address and lsq_issued[other]:
                                continue
                            if has_address and ea_col[other] == address:
                                ordering_violations += 1
                                load_index = (pc_col[seq] >> 2) \
                                    % store_set_entries
                                store_index = (pc_col[other] >> 2) \
                                    % store_set_entries
                                load_set = ssit.get(load_index)
                                store_set = ssit.get(store_index)
                                if load_set is None and store_set is None:
                                    ssit[load_index] = next_set_id
                                    ssit[store_index] = next_set_id
                                    next_set_id += 1
                                elif load_set is None:
                                    ssit[load_index] = store_set
                                elif store_set is None:
                                    ssit[store_index] = load_set
                                else:
                                    winner = load_set if load_set < store_set \
                                        else store_set
                                    ssit[load_index] = winner
                                    ssit[store_index] = winner
                                resume = cycle + ordering_penalty
                                if resume > fetch_stalled_until:
                                    fetch_stalled_until = resume
                                break
                    lsq_issued[seq] = 1
                    output_latency = latency
                elif kind == kind_store:
                    if store_used + now_store >= store_ports:
                        deferred.append(seq)
                        continue
                    store_used += 1
                    stores_executed += 1
                    lsq_issued[seq] = 1
                    # Stores write the cache at retirement; scheduling-wise
                    # the store computes address/data in one cycle.
                    latency = 1
                    output_latency = 1
                elif kind == kind_fp:
                    if fp_used >= fp_units:
                        deferred.append(seq)
                        continue
                    fp_used += 1
                    latency = latency_col[seq]
                    output_latency = latency
                elif kind == kind_handle:
                    op = feed[seq]
                    if op.integer_only and alu_pipelines > 0:
                        if alu_pipelines - pipeline_used - now_pipeline <= 0:
                            deferred.append(seq)
                            continue
                        pipeline_used += 1
                    else:
                        if not sliding_window and not op.integer_only:
                            raise TimingError(
                                "integer-memory handles require the "
                                "sliding-window scheduler; config "
                                f"{config.name!r} does not enable it")
                        # can_issue_memory_handle, inlined: first-cycle port
                        # availability plus the sliding-window reservation.
                        ok = memory_handles_issued < max_memory_handles
                        if ok:
                            unit = op.fu0
                            if unit.startswith(FU_ALU_PIPELINE):
                                unit = FU_ALU_PIPELINE
                            elif unit == FU_BRANCH:
                                unit = FU_ALU
                            if unit == FU_LOAD:
                                ok = load_used + now_load < load_ports
                            elif unit == FU_STORE:
                                ok = store_used + now_store < store_ports
                            elif unit == FU_ALU_PIPELINE:
                                ok = alu_pipelines - pipeline_used \
                                    - now_pipeline > 0
                            else:
                                ok = (plain_alu_units - plain_used
                                      - now_alu > 0
                                      or alu_pipelines - pipeline_used
                                      - now_pipeline > 0)
                        if ok:
                            for offset, unit in enumerate(op.fubmp, 1):
                                if unit is None:
                                    continue
                                if unit.startswith(FU_ALU_PIPELINE):
                                    unit = FU_ALU_PIPELINE
                                elif unit == FU_BRANCH:
                                    unit = FU_ALU
                                bucket = reservations.get(cycle + offset)
                                reserved = 0 if bucket is None \
                                    else bucket.get(unit, 0)
                                if unit == FU_LOAD:
                                    capacity = load_ports
                                elif unit == FU_STORE:
                                    capacity = store_ports
                                elif unit == FU_ALU_PIPELINE:
                                    capacity = pipeline_future_cap
                                else:
                                    capacity = alu_future_cap
                                if reserved >= capacity:
                                    ok = False
                                    break
                        if not ok:
                            # A reservation conflict consumes the issue slot
                            # without issuing anything (Section 4.3).
                            issued += 1
                            sliding_window_conflicts += 1
                            deferred.append(seq)
                            continue
                        # issue_memory_handle: consume the first-cycle unit
                        # and reserve the future ones.
                        unit = op.fu0
                        if unit.startswith(FU_ALU_PIPELINE):
                            unit = FU_ALU_PIPELINE
                        elif unit == FU_BRANCH:
                            unit = FU_ALU
                        if unit == FU_LOAD:
                            load_used += 1
                        elif unit == FU_STORE:
                            store_used += 1
                        elif unit == FU_ALU_PIPELINE:
                            pipeline_used += 1
                        elif plain_alu_units - plain_used - now_alu > 0:
                            plain_used += 1
                        else:
                            pipeline_used += 1
                        for offset, unit in enumerate(op.fubmp, 1):
                            if unit is None:
                                continue
                            if unit.startswith(FU_ALU_PIPELINE):
                                unit = FU_ALU_PIPELINE
                            elif unit == FU_BRANCH:
                                unit = FU_ALU
                            bucket = reservations.get(cycle + offset)
                            if bucket is None:
                                reservations[cycle + offset] = {unit: 1}
                            else:
                                bucket[unit] = bucket.get(unit, 0) + 1
                        memory_handles_issued += 1

                    execution_cycles = op.execution_cycles
                    output_latency = op.header_lat
                    extra_memory = 0
                    if op.has_load:
                        address = ea_col[seq]
                        dcache_accesses += 1
                        tag = address // d_line_bytes
                        entries = d_sets[tag % d_num_sets]
                        if tag in entries:
                            if entries[0] != tag:
                                entries.remove(tag)
                                entries.insert(0, tag)
                            mem_latency = dcache_hit
                        else:
                            dcache_misses += 1
                            entries.insert(0, tag)
                            if len(entries) > d_assoc:
                                del entries[d_assoc:]
                            tag = address // l2_line_bytes
                            entries = l2_sets[tag % l2_num_sets]
                            if tag in entries:
                                if entries[0] != tag:
                                    entries.remove(tag)
                                    entries.insert(0, tag)
                                mem_latency = dcache_hit + l2_hit
                            else:
                                entries.insert(0, tag)
                                if len(entries) > l2_assoc:
                                    del entries[l2_assoc:]
                                mem_latency = dcache_hit + l2_hit \
                                    + memory_latency
                        loads_executed += 1
                        if flags & TF_HAS_EA:
                            for other in lsq:
                                if other >= seq:
                                    break
                                other_flags = flags_col[other]
                                if not other_flags & TF_STORE \
                                        or lsq_completed[other]:
                                    continue
                                has_address = other_flags & TF_HAS_EA
                                if has_address and lsq_issued[other]:
                                    continue
                                if has_address and ea_col[other] == address:
                                    ordering_violations += 1
                                    load_index = (pc_col[seq] >> 2) \
                                        % store_set_entries
                                    store_index = (pc_col[other] >> 2) \
                                        % store_set_entries
                                    load_set = ssit.get(load_index)
                                    store_set = ssit.get(store_index)
                                    if load_set is None \
                                            and store_set is None:
                                        ssit[load_index] = next_set_id
                                        ssit[store_index] = next_set_id
                                        next_set_id += 1
                                    elif load_set is None:
                                        ssit[load_index] = store_set
                                    elif store_set is None:
                                        ssit[store_index] = load_set
                                    else:
                                        winner = load_set \
                                            if load_set < store_set \
                                            else store_set
                                        ssit[load_index] = winner
                                        ssit[store_index] = winner
                                    resume = cycle + ordering_penalty
                                    if resume > fetch_stalled_until:
                                        fetch_stalled_until = resume
                                    break
                        lsq_issued[seq] = 1
                        extra_memory = mem_latency - dcache_hit
                        if extra_memory < 0:
                            extra_memory = 0
                        if extra_memory > 0 and op.has_interior_load:
                            # An interior load missed: the whole mini-graph
                            # replays once the miss returns (Section 4.3).
                            minigraph_replays += 1
                            extra_memory += replay_penalty + execution_cycles
                            output_latency = execution_cycles + extra_memory
                        elif extra_memory > 0 and op.out_is_last:
                            output_latency += extra_memory
                    elif op.has_store:
                        stores_executed += 1
                        lsq_issued[seq] = 1
                    latency = execution_cycles + extra_memory
                    # The MGST sequencer frees the scheduler entry only when
                    # the terminal instruction issues.
                    heappush(busy_heap, cycle + execution_cycles)
                else:
                    raise TimingError(f"cannot issue opcode {feed[seq].op}")

                # -- finish_issue, inlined --------------------------------
                iq_count -= 1
                finish = cycle + register_read_latency + latency
                complete_cycle[seq] = finish
                bucket = complete_buckets.get(finish)
                if bucket is None:
                    complete_buckets[finish] = [seq]
                else:
                    bucket.append(seq)
                dest = dest_phys[seq]
                if dest >= 0:
                    broadcast = cycle + (output_latency
                                         if output_latency > scheduler_latency
                                         else scheduler_latency)
                    ready_cycle[dest] = broadcast
                    waiters = reg_waiters.pop(dest, None)
                    if waiters:
                        for consumer in waiters:
                            pending_arr[consumer] -= 1
                            if wake_arr[consumer] < broadcast:
                                wake_arr[consumer] = broadcast
                            if pending_arr[consumer] == 0:
                                wake = wake_arr[consumer]
                                wake_bucket = wake_buckets.get(wake)
                                if wake_bucket is None:
                                    wake_buckets[wake] = [consumer]
                                else:
                                    wake_bucket.append(consumer)
                issued += 1
                issue_slots_used += 1
            for seq in deferred:
                heappush(ready_heap, seq)

        # ---- rename ---------------------------------------------------------
        if front_end:
            renamed = 0
            horizon = cycle - front_end_depth
            while front_end and renamed < rename_width:
                seq = front_end[0]
                if fetch_cycle_arr[seq] > horizon:
                    break
                if len(rob) >= rob_size:
                    stall_rob_full += 1
                    break
                while busy_heap and busy_heap[0] <= cycle:
                    heappop(busy_heap)
                if iq_count + len(busy_heap) >= iq_size:
                    stall_iq_full += 1
                    break
                flags = flags_col[seq]
                if flags & TF_MEMORY and len(lsq) >= lsq_size:
                    stall_lsq_full += 1
                    break
                needs_destination = needs_dest_col[seq]
                if needs_destination and not free_list:
                    stall_no_physical_register += 1
                    break
                front_end.popleft()
                # -- rename_one, inlined ----------------------------------
                source0 = src0_col[seq]
                source1 = src1_col[seq]
                physical0 = rename_map.get(source0) if source0 >= 0 else None
                physical1 = rename_map.get(source1) if source1 >= 0 else None
                if needs_destination:
                    physical = free_list.popleft()
                    destination = dest_col[seq]
                    previous = rename_map.get(destination)
                    prev_phys[seq] = -1 if previous is None else previous
                    rename_map[destination] = physical
                    dest_phys[seq] = physical
                    ready_cycle[physical] = FOREVER
                pending = 0
                wake = cycle + 1
                if physical0 is not None:
                    broadcast = ready_cycle.get(physical0, 0)
                    if broadcast >= FOREVER:
                        pending = 1
                        waiters = reg_waiters.get(physical0)
                        if waiters is None:
                            reg_waiters[physical0] = [seq]
                        else:
                            waiters.append(seq)
                    elif broadcast > wake:
                        wake = broadcast
                if physical1 is not None:
                    broadcast = ready_cycle.get(physical1, 0)
                    if broadcast >= FOREVER:
                        pending += 1
                        waiters = reg_waiters.get(physical1)
                        if waiters is None:
                            reg_waiters[physical1] = [seq]
                        else:
                            waiters.append(seq)
                    elif broadcast > wake:
                        wake = broadcast
                if pending:
                    pending_arr[seq] = pending
                    wake_arr[seq] = wake
                else:
                    bucket = wake_buckets.get(wake)
                    if bucket is None:
                        wake_buckets[wake] = [seq]
                    else:
                        bucket.append(seq)
                iq_count += 1
                rob.append(seq)
                if flags & TF_MEMORY:
                    lsq_present[seq] = 1
                    lsq.append(seq)
                    if flags & TF_STORE:
                        set_id = ssit.get((pc_col[seq] >> 2)
                                          % store_set_entries)
                        if set_id is not None:
                            lfst[set_id] = seq
                renamed += 1
            if renamed == 0:
                rename_stall_cycles += 1

        # ---- fetch ----------------------------------------------------------
        if fetch_index < total or fetch_blocked_on >= 0 \
                or cycle < fetch_stalled_until:
            if fetch_blocked_on >= 0 or cycle < fetch_stalled_until:
                fetch_stall_cycles += 1
            elif fetch_index < total:
                if len(front_end) >= fetch_buffer_limit:
                    fetch_stall_cycles += 1
                else:
                    fetched = 0
                    current_line = -1
                    seq = fetch_index
                    while fetched < fetch_width and seq < total:
                        line = line_col[seq]
                        if line != current_line:
                            # L1I access (tag == line), then the unified L2.
                            entries = i_sets[line % i_num_sets]
                            if line in entries:
                                if entries[0] != line:
                                    entries.remove(line)
                                    entries.insert(0, line)
                                latency = icache_hit
                            else:
                                icache_misses += 1
                                entries.insert(0, line)
                                if len(entries) > i_assoc:
                                    del entries[i_assoc:]
                                tag = addr_col[seq] // l2_line_bytes
                                entries = l2_sets[tag % l2_num_sets]
                                if tag in entries:
                                    if entries[0] != tag:
                                        entries.remove(tag)
                                        entries.insert(0, tag)
                                    latency = icache_hit + l2_hit
                                else:
                                    entries.insert(0, tag)
                                    if len(entries) > l2_assoc:
                                        del entries[l2_assoc:]
                                    latency = icache_hit + l2_hit \
                                        + memory_latency
                            if latency > icache_hit:
                                # Instruction-cache miss: charge it and stop
                                # fetching this cycle.
                                resume = cycle + latency
                                if resume > fetch_stalled_until:
                                    fetch_stalled_until = resume
                                if fetched == 0:
                                    fetch_stall_cycles += 1
                                break
                            current_line = line
                        fetch_cycle_arr[seq] = cycle
                        front_end.append(seq)
                        fetched += 1
                        fetched_slots += 1
                        flags = flags_col[seq]
                        seq += 1
                        if flags & TF_CONTROL:
                            branch_lookups += 1
                            here = seq - 1
                            pc = pc_col[here]
                            shifted = pc >> 2
                            # BTB lookup, then the hybrid direction predict.
                            bucket = btb_table[shifted % btb_sets]
                            target = None
                            for position, entry in enumerate(bucket):
                                if entry[0] == pc:
                                    if position:
                                        bucket.insert(0, bucket.pop(position))
                                    target = entry[1]
                                    break
                            if is_cond_col[here]:
                                taken = (gshare[(shifted ^ history)
                                                & pred_mask]
                                         if chooser[shifted & pred_mask] >= 2
                                         else bimodal[shifted
                                                      & pred_mask]) >= 2
                            else:
                                taken = True
                            if taken and target is None:
                                # Without a BTB target the front end cannot
                                # redirect; falls back to not-taken.
                                taken = False
                            pred_taken[here] = 1 if taken else 0
                            actual_taken = bool(flags & TF_TAKEN)
                            target_correct = (not actual_taken) \
                                or target == next_pc_col[here]
                            if taken != actual_taken or not target_correct:
                                fetch_blocked_on = here
                                break
                            if actual_taken:
                                # Correctly predicted taken branches still
                                # end the fetch group.
                                break
                    fetch_index = seq

        # ---- per-cycle occupancy accounting ---------------------------------
        rob_occupancy_sum += len(rob)
        while busy_heap and busy_heap[0] <= cycle:
            heappop(busy_heap)
        iq_occupancy_sum += iq_count + len(busy_heap)
        registers_in_use_sum += physical_registers - len(free_list)
        cycle += 1

    stats = PipelineStats()
    stats.cycles = cycle
    stats.committed_instructions = committed_instructions
    stats.committed_slots = committed_slots
    stats.committed_handles = committed_handles
    stats.fetched_slots = fetched_slots
    stats.fetch_stall_cycles = fetch_stall_cycles
    stats.rename_stall_cycles = rename_stall_cycles
    stats.issue_slots_used = issue_slots_used
    stats.branch_lookups = branch_lookups
    stats.branch_mispredictions = mispredictions
    stats.icache_misses = icache_misses
    stats.dcache_accesses = dcache_accesses
    stats.dcache_misses = dcache_misses
    stats.loads_executed = loads_executed
    stats.stores_executed = stores_executed
    stats.ordering_violations = ordering_violations
    stats.minigraph_replays = minigraph_replays
    stats.sliding_window_conflicts = sliding_window_conflicts
    stats.stall_rob_full = stall_rob_full
    stats.stall_iq_full = stall_iq_full
    stats.stall_lsq_full = stall_lsq_full
    stats.stall_no_physical_register = stall_no_physical_register
    stats.rob_occupancy_sum = rob_occupancy_sum
    stats.iq_occupancy_sum = iq_occupancy_sum
    stats.physical_registers_in_use_sum = registers_in_use_sum
    return stats
