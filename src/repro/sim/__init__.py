"""Functional (architectural) simulation: golden model, memory, traces."""

from .functional import (
    FunctionalResult,
    FunctionalSimulator,
    SimulationError,
    run_program,
)
from .memory import Memory, MemoryError_
from .trace import Trace, TraceEntry

__all__ = [
    "FunctionalResult",
    "FunctionalSimulator",
    "SimulationError",
    "run_program",
    "Memory",
    "MemoryError_",
    "Trace",
    "TraceEntry",
]
