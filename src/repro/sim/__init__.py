"""Functional (architectural) simulation: golden model, memory, traces."""

from .functional import (
    FunctionalResult,
    FunctionalSimulator,
    SimulationError,
    profile_from_trace,
    run_program,
)
from .memory import Memory, MemoryError_
from .trace import Trace, TraceEntry, decode_trace, encode_trace

__all__ = [
    "FunctionalResult",
    "FunctionalSimulator",
    "SimulationError",
    "profile_from_trace",
    "run_program",
    "Memory",
    "MemoryError_",
    "Trace",
    "TraceEntry",
    "decode_trace",
    "encode_trace",
]
