"""Sparse data memory image for the functional simulator.

Memory is modelled as a sparse map of aligned 64-bit words.  Sub-word
accesses (bytes, 16-bit words, 32-bit longwords) read-modify-write the
containing quadword, which matches what the workload kernels need without
dragging in a full byte-array memory system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

_WORD_BYTES = 8
_WORD_MASK = 0xFFFFFFFFFFFFFFFF


class MemoryError_(RuntimeError):
    """Raised on misaligned or otherwise malformed memory accesses."""


def _to_signed(value: int, bits: int) -> int:
    sign_bit = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & sign_bit else value


@dataclass
class Memory:
    """Sparse 64-bit word-grained memory.

    Attributes:
        words: aligned address -> 64-bit unsigned word value.
    """

    words: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_image(cls, image: Mapping[int, int]) -> "Memory":
        """Build a memory from a program's initial data segment."""
        memory = cls()
        for address, value in image.items():
            memory.store(address, value, 8)
        return memory

    # -- raw word access -------------------------------------------------------

    def _word(self, aligned: int) -> int:
        return self.words.get(aligned, 0)

    def load(self, address: int, size: int, *, signed: bool = True) -> int:
        """Load ``size`` bytes (1, 2, 4 or 8) from ``address``.

        Accesses must be naturally aligned; quadword loads return unsigned
        64-bit values, narrower loads are sign- or zero-extended per
        ``signed``.
        """
        if size not in (1, 2, 4, 8):
            raise MemoryError_(f"unsupported access size {size}")
        if address % size:
            raise MemoryError_(f"misaligned {size}-byte load at {address:#x}")
        aligned = address & ~(_WORD_BYTES - 1)
        offset = address - aligned
        word = self._word(aligned)
        raw = (word >> (offset * 8)) & ((1 << (size * 8)) - 1)
        if size == 8:
            return raw
        return _to_signed(raw, size * 8) if signed else raw

    def store(self, address: int, value: int, size: int) -> None:
        """Store ``size`` bytes of ``value`` at ``address`` (naturally aligned)."""
        if size not in (1, 2, 4, 8):
            raise MemoryError_(f"unsupported access size {size}")
        if address % size:
            raise MemoryError_(f"misaligned {size}-byte store at {address:#x}")
        aligned = address & ~(_WORD_BYTES - 1)
        offset = address - aligned
        mask = ((1 << (size * 8)) - 1) << (offset * 8)
        word = self._word(aligned)
        word = (word & ~mask) | ((value << (offset * 8)) & mask)
        self.words[aligned] = word & _WORD_MASK

    # -- convenience -----------------------------------------------------------

    def load_word(self, address: int) -> int:
        """Load an aligned 64-bit word (unsigned)."""
        return self.load(address, 8)

    def store_word(self, address: int, value: int) -> None:
        """Store an aligned 64-bit word."""
        self.store(address, value, 8)

    def words_in_range(self, start: int, count: int) -> Tuple[int, ...]:
        """Read ``count`` consecutive quadwords starting at ``start``."""
        return tuple(self.load_word(start + index * _WORD_BYTES) for index in range(count))

    def footprint(self) -> int:
        """Number of distinct quadwords ever touched."""
        return len(self.words)

    def checksum(self) -> int:
        """Order-independent checksum of memory contents (used in tests)."""
        total = 0
        for address, value in self.words.items():
            total = (total + (address * 1000003 ^ value)) & _WORD_MASK
        return total
