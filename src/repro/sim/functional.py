"""Functional (architectural) simulator for MGA programs.

The functional simulator is the golden model: it executes a program's
architectural semantics, producing final register/memory state, a basic-block
frequency profile and a committed-order dynamic trace for the timing model.

It executes both unmodified programs and mini-graph rewritten programs.  For
the latter it evaluates handles directly from the
:class:`~repro.minigraph.mgt.MiniGraphTable` templates — interior values are
computed without touching the architectural register file, exactly as the
mini-graph microarchitecture treats them as transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.instruction import INSTRUCTION_BYTES, Instruction
from ..isa.opcodes import OpClass
from ..isa.registers import NUM_ARCH_REGS, NUM_INT_REGS, is_zero_reg
from ..minigraph.mgt import MiniGraphTable
from ..minigraph.templates import OperandKind, OperandRef
from ..program.basic_block import BlockIndex
from ..program.profile import BlockProfile
from ..program.program import Program
from .memory import Memory
from .trace import Trace, TraceEntry

_WORD_MASK = 0xFFFFFFFFFFFFFFFF


class SimulationError(RuntimeError):
    """Raised on execution errors (undefined PCs, bad handles, ...)."""


def _wrap(value: int) -> int:
    return value & _WORD_MASK


def _signed(value: int) -> int:
    value &= _WORD_MASK
    return value - (1 << 64) if value & (1 << 63) else value


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & (1 << 31) else value


@dataclass
class FunctionalResult:
    """Outcome of one functional simulation run.

    Attributes:
        program_name: name of the executed program.
        instructions_executed: original-instruction count (handles expand).
        entries_committed: committed trace entries (handles count once).
        halted: True if the program executed ``halt``; False if the
            instruction budget expired first.
        registers: final architectural register values.
        memory: final memory image.
        profile: basic-block frequency profile of the run.
        trace: committed-order dynamic trace (None if tracing was disabled).
    """

    program_name: str
    instructions_executed: int
    entries_committed: int
    halted: bool
    registers: List[int]
    memory: Memory
    profile: BlockProfile
    trace: Optional[Trace]

    def register(self, reg: int) -> int:
        """Final value of architectural register ``reg``."""
        return self.registers[reg]

    def checksum(self) -> int:
        """Combined register/memory checksum used by equivalence tests."""
        reg_sum = 0
        for reg, value in enumerate(self.registers):
            if not is_zero_reg(reg):
                reg_sum = _wrap(reg_sum + (reg * 2654435761 ^ value))
        return _wrap(reg_sum + self.memory.checksum())


# ---------------------------------------------------------------------------
# ALU semantics, shared by singleton execution and handle evaluation.
# Each function maps (a, b, imm) -> 64-bit result, where ``b`` is the second
# register operand for register forms and ``imm`` is used by immediate forms.
# ---------------------------------------------------------------------------

def _alu_semantics() -> Dict[str, Callable[[int, int, Optional[int]], int]]:
    def shift_amount(value: int) -> int:
        return value & 0x3F

    table: Dict[str, Callable[[int, int, Optional[int]], int]] = {
        "addl": lambda a, b, imm: _wrap(_signed32(_signed32(a) + _signed32(b))),
        "addli": lambda a, b, imm: _wrap(_signed32(_signed32(a) + imm)),
        "addq": lambda a, b, imm: _wrap(a + b),
        "addqi": lambda a, b, imm: _wrap(a + imm),
        "subl": lambda a, b, imm: _wrap(_signed32(_signed32(a) - _signed32(b))),
        "subli": lambda a, b, imm: _wrap(_signed32(_signed32(a) - imm)),
        "subq": lambda a, b, imm: _wrap(a - b),
        "subqi": lambda a, b, imm: _wrap(a - imm),
        "and": lambda a, b, imm: a & b,
        "andi": lambda a, b, imm: a & _wrap(imm),
        "bis": lambda a, b, imm: a | b,
        "bisi": lambda a, b, imm: a | _wrap(imm),
        "xor": lambda a, b, imm: a ^ b,
        "xori": lambda a, b, imm: a ^ _wrap(imm),
        "bic": lambda a, b, imm: a & _wrap(~b),
        "ornot": lambda a, b, imm: a | _wrap(~b),
        "sll": lambda a, b, imm: _wrap(a << shift_amount(b)),
        "slli": lambda a, b, imm: _wrap(a << shift_amount(imm)),
        "srl": lambda a, b, imm: a >> shift_amount(b),
        "srli": lambda a, b, imm: a >> shift_amount(imm),
        "sra": lambda a, b, imm: _wrap(_signed(a) >> shift_amount(b)),
        "srai": lambda a, b, imm: _wrap(_signed(a) >> shift_amount(imm)),
        "cmpeq": lambda a, b, imm: int(a == b),
        "cmpeqi": lambda a, b, imm: int(a == _wrap(imm)),
        "cmplt": lambda a, b, imm: int(_signed(a) < _signed(b)),
        "cmplti": lambda a, b, imm: int(_signed(a) < imm),
        "cmple": lambda a, b, imm: int(_signed(a) <= _signed(b)),
        "cmplei": lambda a, b, imm: int(_signed(a) <= imm),
        "cmpult": lambda a, b, imm: int(a < b),
        "cmpulti": lambda a, b, imm: int(a < _wrap(imm)),
        "cmovne": lambda a, b, imm: b,   # applied conditionally by the caller
        "cmoveq": lambda a, b, imm: b,   # applied conditionally by the caller
        "s4addl": lambda a, b, imm: _wrap(_signed32((_signed(a) << 2) + _signed(b))),
        "s8addl": lambda a, b, imm: _wrap(_signed32((_signed(a) << 3) + _signed(b))),
        "s4addli": lambda a, b, imm: _wrap(_signed32((_signed(a) << 2) + imm)),
        "s8addli": lambda a, b, imm: _wrap(_signed32((_signed(a) << 3) + imm)),
        "lda": lambda a, b, imm: _wrap(a + imm),
        "ldah": lambda a, b, imm: _wrap(a + (imm << 16)),
        "extbl": lambda a, b, imm: (a >> ((b & 0x7) * 8)) & 0xFF,
        "extbli": lambda a, b, imm: (a >> ((imm & 0x7) * 8)) & 0xFF,
        "insbl": lambda a, b, imm: _wrap((a & 0xFF) << ((b & 0x7) * 8)),
        "mskbl": lambda a, b, imm: a & _wrap(~(0xFF << ((b & 0x7) * 8))),
        "zapnot": lambda a, b, imm: _zapnot(a, imm),
        "sextb": lambda a, b, imm: _wrap(_sign_extend(a, 8)),
        "sextw": lambda a, b, imm: _wrap(_sign_extend(a, 16)),
        "popcount": lambda a, b, imm: bin(a).count("1"),
        "clz": lambda a, b, imm: 64 - a.bit_length(),
        "mull": lambda a, b, imm: _wrap(_signed32(_signed32(a) * _signed32(b))),
        "mulq": lambda a, b, imm: _wrap(a * b),
        "mulli": lambda a, b, imm: _wrap(_signed32(_signed32(a) * imm)),
    }
    return table


def _zapnot(value: int, mask: Optional[int]) -> int:
    result = 0
    mask = mask or 0
    for byte in range(8):
        if mask & (1 << byte):
            result |= value & (0xFF << (byte * 8))
    return result


def _sign_extend(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


_ALU = _alu_semantics()

#: Memory access sizes by opcode.
_ACCESS_SIZE = {"ldq": 8, "ldl": 4, "ldwu": 2, "ldbu": 1, "ldt": 8,
                "stq": 8, "stl": 4, "stb": 1, "stt": 8}
_UNSIGNED_LOADS = {"ldbu", "ldwu", "ldq", "ldt"}


def _branch_taken(op: str, value: int) -> bool:
    signed = _signed(value)
    if op == "beq":
        return value == 0
    if op == "bne":
        return value != 0
    if op == "blt":
        return signed < 0
    if op == "bge":
        return signed >= 0
    if op == "bgt":
        return signed > 0
    if op == "ble":
        return signed <= 0
    raise SimulationError(f"not a conditional branch: {op}")


class FunctionalSimulator:
    """Architectural simulator for one program (optionally with an MGT)."""

    def __init__(self, program: Program, *, mgt: Optional[MiniGraphTable] = None) -> None:
        self._program = program
        self._mgt = mgt
        self._block_index = BlockIndex(program)

    @property
    def program(self) -> Program:
        return self._program

    # -- execution -------------------------------------------------------------

    def run(self, *, max_instructions: int = 200_000,
            collect_trace: bool = True,
            input_name: str = "reference") -> FunctionalResult:
        """Execute the program until ``halt`` or the instruction budget expires.

        ``max_instructions`` counts *original* instructions, so a run of a
        rewritten program covers exactly the same work as a run of the
        original with the same budget.
        """
        registers = [0] * NUM_ARCH_REGS
        memory = Memory.from_image(self._program.data)
        profile = BlockProfile(program_name=self._program.name, input_name=input_name)
        trace = Trace() if collect_trace else None

        pc = self._program.entry_pc
        executed = 0
        committed = 0
        halted = False
        block_of_pc = self._block_index.block_of_pc

        while executed < max_instructions:
            if not self._program.contains_pc(pc):
                raise SimulationError(
                    f"{self._program.name}: execution left the text segment at {pc:#x}")
            index = self._program.index_of(pc)
            insn = self._program.instructions[index]

            if insn.is_nop:
                pc += INSTRUCTION_BYTES
                continue

            block = block_of_pc(pc)
            if index == block.start_index or self._is_block_reentry(block, index, trace):
                pass  # block accounting handled below per entry

            if insn.is_handle:
                entry, next_pc, count = self._execute_handle(insn, pc, index, registers, memory)
            else:
                entry, next_pc, count = self._execute_singleton(insn, pc, index, registers, memory)

            executed += count
            committed += 1
            self._record_block(profile, index, count)
            if trace is not None:
                trace.append(entry)

            if insn.is_halt:
                halted = True
                break
            pc = next_pc

        return FunctionalResult(
            program_name=self._program.name,
            instructions_executed=executed,
            entries_committed=committed,
            halted=halted,
            registers=registers,
            memory=memory,
            profile=profile,
            trace=trace,
        )

    # -- helpers ---------------------------------------------------------------

    def _is_block_reentry(self, block, index: int, trace) -> bool:
        return False

    def _record_block(self, profile: BlockProfile, index: int, count: int) -> None:
        block = self._block_index.block_of_index(index)
        # Count a block entry the first time we touch the block (its leader or
        # the entry point of a jump into the middle, which our kernels do not
        # do); the per-instruction dynamic count is tracked separately.
        profile.counts.setdefault(block.block_id, 0)
        if index == block.start_index or self._first_useful_index(block) == index:
            profile.counts[block.block_id] += 1
        profile.dynamic_instructions += count

    @staticmethod
    def _first_useful_index(block) -> int:
        for offset, insn in enumerate(block.instructions):
            if not insn.is_nop:
                return block.start_index + offset
        return block.start_index

    def _read(self, registers: List[int], reg: Optional[int]) -> int:
        if reg is None or is_zero_reg(reg):
            return 0
        return registers[reg]

    def _write(self, registers: List[int], reg: Optional[int], value: int) -> None:
        if reg is None or is_zero_reg(reg):
            return
        registers[reg] = _wrap(value)

    def _execute_singleton(self, insn: Instruction, pc: int, index: int,
                           registers: List[int], memory: Memory
                           ) -> Tuple[TraceEntry, int, int]:
        spec = insn.spec
        next_pc = pc + INSTRUCTION_BYTES
        taken: Optional[bool] = None
        effective_address: Optional[int] = None

        if spec.op_class in (OpClass.ALU, OpClass.MUL):
            a = self._read(registers, insn.rs1)
            b = self._read(registers, insn.rs2)
            result = _ALU[insn.op](a, b, insn.imm)
            if insn.op == "cmovne":
                result = b if a != 0 else self._read(registers, insn.rd)
            elif insn.op == "cmoveq":
                result = b if a == 0 else self._read(registers, insn.rd)
            self._write(registers, insn.rd, result)
        elif spec.is_fp:
            a = self._read(registers, insn.rs1)
            b = self._read(registers, insn.rs2)
            self._write(registers, insn.rd, self._fp_result(insn.op, a, b))
        elif spec.is_load:
            base = self._read(registers, insn.rs1)
            effective_address = _wrap(base + (insn.imm or 0))
            size = _ACCESS_SIZE[insn.op]
            value = memory.load(effective_address, size,
                                signed=insn.op not in _UNSIGNED_LOADS)
            self._write(registers, insn.rd, _wrap(value))
        elif spec.is_store:
            base = self._read(registers, insn.rs1)
            effective_address = _wrap(base + (insn.imm or 0))
            size = _ACCESS_SIZE[insn.op]
            memory.store(effective_address, self._read(registers, insn.rs2), size)
        elif spec.op_class is OpClass.BRANCH:
            taken = _branch_taken(insn.op, self._read(registers, insn.rs1))
            if taken:
                next_pc = insn.imm
        elif spec.op_class is OpClass.JUMP:
            taken = True
            next_pc = insn.imm
        elif spec.op_class is OpClass.CALL:
            taken = True
            self._write(registers, insn.rd, pc + INSTRUCTION_BYTES)
            next_pc = insn.imm
        elif spec.op_class is OpClass.INDIRECT:
            taken = True
            next_pc = self._read(registers, insn.rs1)
        elif spec.op_class is OpClass.HALT:
            taken = None
        elif spec.op_class is OpClass.MG:
            raise SimulationError("handles must be executed via _execute_handle")

        entry = TraceEntry(
            pc=pc, index=index, size=1, next_pc=next_pc,
            is_control=spec.is_control, taken=taken,
            is_load=spec.is_load, is_store=spec.is_store,
            effective_address=effective_address, mgid=None,
        )
        return entry, next_pc, 1

    def _fp_result(self, op: str, a: int, b: int) -> int:
        # FP values are carried as 64-bit integers; the workloads use FP only
        # lightly, so fixed-point-style integer arithmetic is sufficient and
        # keeps the register file uniform.
        if op == "addt":
            return _wrap(a + b)
        if op == "subt":
            return _wrap(a - b)
        if op == "mult":
            return _wrap(a * b)
        if op == "divt":
            return _wrap(a // b) if b else 0
        if op == "sqrtt":
            return _wrap(int(_signed(a) ** 0.5)) if _signed(a) > 0 else 0
        if op == "cmptlt":
            return int(_signed(a) < _signed(b))
        if op in ("cvtqt", "cvttq"):
            return a
        raise SimulationError(f"unknown FP opcode {op}")

    def _execute_handle(self, handle: Instruction, pc: int, index: int,
                        registers: List[int], memory: Memory
                        ) -> Tuple[TraceEntry, int, int]:
        if self._mgt is None:
            raise SimulationError(
                f"{self._program.name}: handle at {pc:#x} but no MGT was supplied")
        entry = self._mgt.lookup(handle.mgid)
        template = entry.template
        external_values = (self._read(registers, handle.rs1),
                           self._read(registers, handle.rs2))
        interior: Dict[int, int] = {}
        next_pc = pc + INSTRUCTION_BYTES
        taken: Optional[bool] = None
        effective_address: Optional[int] = None
        is_load = is_store = False
        output_value: Optional[int] = None

        def resolve(ref: Optional[OperandRef]) -> int:
            if ref is None:
                return 0
            if ref.kind is OperandKind.EXTERNAL:
                return external_values[ref.index]
            if ref.kind is OperandKind.INTERNAL:
                return interior[ref.index]
            return 0

        for position, template_insn in enumerate(template.instructions):
            op = template_insn.op
            spec = template_insn.spec
            a = resolve(template_insn.src0)
            b = resolve(template_insn.src1)
            result = 0
            if spec.op_class in (OpClass.ALU, OpClass.MUL):
                result = _ALU[op](a, b, template_insn.imm)
            elif spec.is_load:
                is_load = True
                effective_address = _wrap(a + (template_insn.imm or 0))
                size = _ACCESS_SIZE[op]
                result = _wrap(memory.load(effective_address, size,
                                           signed=op not in _UNSIGNED_LOADS))
            elif spec.is_store:
                is_store = True
                effective_address = _wrap(a + (template_insn.imm or 0))
                memory.store(effective_address, b, _ACCESS_SIZE[op])
            elif spec.op_class is OpClass.BRANCH:
                taken = _branch_taken(op, a)
                if taken:
                    next_pc = template_insn.imm
            elif spec.op_class is OpClass.JUMP:
                taken = True
                next_pc = template_insn.imm
            else:
                raise SimulationError(f"opcode {op} not allowed inside a mini-graph")
            interior[position] = result
            if template.out_index == position:
                output_value = result

        if template.out_index is not None:
            self._write(registers, handle.rd, output_value or 0)

        trace_entry = TraceEntry(
            pc=pc, index=index, size=template.size, next_pc=next_pc,
            is_control=template.has_branch, taken=taken,
            is_load=is_load, is_store=is_store,
            effective_address=effective_address, mgid=handle.mgid,
        )
        return trace_entry, next_pc, template.size


def run_program(program: Program, *, mgt: Optional[MiniGraphTable] = None,
                max_instructions: int = 200_000, collect_trace: bool = True,
                input_name: str = "reference") -> FunctionalResult:
    """Convenience wrapper: build a simulator and run it once."""
    simulator = FunctionalSimulator(program, mgt=mgt)
    return simulator.run(max_instructions=max_instructions,
                         collect_trace=collect_trace, input_name=input_name)
